"""Benchmark regenerating Figure 4(a): one-port heuristics vs platform size.

Run with ``pytest benchmarks/bench_fig4a.py --benchmark-only -s`` (the ``-s``
flag shows the reproduced table / ASCII chart).  The benchmark measures the
wall-clock cost of the whole experiment (platform generation + LP solves +
heuristics) and asserts that the qualitative shape of the paper's figure
holds: advanced heuristics well above 55 % of the optimum, binomial far
below, simple pruning dominated by refined pruning.
"""

from __future__ import annotations

import pytest

from repro.experiments import check_figure4_shape, figure_4a, random_ensemble_records


@pytest.mark.paper
def test_figure_4a(benchmark, paper_parameters, bench_header):
    """Reproduce Figure 4(a) and check its qualitative shape."""

    def run():
        records = random_ensemble_records(paper_parameters)
        return figure_4a(paper_parameters, records=records)

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    check = check_figure4_shape(figure)
    print()
    print(bench_header)
    print(figure.render())
    print(check.render())
    check.raise_on_failure()

    # The relative performance of every heuristic is a valid ratio under the
    # one-port model (the LP optimum is an upper bound for single trees).
    for label, values in figure.series.items():
        assert all(0 < v <= 1.0 + 1e-9 for v in values), label
