"""Benchmark of the array-backed schedule kernels (fast paths vs references).

Measures, and records into ``BENCH_hotpaths.json`` (repo root by default):

* **makespan recurrence** — the slice-vectorized kernel behind
  :func:`repro.analysis.makespan.pipelined_makespan` vs the ``(node, slice)``
  reference loop, swept over 20/50/100/200-node platforms and
  ``K = 100 / 1000`` slices;
* **in-order simulation** — the event-free fast path of
  :func:`repro.simulation.simulate_broadcast` vs the discrete-event engine
  on the same sweep;
* **heuristics end-to-end** — heap-frontier growing, oracle-backed pruning
  and delta-evaluated local search vs their rescan/recompute references at
  20/50/100 nodes.

Every timed pair is also *checked*: the benchmark platforms use integer
link times and integer explicit overheads, which makes the fast paths
bit-identical to their references (no re-association slack), and the run
aborts with a non-zero exit code on any mismatch.  ``--quick`` shrinks the
sweep for CI smoke coverage.

Run it as a script::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py [--quick]
        [--rounds 3] [--output BENCH_hotpaths.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from conftest import record_host
from repro import _version
from repro.core.grow_tree import GrowingMinimumOutDegreeTree
from repro.core.local_search import improve_tree, improve_tree_reference
from repro.core.lp_prune import LPCommunicationGraphPruning
from repro.core.multiport_grow import MultiPortGrowingTree
from repro.core.prune_refined import RefinedPlatformPruning
from repro.analysis.makespan import pipelined_makespan, pipelined_makespan_reference
from repro.lp.solver import solve_steady_state_lp
from repro.models.port_models import MultiPortModel
from repro.platform.graph import Platform
from repro.platform.link import Link
from repro.platform.node import ProcessorNode
from repro.simulation.broadcast import PipelinedBroadcastSimulator

REPO_ROOT = Path(__file__).resolve().parent.parent

#: node count -> number of extra random undirected link pairs beyond the
#: spanning structure (keeps the directed edge count a few times the node
#: count at every size, like the paper's random ensembles).
EXTRA_PAIRS = {20: 40, 50: 120, 100: 300, 200: 600}


class BenchError(SystemExit):
    pass


def integer_platform(num_nodes: int, seed: int) -> Platform:
    """Connected random platform with small-integer costs and overheads.

    Integer quantities keep every schedule value exactly representable, so
    the fast-path/reference comparisons below are bit-identity checks.
    """
    rng = np.random.default_rng(seed)
    platform = Platform(name=f"bench-n{num_nodes}", slice_size=1.0)
    times: dict[tuple[int, int], int] = {}
    order = [int(n) for n in rng.permutation(num_nodes)]
    for position in range(1, num_nodes):
        u, v = order[int(rng.integers(0, position))], order[position]
        times[(u, v)] = int(rng.integers(1, 10))
        times[(v, u)] = int(rng.integers(1, 10))
    for _ in range(EXTRA_PAIRS[num_nodes]):
        u, v = (int(x) for x in rng.integers(0, num_nodes, size=2))
        if u != v and (u, v) not in times:
            times[(u, v)] = int(rng.integers(1, 10))
            times[(v, u)] = int(rng.integers(1, 10))
    for node in range(num_nodes):
        platform.add_node(
            ProcessorNode(name=node, send_overhead=int(rng.integers(1, 4)))
        )
    for (u, v), value in times.items():
        platform.add_link(Link.with_transfer_time(u, v, float(value)))
    platform.validate()
    return platform


def best_of(rounds: int, call):
    """Minimum wall-clock of ``rounds`` invocations, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = call()
        best = min(best, time.perf_counter() - start)
    return best, result


def check(condition: bool, what: str) -> None:
    if not condition:
        raise BenchError(f"FAST PATH MISMATCH: {what}")


# --------------------------------------------------------------------------- #
# Sections
# --------------------------------------------------------------------------- #
def bench_makespan(platforms, slice_counts, rounds) -> dict:
    results = {}
    for num_nodes, platform in platforms.items():
        tree = GrowingMinimumOutDegreeTree().build(platform, 0)
        for num_slices in slice_counts:
            fast_seconds, fast = best_of(
                rounds, lambda: pipelined_makespan(tree, num_slices)
            )
            reference_seconds, reference = best_of(
                rounds, lambda: pipelined_makespan_reference(tree, num_slices)
            )
            check(
                fast == reference,
                f"makespan kernel vs reference at n={num_nodes}, K={num_slices}",
            )
            results[f"n{num_nodes}-K{num_slices}"] = {
                "reference_seconds": round(reference_seconds, 5),
                "kernel_seconds": round(fast_seconds, 5),
                "speedup": round(reference_seconds / fast_seconds, 2),
                "identical": True,
            }
    return results


def bench_simulation(platforms, slice_counts, rounds) -> dict:
    results = {}
    for num_nodes, platform in platforms.items():
        tree = GrowingMinimumOutDegreeTree().build(platform, 0)
        for num_slices in slice_counts:
            def run(force_engine: bool):
                simulator = PipelinedBroadcastSimulator(
                    tree, num_slices, record_trace=False
                )
                if force_engine:
                    simulator._fast_path_applicable = lambda: False
                return simulator.run()

            fast_seconds, fast = best_of(rounds, lambda: run(False))
            engine_seconds, engine = best_of(1, lambda: run(True))
            check(
                fast.arrival_times == engine.arrival_times
                and fast.makespan == engine.makespan
                and fast.resource_utilization == engine.resource_utilization,
                f"in-order simulation fast path at n={num_nodes}, K={num_slices}",
            )
            results[f"n{num_nodes}-K{num_slices}"] = {
                "engine_seconds": round(engine_seconds, 5),
                "fastpath_seconds": round(fast_seconds, 5),
                "speedup": round(engine_seconds / fast_seconds, 2),
                "identical": True,
            }
    return results


def bench_heuristics(platforms, rounds, lp_max_nodes) -> dict:
    results = {}
    multi_port = MultiPortModel()
    for num_nodes, platform in platforms.items():
        arms = {
            "grow-tree": (
                lambda: GrowingMinimumOutDegreeTree(fast=True).build(platform, 0),
                lambda: GrowingMinimumOutDegreeTree(fast=False).build(platform, 0),
            ),
            "multiport-grow-tree": (
                lambda: MultiPortGrowingTree(fast=True).build(
                    platform, 0, model=multi_port
                ),
                lambda: MultiPortGrowingTree(fast=False).build(
                    platform, 0, model=multi_port
                ),
            ),
            "prune-degree": (
                lambda: RefinedPlatformPruning(fast=True).build(platform, 0),
                lambda: RefinedPlatformPruning(fast=False).build(platform, 0),
            ),
        }
        base_tree = GrowingMinimumOutDegreeTree().build(platform, 0)
        arms["local-search"] = (
            lambda: improve_tree(base_tree),
            lambda: improve_tree_reference(base_tree),
        )
        if num_nodes <= lp_max_nodes:
            lp_solution = solve_steady_state_lp(platform, 0)
            arms["lp-prune"] = (
                lambda: LPCommunicationGraphPruning(fast=True).build(
                    platform, 0, lp_solution=lp_solution
                ),
                lambda: LPCommunicationGraphPruning(fast=False).build(
                    platform, 0, lp_solution=lp_solution
                ),
            )
        for name, (fast_call, reference_call) in arms.items():
            fast_seconds, fast = best_of(rounds, fast_call)
            reference_seconds, reference = best_of(1, reference_call)
            check(
                fast.to_parent_dict() == reference.to_parent_dict(),
                f"{name} fast vs reference at n={num_nodes}",
            )
            results[f"{name}-n{num_nodes}"] = {
                "reference_seconds": round(reference_seconds, 5),
                "fast_seconds": round(fast_seconds, 5),
                "speedup": round(reference_seconds / fast_seconds, 2),
                "identical": True,
            }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep (CI smoke): 20/50 nodes, K=100, one round",
    )
    parser.add_argument("--rounds", type=int, default=3, help="best-of round count")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_hotpaths.json",
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)

    if args.quick:
        kernel_nodes, heuristic_nodes = (20, 50), (20, 50)
        slice_counts, rounds, lp_max_nodes = (100,), 1, 20
    else:
        kernel_nodes, heuristic_nodes = (20, 50, 100, 200), (20, 50, 100)
        slice_counts, rounds, lp_max_nodes = (100, 1000), args.rounds, 50

    kernel_platforms = {n: integer_platform(n, seed=7 + n) for n in kernel_nodes}
    heuristic_platforms = {n: kernel_platforms[n] for n in heuristic_nodes}

    record = {
        "benchmark": "hotpaths",
        "version": _version.__version__,
        "created_unix": round(time.time(), 1),
        "quick": args.quick,
        "host": record_host(),
        "edge_counts": {
            str(n): p.num_links for n, p in kernel_platforms.items()
        },
        "makespan": bench_makespan(kernel_platforms, slice_counts, rounds),
        "simulation": bench_simulation(kernel_platforms, slice_counts, rounds),
        "heuristics": bench_heuristics(heuristic_platforms, rounds, lp_max_nodes),
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
