"""Benchmarks of the discrete-event simulator plus analysis/simulation agreement.

Not a paper artefact per se, but the validation experiment backing every
throughput number reported by the other benchmarks: the simulated
steady-state rate of a direct broadcast tree must match the closed-form
analysis (see DESIGN.md, experiment id VALID).
"""

from __future__ import annotations

import pytest

from repro import MultiPortModel, build_broadcast_tree, generate_random_platform
from repro.simulation import simulate_broadcast

_PLATFORM = generate_random_platform(num_nodes=25, density=0.15, seed=8)
_TREES = {
    "grow-tree": build_broadcast_tree(_PLATFORM, 0, "grow-tree"),
    "prune-degree": build_broadcast_tree(_PLATFORM, 0, "prune-degree"),
    "binomial": build_broadcast_tree(_PLATFORM, 0, "binomial"),
}


@pytest.mark.parametrize("name", sorted(_TREES))
def test_simulation_throughput_agreement(benchmark, name):
    """Simulate 60 slices and compare the measured rate with the analysis."""
    tree = _TREES[name]

    result = benchmark.pedantic(
        lambda: simulate_broadcast(tree, num_slices=60, record_trace=False),
        rounds=3,
        iterations=1,
    )
    print(
        f"\n{name}: analytical={result.analytical_throughput:.4f} "
        f"measured={result.measured_throughput:.4f} "
        f"(error {result.relative_error():.2%})"
    )
    if tree.is_direct:
        assert result.relative_error() < 0.02
    else:
        # Routed trees: the FIFO schedule cannot beat the steady-state bound.
        assert result.measured_throughput <= result.analytical_throughput * 1.01


def test_simulator_event_rate(benchmark):
    """Raw simulator speed (events per second) on a mid-size tree."""
    tree = _TREES["grow-tree"]

    def run():
        return simulate_broadcast(tree, num_slices=100, record_trace=False)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.num_slices == 100
