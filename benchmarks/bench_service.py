"""Solve-service request latency: warm caches and batch dedup over HTTP.

The service (``repro.service``) keeps one byte-budgeted
:class:`~repro.api.Session` alive across requests, so what a client pays
per request depends almost entirely on cache temperature.  This benchmark
runs a real ``ThreadingHTTPServer`` on an ephemeral port and measures,
end to end (JSON encode, HTTP round trip, admission, solve, JSON decode):

* ``latency`` — per-request wall clock for a *cold* pass (every job new)
  vs a *warm* replay of the identical requests, asserting on every run
  that warm replies are byte-identical to cold replies and that the warm
  pass re-solves no LP (the ``/statz`` miss counter must not move);
* ``dedup`` — one batch request holding each job four times, asserting
  the service solves each distinct job once (LP misses == distinct jobs)
  and returns four identical copies of each reply;
* ``overhead`` — warm service request vs a warm in-process
  ``Session.solve``, i.e. what the HTTP + JSON envelope costs once the
  solve itself is a cache hit.

Run ``--quick`` in CI for a small smoke sweep; the full run publishes the
repository's ``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.request
from http.server import ThreadingHTTPServer
from pathlib import Path

from conftest import record_host
from repro import _version
from repro.api import Job, PlatformRecipe, Session
from repro.service import ServiceApp, ServiceConfig, SolveService
from repro.service.server import _make_handler
from bench_hotpaths import check

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_jobs(count: int) -> list[Job]:
    """``count`` distinct broadcast jobs on mid-size random platforms."""
    return [
        Job.broadcast(
            PlatformRecipe.of(
                "random", num_nodes=16, density=0.4, seed=5000 + index
            ),
            source=0,
            heuristic=("grow-tree", "prune-degree")[index % 2],
        )
        for index in range(count)
    ]


class ServiceUnderTest:
    """A live service + HTTP server on an ephemeral port."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.service = SolveService(config or ServiceConfig(port=0))
        self.service.start()
        handler = _make_handler(ServiceApp(self.service))
        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0), handler)
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()
        host, port = self.httpd.server_address[:2]
        self.base_url = f"http://{host}:{port}"

    def post_solve(self, jobs: list[Job]) -> tuple[float, bytes]:
        """POST one request; return (seconds, raw reply bytes)."""
        body = json.dumps(
            {"jobs": [job.canonical_payload() for job in jobs], "deadline": 300}
        ).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}/solve",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        start = time.perf_counter()
        with urllib.request.urlopen(request, timeout=300) as response:
            payload = response.read()
        return time.perf_counter() - start, payload

    def statz(self) -> dict:
        with urllib.request.urlopen(
            f"{self.base_url}/statz", timeout=30
        ) as response:
            return json.loads(response.read().decode("utf-8"))

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.service.stop()


def latency_stats(seconds: list[float]) -> dict:
    ordered = sorted(seconds)
    return {
        "requests": len(ordered),
        "total_seconds": round(sum(ordered), 5),
        "mean_seconds": round(sum(ordered) / len(ordered), 5),
        "p50_seconds": round(ordered[len(ordered) // 2], 5),
        "max_seconds": round(ordered[-1], 5),
    }


def bench_latency(under_test: ServiceUnderTest, jobs: list[Job]) -> dict:
    cold_times, cold_replies = [], []
    for job in jobs:
        seconds, reply = under_test.post_solve([job])
        cold_times.append(seconds)
        cold_replies.append(reply)

    misses_before = under_test.statz()["caches"]["lp_solutions"]["misses"]
    warm_times = []
    for index, job in enumerate(jobs):
        seconds, reply = under_test.post_solve([job])
        warm_times.append(seconds)
        check(
            reply == cold_replies[index],
            f"warm reply identical to cold reply, job {index}",
        )
    misses_after = under_test.statz()["caches"]["lp_solutions"]["misses"]
    check(
        misses_after == misses_before,
        "warm replay re-solved an LP (cache miss counter moved)",
    )

    cold, warm = latency_stats(cold_times), latency_stats(warm_times)
    return {
        "cold": cold,
        "warm": warm,
        "warm_speedup": round(cold["mean_seconds"] / warm["mean_seconds"], 2),
        "identical": True,
    }


def bench_dedup(jobs: list[Job], copies: int) -> dict:
    """A fresh service fed one batch holding each job ``copies`` times."""
    batch: list[Job] = [job for job in jobs for _ in range(copies)]
    # Admission limits sized for the batch: this measures dedup, not 429s.
    under_test = ServiceUnderTest(
        ServiceConfig(
            port=0,
            max_queued_jobs=len(batch),
            tenant_quota=len(batch),
            max_batch_jobs=len(batch),
        )
    )
    try:
        seconds, reply = under_test.post_solve(batch)
        payload = json.loads(reply.decode("utf-8"))
        results = payload["results"]
        check(len(results) == len(batch), "one reply entry per submitted job")
        for index, job in enumerate(jobs):
            group = results[index * copies : (index + 1) * copies]
            check(
                all(entry == group[0] for entry in group),
                f"duplicate submissions of job {index} got identical replies",
            )
        stats = under_test.statz()["caches"]["lp_solutions"]
        check(
            stats["misses"] == len(jobs),
            "batch dedup: distinct LP solves must equal distinct jobs",
        )
        return {
            "jobs_submitted": len(batch),
            "jobs_distinct": len(jobs),
            "batch_seconds": round(seconds, 5),
            "lp_misses": stats["misses"],
            "dedup_ratio": round(len(batch) / stats["misses"], 2),
            "identical": True,
        }
    finally:
        under_test.close()


def bench_overhead(under_test: ServiceUnderTest, job: Job, rounds: int) -> dict:
    """Warm HTTP request vs warm in-process solve of the same job."""
    session = Session()
    session.solve(job).materialize()  # warm the in-process caches too
    under_test.post_solve([job])

    service_seconds = min(
        under_test.post_solve([job])[0] for _ in range(rounds)
    )

    def in_process() -> float:
        start = time.perf_counter()
        session.solve(job).materialize().deterministic_metrics()
        return time.perf_counter() - start

    session_seconds = min(in_process() for _ in range(rounds))
    return {
        "warm_request_seconds": round(service_seconds, 5),
        "warm_session_seconds": round(session_seconds, 5),
        "envelope_seconds": round(service_seconds - session_seconds, 5),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep (CI smoke): 6 jobs, 2 dedup copies",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_service.json",
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)

    num_jobs, copies, rounds = (6, 2, 3) if args.quick else (24, 4, 10)
    jobs = make_jobs(num_jobs)

    under_test = ServiceUnderTest()
    try:
        record = {
            "benchmark": "service",
            "version": _version.__version__,
            "created_unix": round(time.time(), 1),
            "quick": args.quick,
            "host": record_host(),
            "latency": bench_latency(under_test, jobs),
            "dedup": bench_dedup(jobs, copies),
            "overhead": bench_overhead(under_test, jobs[0], rounds),
        }
    finally:
        under_test.close()

    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
