"""Benchmark of the dynamic-platform subsystem.

Measures, and records into ``BENCH_dynamics.json`` (repo root by default):

* **replay throughput** — events/sec of a full trace replay (batched
  window mutations + recompile per window) on a churny, congested trace;
* **batching amortization** — the same drift stream applied as one
  ``batch_mutate`` per window vs one ``update_link_costs`` per event,
  recompiling after every mutation (what any consumer of
  ``Platform.compiled()`` pays).  The epoch accounting is asserted before
  timing anything: the batched replay bumps ``mutation_epoch`` once per
  non-empty window, the per-event path once per event;
* **adaptive vs static** — :func:`repro.dynamics.run_dynamic` on a
  drifting trace; the run *asserts* that the adaptive policy measurably
  beats the static tree's mean achieved/bound ratio while re-planning
  strictly fewer times than the per-epoch oracle, and records the
  campaign wall-clock.

Run it as a script::

    PYTHONPATH=src python benchmarks/bench_dynamics.py [--quick]
        [--rounds 3] [--output BENCH_dynamics.json]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

from conftest import record_host
from repro import _version
from repro.dynamics import TraceReplayer, TraceSpec, generate_trace, run_dynamic
from repro.platform.generators.random_graph import generate_random_platform

REPO_ROOT = Path(__file__).resolve().parent.parent

# The drifting-trace fixture of the adaptive comparison: enough smooth
# drift that the initial tree goes stale mid-campaign, enough persistence
# (rho) that re-planning pays for itself before the platform moves again.
ADAPTIVE_PLATFORM = dict(num_nodes=14, density=0.3, seed=11)
ADAPTIVE_TRACE = TraceSpec(
    seed=5, horizon=10, drift=0.25, drift_rho=0.7, congestion_rate=0.2
)


def _best_of(rounds: int, fn, *args, **kwargs):
    best, result = math.inf, None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_replay(num_nodes: int, horizon: int, rounds: int) -> dict:
    """Events/sec of a full batched replay, recompiling every window."""
    platform = generate_random_platform(num_nodes=num_nodes, density=0.3, seed=11)
    spec = TraceSpec(
        seed=5, horizon=horizon, drift=0.3, congestion_rate=0.5, churn_rate=0.2
    )
    trace = generate_trace(platform, spec, protect=(0,))

    def run() -> None:
        replayer = TraceReplayer(platform, trace)
        while not replayer.done:
            replayer.apply_next_window()
            replayer.platform.compiled()

    seconds, _ = _best_of(rounds, run)
    return {
        "num_nodes": num_nodes,
        "num_edges": platform.num_links,
        "windows": trace.num_windows,
        "events": trace.num_events,
        "seconds": seconds,
        "events_per_second": trace.num_events / seconds,
    }


def bench_batching(
    num_nodes: int, horizon: int, rounds: int, assert_timings: bool
) -> dict:
    """One batch per window vs one singleton update per event."""
    platform = generate_random_platform(num_nodes=num_nodes, density=0.3, seed=11)
    spec = TraceSpec(seed=3, horizon=horizon, drift=0.4)  # drift-only: cost events
    trace = generate_trace(platform, spec)
    base = {edge: platform.link(*edge).cost for edge in platform.edges}

    # Epoch accounting, asserted before timing anything: this is the whole
    # point of the batch API, so the bench fails loudly if it regresses.
    batched = TraceReplayer(platform, trace)
    start_epoch = batched.platform.mutation_epoch
    while not batched.done:
        batched.apply_next_window()
    nonempty = sum(1 for window in trace.windows if window)
    assert batched.platform.mutation_epoch - start_epoch == nonempty, (
        "batched replay must bump mutation_epoch once per non-empty window"
    )
    per_event = platform.copy("per-event")
    start_epoch = per_event.mutation_epoch
    for window in trace.windows:
        for event in window:
            per_event.update_link_costs(
                {event.edge: base[event.edge].scaled(event.factor)}
            )
    assert per_event.mutation_epoch - start_epoch == trace.num_events, (
        "singleton updates must bump mutation_epoch once per event"
    )

    def run_batched() -> None:
        replayer = TraceReplayer(platform, trace)
        while not replayer.done:
            replayer.apply_next_window()
            replayer.platform.compiled()

    def run_per_event() -> None:
        work = platform.copy("per-event-timed")
        for window in trace.windows:
            for event in window:
                work.update_link_costs(
                    {event.edge: base[event.edge].scaled(event.factor)}
                )
                work.compiled()

    batched_seconds, _ = _best_of(rounds, run_batched)
    per_event_seconds, _ = _best_of(rounds, run_per_event)
    # Full runs gate on the amortization actually amortizing; the --quick
    # CI smoke only records the ratio (shared-runner timing jitter).
    if assert_timings:
        assert batched_seconds < per_event_seconds, (
            batched_seconds,
            per_event_seconds,
        )
    return {
        "num_nodes": num_nodes,
        "windows": trace.num_windows,
        "events": trace.num_events,
        "batched_seconds": batched_seconds,
        "per_event_seconds": per_event_seconds,
        "speedup": per_event_seconds / batched_seconds,
        "batched_epoch_bumps": nonempty,
        "per_event_epoch_bumps": trace.num_events,
    }


def bench_adaptive(rounds: int) -> dict:
    """Adaptive vs static vs oracle on the drifting fixture, asserted."""
    platform = generate_random_platform(**ADAPTIVE_PLATFORM)
    trace = generate_trace(platform, ADAPTIVE_TRACE, protect=(0,))
    seconds, outcome = _best_of(
        rounds,
        run_dynamic,
        platform,
        trace,
        source=0,
        threshold=0.15,
        replan_cost=0.1,
    )
    static = outcome.timeline("static")
    oracle = outcome.timeline("oracle")
    adaptive = outcome.timeline("adaptive")
    # The subsystem's headline claims, asserted on every run (the outcome
    # is deterministic, so these are safe to gate CI on):
    assert adaptive.mean_ratio > static.mean_ratio + 0.02, (
        adaptive.mean_ratio,
        static.mean_ratio,
    )
    assert adaptive.replans < oracle.replans, (adaptive.replans, oracle.replans)
    assert static.replans == 0
    return {
        "num_nodes": ADAPTIVE_PLATFORM["num_nodes"],
        "horizon": ADAPTIVE_TRACE.horizon,
        "events": trace.num_events,
        "campaign_seconds": seconds,
        "mean_ratio": {
            "static": static.mean_ratio,
            "oracle": oracle.mean_ratio,
            "adaptive": adaptive.mean_ratio,
        },
        "replans": {
            "static": static.replans,
            "oracle": oracle.replans,
            "adaptive": adaptive.replans,
        },
        "adaptive_over_static": adaptive.mean_ratio / static.mean_ratio,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sweep")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_dynamics.json"))
    args = parser.parse_args(argv)

    if args.quick:
        replay_sizes, horizon = [12], 10
    else:
        replay_sizes, horizon = [12, 20, 30], 20

    replay = [bench_replay(size, horizon, args.rounds) for size in replay_sizes]
    batching = [
        bench_batching(size, horizon, args.rounds, assert_timings=not args.quick)
        for size in replay_sizes
    ]
    adaptive = bench_adaptive(args.rounds)

    payload = {
        "benchmark": "dynamics",
        "version": _version.__version__,
        "host": record_host(),
        "replay": replay,
        "batching": batching,
        "adaptive": adaptive,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    for row in replay:
        print(
            f"replay   n={row['num_nodes']:3d}  {row['events']:4d} events / "
            f"{row['windows']} windows: {row['seconds'] * 1000:7.2f} ms "
            f"({row['events_per_second']:8.0f} events/s)"
        )
    for row in batching:
        print(
            f"batching n={row['num_nodes']:3d}  batched {row['batched_seconds'] * 1000:7.2f} ms "
            f"({row['batched_epoch_bumps']} epochs) vs per-event "
            f"{row['per_event_seconds'] * 1000:7.2f} ms "
            f"({row['per_event_epoch_bumps']} epochs): {row['speedup']:.1f}x"
        )
    ratios = adaptive["mean_ratio"]
    print(
        f"adaptive n={adaptive['num_nodes']:3d}  mean ratio "
        f"{ratios['adaptive']:.3f} vs static {ratios['static']:.3f} "
        f"({adaptive['adaptive_over_static']:.2f}x), re-plans "
        f"{adaptive['replans']['adaptive']} vs oracle "
        f"{adaptive['replans']['oracle']}, campaign "
        f"{adaptive['campaign_seconds']:.2f} s"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
