"""Benchmark regenerating Table 3: one-port heuristics on Tiers-like platforms."""

from __future__ import annotations

import pytest

from repro.experiments import check_table3_shape, table_3, tiers_ensemble_records


@pytest.mark.paper
def test_table_3(benchmark, paper_parameters, bench_header):
    """Reproduce Table 3 and check its qualitative shape."""

    def run():
        records = tiers_ensemble_records(paper_parameters)
        return table_3(paper_parameters, records=records)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    check = check_table3_shape(table)
    print()
    print(bench_header)
    print(table.render())
    print(check.render())
    check.raise_on_failure()

    # Paper shape: on both sizes the refined pruning / growing / LP-based
    # heuristics stay above 50 % of the optimum while the binomial tree
    # collapses on hierarchical platforms.
    for size in table.rows:
        assert table.cell(size, "Binomial Tree").mean < 0.5
        assert table.cell(size, "Grow Tree").mean > 0.5
