"""Shared fixtures for the benchmark harness.

The figure/table benchmarks reproduce the paper's evaluation; their cost is
dominated by the steady-state LP solves, so the ensemble size is controlled
by the ``REPRO_EXPERIMENT_SCALE`` environment variable (default 0.1, i.e.
one configuration per parameter point and 10 Tiers platforms per size — set
it to 1.0 for the full reproduction, or to 0.25+ for better statistics).
All figure benchmarks
share the same evaluated ensemble through the process-wide cache in
:mod:`repro.experiments.runner`, so the expensive work is paid once.
"""

from __future__ import annotations

import os
import platform as host_platform
import sys

import pytest

from repro.experiments import PaperParameters, parameters_from_environment


def record_host(pool: dict | None = None) -> dict:
    """The ``host`` block every ``bench_*.py`` stamps into its JSON record.

    One shared definition keeps the published ``BENCH_*.json`` artefacts
    field-compatible; the standalone bench scripts import it directly
    (``from conftest import record_host`` — their directory is on
    ``sys.path`` when run as scripts).

    When a worker-``pool`` block is passed, the cpu_count *at bench time*
    is stamped into it too: the pool speedup assertions are conditional on
    core count, so the block must carry the value the decision was made
    with (containers can present a different count than the artefact
    reader's host).
    """
    host = {
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "machine": host_platform.machine(),
    }
    if pool is not None:
        pool["cpu_count"] = host["cpu_count"]
    return host


def pytest_configure(config):
    config.addinivalue_line("markers", "paper: benchmarks reproducing a paper artefact")


@pytest.fixture(scope="session")
def paper_parameters() -> PaperParameters:
    """Experiment parameters, scaled via REPRO_EXPERIMENT_SCALE (default 0.1)."""
    return parameters_from_environment(default_scale=0.1)


@pytest.fixture(scope="session")
def bench_header(paper_parameters) -> str:
    """One-line description of the ensemble printed by every paper benchmark."""
    return f"ensemble: {paper_parameters.describe()}"
