"""Benchmark of the ``repro.api`` facade: overhead and cache-hit speedup.

Measures, and records into ``BENCH_api.json`` (repo root by default):

* **facade overhead** — wall-clock of a full cold solve (LP + tree +
  throughput + relative performance) through ``Session.solve`` versus the
  same sequence hand-wired on the layer APIs (``solve_steady_state_lp`` +
  ``build_broadcast_tree`` + ``tree_throughput``).  Asserted <= 5% overhead
  (median of several fresh-session rounds); the facade adds one canonical
  JSON hash per cache, which is microseconds against millisecond LP solves.
* **cache-hit speedup** — a second ``solve`` of the identical job against
  the session's warm caches (no LP re-solve, no tree rebuild), and a batch
  replay of the same jobs through ``solve_many``.
* **equivalence** — the facade numbers are asserted bit-identical to the
  direct layer calls before any timing is recorded.

Run it as a script::

    PYTHONPATH=src python benchmarks/bench_api.py [--rounds 7]
        [--output BENCH_api.json] [--quick]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from conftest import record_host

from repro import (
    Job,
    PlatformRecipe,
    Session,
    _version,
    build_broadcast_tree,
    solve_steady_state_lp,
    tree_throughput,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (num_nodes, density) cases; the facade overhead must stay negligible on
#: small platforms too, where the LP is cheapest and overhead proportionally
#: largest.
CASES = {"15-nodes": (15, 0.2), "30-nodes": (30, 0.12), "50-nodes": (50, 0.06)}

#: Maximum tolerated median facade overhead vs direct layer calls.
MAX_OVERHEAD = 0.05


def direct_solve(platform, source: int, heuristic: str) -> tuple[float, float]:
    """The hand-wired sequence every caller used to repeat."""
    solution = solve_steady_state_lp(platform, source)
    tree = build_broadcast_tree(
        platform, source, heuristic=heuristic, strict_model=False
    )
    report = tree_throughput(tree)
    return report.throughput, report.throughput / solution.throughput


def bench_case(num_nodes: int, density: float, rounds: int) -> dict:
    """Cold-solve timings, facade vs direct, plus warm cache-hit timings."""
    recipe = PlatformRecipe.of("random", num_nodes=num_nodes, density=density, seed=5)
    job = Job.broadcast(recipe, source=0, heuristic="grow-tree")
    platform = recipe.build()

    # Equivalence first: the facade must compute the very same numbers.
    facade = Session().solve(job).materialize()
    throughput, relative = direct_solve(platform, 0, "grow-tree")
    assert facade.throughput == throughput, "facade/direct throughput mismatch"
    assert facade.relative_performance == relative, "facade/direct ratio mismatch"

    direct_times = []
    facade_times = []
    warm_times = []
    for _ in range(rounds):
        # Both arms start from the declarative description: the direct path
        # also has to generate the platform before it can solve anything.
        start = time.perf_counter()
        direct_solve(recipe.build(), 0, "grow-tree")
        direct_times.append(time.perf_counter() - start)

        session = Session()  # cold caches: the honest facade cost
        start = time.perf_counter()
        session.solve(job).materialize()
        facade_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        session.solve(Job.from_json(job.to_json())).materialize()
        warm_times.append(time.perf_counter() - start)

    direct_s = statistics.median(direct_times)
    facade_s = statistics.median(facade_times)
    warm_s = statistics.median(warm_times)
    return {
        "direct_seconds": round(direct_s, 6),
        "facade_seconds": round(facade_s, 6),
        "overhead": round(facade_s / direct_s - 1.0, 4),
        "cache_hit_seconds": round(warm_s, 6),
        "cache_hit_speedup": round(facade_s / warm_s, 1),
    }


def bench_batch(rounds: int) -> dict:
    """solve_many cold vs replay through the same session's caches."""
    recipe = PlatformRecipe.of("random", num_nodes=25, density=0.15, seed=9)
    jobs = [
        Job.broadcast(recipe, source=0, heuristic=name)
        for name in ("prune-simple", "prune-degree", "grow-tree", "lp-grow-tree",
                     "lp-prune", "binomial")
    ]
    # Equivalence first, against *independent* fresh-session solves: a
    # session-internal comparison would share payload dicts and prove nothing.
    reference = [
        Session().solve(job).materialize().deterministic_metrics() for job in jobs
    ]
    cold_times = []
    replay_times = []
    for _ in range(rounds):
        session = Session()
        start = time.perf_counter()
        session.solve_many(jobs)
        cold_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        replayed = session.solve_many(list(jobs))
        replay_times.append(time.perf_counter() - start)
        assert [
            r.deterministic_metrics() for r in replayed
        ] == reference, "batch replay diverged from sequential solves"
    cold_s = statistics.median(cold_times)
    replay_s = statistics.median(replay_times)
    return {
        "num_jobs": len(jobs),
        "cold_seconds": round(cold_s, 6),
        "replay_seconds": round(replay_s, 6),
        "replay_speedup": round(cold_s / replay_s, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=7)
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_api.json"))
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer rounds, skip the 50-node case (CI smoke)",
    )
    args = parser.parse_args(argv)
    rounds = 3 if args.quick else args.rounds
    cases = dict(list(CASES.items())[:2]) if args.quick else CASES

    results = {
        "benchmark": "api-facade",
        "version": _version.__version__,
        "host": record_host(),
        "rounds": rounds,
        "max_overhead": MAX_OVERHEAD,
        "cold_solve": {},
    }
    worst = -1.0
    for label, (num_nodes, density) in cases.items():
        case = bench_case(num_nodes, density, rounds)
        results["cold_solve"][label] = case
        worst = max(worst, case["overhead"])
        print(
            f"{label}: direct {case['direct_seconds'] * 1000:.2f} ms, "
            f"facade {case['facade_seconds'] * 1000:.2f} ms "
            f"({case['overhead']:+.1%}), cache hit {case['cache_hit_speedup']}x"
        )
    results["worst_overhead"] = worst
    results["batch"] = bench_batch(rounds)
    print(
        f"batch of {results['batch']['num_jobs']}: cold "
        f"{results['batch']['cold_seconds'] * 1000:.2f} ms, replay "
        f"{results['batch']['replay_seconds'] * 1000:.2f} ms "
        f"({results['batch']['replay_speedup']}x)"
    )

    results["overhead_within_budget"] = bool(worst <= MAX_OVERHEAD)
    if not args.quick:
        # Like the other benchmarks, timing asserts are full-run only: the
        # 3-round --quick CI smoke records the ratio but must not go red on
        # shared-runner jitter.
        assert worst <= MAX_OVERHEAD, (
            f"facade overhead {worst:.1%} exceeds the {MAX_OVERHEAD:.0%} budget"
        )

    output = Path(args.output)
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
