"""Benchmark regenerating Figure 5: multi-port heuristics vs platform size.

The reference value is still the one-port LP optimum (as in the paper), so
the multi-port-aware heuristics may exceed a ratio of 1.
"""

from __future__ import annotations

import pytest

from repro.experiments import check_figure5_shape, figure_5, random_ensemble_records


@pytest.mark.paper
def test_figure_5(benchmark, paper_parameters, bench_header):
    """Reproduce Figure 5 and check its qualitative shape."""

    def run():
        records = random_ensemble_records(paper_parameters)
        return figure_5(paper_parameters, records=records)

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    check = check_figure5_shape(figure)
    print()
    print(bench_header)
    print(figure.render())
    print(check.render())
    check.raise_on_failure()

    # The multi-port growing tree must dominate the binomial tree at every
    # platform size, as in the paper's figure.
    grow = figure.series_for("Multi Port Grow Tree")
    binomial = figure.series_for("Binomial Tree")
    assert all(g > b for g, b in zip(grow, binomial))
