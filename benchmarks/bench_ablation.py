"""Ablation benchmarks for the design choices called out in DESIGN.md.

Three ablations, none of which exist in the paper but all of which answer
questions a careful reader asks:

1. **Grow-tree cost update** — the paper's printed pseudo-code (Algorithm 3)
   accumulates the *cost* of the chosen edge instead of its *weight*; how
   much does the textual metric (our default) gain?
2. **Local search** — how much throughput does the greedy bottleneck
   re-parenting post-pass recover on top of each heuristic?
3. **LP-Prune edge order** — the printed Algorithm 6 sorts edges in the
   opposite order from the surrounding text; removing the *most* used edges
   first (the literal pseudo-code) should be clearly worse than removing the
   least used first (our default, following the text).
"""

from __future__ import annotations

import pytest

from repro import (
    GrowingMinimumOutDegreeTree,
    build_broadcast_tree,
    improve_tree,
    generate_random_platform,
    solve_steady_state_lp,
    tree_throughput,
)
from repro.analysis.metrics import summarize
from repro.utils.ascii_plot import format_table

_PLATFORMS = [
    generate_random_platform(num_nodes=30, density=0.12, seed=seed) for seed in range(5)
]
_LP = {id(p): solve_steady_state_lp(p, 0) for p in _PLATFORMS}


def _relative(tree, platform):
    return tree_throughput(tree).throughput / _LP[id(platform)].throughput


def test_ablation_grow_tree_cost_update(benchmark):
    """Textual cost metric vs the literal pseudo-code update of Algorithm 3."""

    def run():
        rows = []
        for platform in _PLATFORMS:
            textual = _relative(GrowingMinimumOutDegreeTree().build(platform, 0), platform)
            literal = _relative(
                GrowingMinimumOutDegreeTree(literal_cost_update=True).build(platform, 0),
                platform,
            )
            rows.append((textual, literal))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    textual = summarize([r[0] for r in rows])
    literal = summarize([r[1] for r in rows])
    print()
    print(
        format_table(
            ["variant", "mean relative performance", "min", "max"],
            [
                ["textual metric (default)", textual.mean, textual.minimum, textual.maximum],
                ["literal pseudo-code", literal.mean, literal.minimum, literal.maximum],
            ],
        )
    )
    assert textual.mean >= literal.mean - 0.05


def test_ablation_local_search(benchmark):
    """Throughput gained by the greedy re-parenting pass on top of heuristics."""

    def run():
        gains = {}
        for name in ("grow-tree", "prune-degree", "binomial"):
            ratios = []
            for platform in _PLATFORMS:
                base = build_broadcast_tree(platform, 0, name)
                improved = improve_tree(base)
                ratios.append(
                    tree_throughput(improved).throughput / tree_throughput(base).throughput
                )
            gains[name] = summarize(ratios)
        return gains

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["heuristic", "mean improvement factor", "max"],
            [[name, stats.mean, stats.maximum] for name, stats in gains.items()],
        )
    )
    for name, stats in gains.items():
        assert stats.mean >= 1.0 - 1e-9, name
    # The binomial tree benefits the most from local improvement.
    assert gains["binomial"].mean >= gains["grow-tree"].mean - 1e-9


def test_ablation_lp_prune_edge_order(benchmark):
    """Pruning least-used LP edges first (text) vs most-used first (pseudo-code)."""
    from repro.core.lp_prune import LPCommunicationGraphPruning
    from repro.utils.graph_utils import (
        adjacency_from_edges,
        edge_removal_keeps_spanning,
        sort_edges_by_weight,
    )
    from repro.core.tree import BroadcastTree

    def prune_most_used_first(platform, solution):
        """The literal printed pseudo-code of Algorithm 6 (for comparison)."""
        nodes = platform.nodes
        messages = {edge: solution.edge_weight(*edge) for edge in platform.edges}
        remaining = set(messages)
        adjacency = adjacency_from_edges(nodes, remaining)
        while len(remaining) > len(nodes) - 1:
            removed = 0
            for edge in sort_edges_by_weight(remaining, messages, descending=True):
                if len(remaining) <= len(nodes) - 1:
                    break
                if edge_removal_keeps_spanning(0, nodes, adjacency, edge):
                    remaining.discard(edge)
                    adjacency[edge[0]].discard(edge[1])
                    removed += 1
            if removed == 0:
                break
        return BroadcastTree.from_edges(platform, 0, remaining, name="lp-prune-literal")

    def run():
        text_ratios, literal_ratios = [], []
        for platform in _PLATFORMS:
            solution = _LP[id(platform)]
            text_tree = LPCommunicationGraphPruning().build(
                platform, 0, lp_solution=solution
            )
            literal_tree = prune_most_used_first(platform, solution)
            text_ratios.append(_relative(text_tree, platform))
            literal_ratios.append(_relative(literal_tree, platform))
        return summarize(text_ratios), summarize(literal_ratios)

    text_stats, literal_stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["edge order", "mean relative performance"],
            [
                ["least-used first (text, default)", text_stats.mean],
                ["most-used first (printed pseudo-code)", literal_stats.mean],
            ],
        )
    )
    assert text_stats.mean >= literal_stats.mean
