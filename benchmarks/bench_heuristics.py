"""Micro-benchmarks of the tree-construction heuristics themselves.

These are classic pytest-benchmark measurements (many rounds) of the time it
takes each heuristic to build a tree on platforms of the two sizes used by
the paper's Tiers ensembles.  They document that every heuristic is
comfortably polynomial: even the quadratic pruning heuristics stay in the
tens of milliseconds at 65 nodes, which is negligible next to the broadcast
itself.
"""

from __future__ import annotations

import pytest

from repro import (
    MultiPortModel,
    build_broadcast_tree,
    generate_random_platform,
    solve_steady_state_lp,
)
from repro.core.registry import PAPER_ONE_PORT_HEURISTICS

SIZES = {"30-nodes": (30, 0.12), "65-nodes": (65, 0.08)}
_PLATFORMS = {
    label: generate_random_platform(num_nodes=n, density=d, seed=1)
    for label, (n, d) in SIZES.items()
}
_LP_SOLUTIONS = {}


def _lp_solution(label):
    if label not in _LP_SOLUTIONS:
        _LP_SOLUTIONS[label] = solve_steady_state_lp(_PLATFORMS[label], 0)
    return _LP_SOLUTIONS[label]


@pytest.mark.parametrize("label", sorted(SIZES))
@pytest.mark.parametrize("heuristic", PAPER_ONE_PORT_HEURISTICS)
def test_one_port_heuristic_build_time(benchmark, heuristic, label):
    """Tree-construction time of each one-port heuristic (LP excluded)."""
    platform = _PLATFORMS[label]
    kwargs = {"lp_solution": _lp_solution(label)} if heuristic.startswith("lp-") else {}

    tree = benchmark(lambda: build_broadcast_tree(platform, 0, heuristic, **kwargs))
    assert tree.num_nodes == platform.num_nodes


@pytest.mark.parametrize("label", sorted(SIZES))
@pytest.mark.parametrize("heuristic", ["multiport-grow-tree", "multiport-prune-degree"])
def test_multi_port_heuristic_build_time(benchmark, heuristic, label):
    """Tree-construction time of the multi-port heuristics."""
    platform = _PLATFORMS[label]
    model = MultiPortModel()

    tree = benchmark(lambda: build_broadcast_tree(platform, 0, heuristic, model=model))
    assert tree.num_nodes == platform.num_nodes
