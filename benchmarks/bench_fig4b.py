"""Benchmark regenerating Figure 4(b): one-port heuristics vs platform density.

Shares the evaluated random-platform ensemble with ``bench_fig4a`` (the
runner caches it process-wide), so this benchmark mostly measures the
aggregation cost unless it runs first.
"""

from __future__ import annotations

import pytest

from repro.experiments import check_figure4_shape, figure_4b, random_ensemble_records


@pytest.mark.paper
def test_figure_4b(benchmark, paper_parameters, bench_header):
    """Reproduce Figure 4(b) and check its qualitative shape."""

    def run():
        records = random_ensemble_records(paper_parameters)
        return figure_4b(paper_parameters, records=records)

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    check = check_figure4_shape(figure)
    print()
    print(bench_header)
    print(figure.render())
    print(check.render())
    check.raise_on_failure()

    # Density axis must cover the requested grid (after bucketing of the
    # achieved densities).
    assert len(figure.x_values) >= 2
