"""Benchmarks of the steady-state LP: assembly and solve time vs platform size.

The LP is the only super-linear component of the reproduction (its size is
``O(edges * nodes)`` variables); these benchmarks track how the assembly and
the HiGHS solve scale with the platform size so regressions in the sparse
formulation are caught.
"""

from __future__ import annotations

import pytest

from repro import generate_random_platform, solve_steady_state_lp
from repro.lp.formulation import build_steady_state_lp

CASES = {
    "20-nodes": (20, 0.15),
    "30-nodes": (30, 0.12),
    "50-nodes-sparse": (50, 0.06),
}
_PLATFORMS = {
    label: generate_random_platform(num_nodes=n, density=d, seed=3)
    for label, (n, d) in CASES.items()
}


@pytest.mark.parametrize("label", sorted(CASES))
def test_lp_assembly_time(benchmark, label):
    """Time to assemble the sparse LP matrices."""
    platform = _PLATFORMS[label]
    data = benchmark(lambda: build_steady_state_lp(platform, 0))
    assert data.index.num_variables > 0


@pytest.mark.parametrize("label", sorted(CASES))
def test_lp_solve_time(benchmark, label):
    """Time to assemble *and* solve the LP with HiGHS (rounds kept small)."""
    platform = _PLATFORMS[label]
    solution = benchmark.pedantic(
        lambda: solve_steady_state_lp(platform, 0), rounds=2, iterations=1
    )
    assert solution.throughput > 0
