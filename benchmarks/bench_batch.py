"""Ensemble batching vs per-item kernel loops (``repro.kernels.batch``).

The per-item kernels (``arrival_matrix``, ``inorder_direct_run``) already
removed the per-``(node, slice)`` interpreter cost; a campaign still pays
Python dispatch once per *platform*.  This benchmark measures what stacking
hundreds of compiled trees into one :class:`~repro.kernels.EnsembleBatch`
buys over looping the per-item kernels, and asserts — inside the timed
harness, on every run — that the batched sweeps return **bit-identical**
results (integer-cost platforms, so no tolerance), that the batched LP
assembly is entry-identical to the per-item builder, and that
``Session.solve_many`` equals sequential ``solve``.

Sections of the JSON record (written to ``BENCH_batch.json``):

* ``makespan`` — ``batch_pipelined_makespan`` vs an ``arrival_matrix`` loop,
  per ensemble size and slice count, both port models;
* ``simulation`` — ``batch_inorder_simulation`` vs an ``inorder_direct_run``
  loop (one-port; the multi-port replay falls back per item by design);
* ``lp_assembly`` — ``batch_lp_assembly`` vs a ``build_collective_lp`` loop
  (equality is the point; assembly shares the same triplet builder, so the
  speedup is bookkeeping only);
* ``solve_many`` — the facade path: one batched session vs one fresh
  session per job.

Run ``--quick`` in CI for a small smoke sweep; the full run (default
ensemble of 256 platforms, 20-50 nodes) publishes the repository's
``BENCH_batch.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from conftest import record_host
from repro import _version
from repro.api import Job, PlatformRecipe, Session
from repro.collectives import CollectiveSpec
from repro.core.grow_tree import GrowingMinimumOutDegreeTree
from repro.kernels import (
    EnsembleBatch,
    arrival_matrix,
    batch_arrival_matrices,
    batch_inorder_simulation,
    batch_lp_assembly,
    batch_pipelined_makespan,
    inorder_direct_run,
)
from repro.lp.formulation import build_collective_lp
from repro.models.port_models import MultiPortModel, OnePortModel
from bench_hotpaths import BenchError, best_of, check, integer_platform

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Node counts cycled through the ensemble (the paper's mid-size range).
ENSEMBLE_NODE_COUNTS = (20, 50)


def build_ensemble(num_platforms: int):
    """``num_platforms`` integer platforms with their grow-trees, compiled."""
    heuristic = GrowingMinimumOutDegreeTree()
    platforms, trees, ctrees = [], [], []
    for index in range(num_platforms):
        num_nodes = ENSEMBLE_NODE_COUNTS[index % len(ENSEMBLE_NODE_COUNTS)]
        platform = integer_platform(num_nodes, seed=1000 + index)
        tree = heuristic.build(platform, 0)
        platforms.append(platform)
        trees.append(tree)
        ctrees.append(tree.compiled())
    return platforms, trees, ctrees


def bench_makespan(ctrees, slice_counts, rounds) -> dict:
    results = {}
    for model_name, model in (("one-port", OnePortModel()), ("multi-port", MultiPortModel())):
        build_seconds, batch = best_of(
            rounds, lambda: EnsembleBatch.from_trees(ctrees, model)
        )
        for num_slices in slice_counts:
            batched_seconds, (makespans, fills) = best_of(
                rounds, lambda: batch_pipelined_makespan(batch, num_slices)
            )

            def per_item_loop():
                matrices = [arrival_matrix(c, num_slices, model) for c in ctrees]
                return (
                    np.asarray([m[:, num_slices - 1].max() for m in matrices]),
                    np.asarray([m[:, 0].max() for m in matrices]),
                    matrices,
                )

            loop_seconds, (loop_makespans, loop_fills, matrices) = best_of(
                rounds, per_item_loop
            )
            arrivals, _ = batch_arrival_matrices(batch, num_slices)
            for item, matrix in enumerate(matrices):
                check(
                    np.array_equal(arrivals[batch.item_rows(item)], matrix),
                    f"batched arrivals vs arrival_matrix, {model_name} item {item}",
                )
            check(
                np.array_equal(makespans, loop_makespans)
                and np.array_equal(fills, loop_fills),
                f"batched makespans/fills vs per-item loop ({model_name})",
            )
            results[f"{model_name}-K{num_slices}"] = {
                "ensemble": len(ctrees),
                "batch_build_seconds": round(build_seconds, 5),
                "per_item_seconds": round(loop_seconds, 5),
                "batched_seconds": round(batched_seconds, 5),
                "speedup": round(loop_seconds / batched_seconds, 2),
                "identical": True,
            }
    return results


def bench_simulation(ctrees, slice_counts, rounds) -> dict:
    model = OnePortModel()
    batch = EnsembleBatch.from_trees(ctrees, model)
    results = {}
    for num_slices in slice_counts:
        batched_seconds, runs = best_of(
            rounds, lambda: batch_inorder_simulation(batch, num_slices)
        )
        loop_seconds, reference = best_of(
            rounds,
            lambda: [inorder_direct_run(c, num_slices, model) for c in ctrees],
        )
        for item, (run, ref) in enumerate(zip(runs, reference)):
            check(
                np.array_equal(run[0], ref[0])
                and list(run[1]) == list(ref[1]) and run[1] == ref[1]
                and list(run[2]) == list(ref[2]) and run[2] == ref[2]
                and list(run[3]) == list(ref[3]) and run[3] == ref[3],
                f"batched simulation vs inorder_direct_run, item {item}",
            )
        results[f"one-port-K{num_slices}"] = {
            "ensemble": len(ctrees),
            "per_item_seconds": round(loop_seconds, 5),
            "batched_seconds": round(batched_seconds, 5),
            "speedup": round(loop_seconds / batched_seconds, 2),
            "identical": True,
        }
    return results


def bench_lp_assembly(platforms, rounds) -> dict:
    problems = [(p, CollectiveSpec.broadcast(0)) for p in platforms]
    for platform, spec in problems:  # warm the compiled-view caches once
        build_collective_lp(platform, spec)
    batched_seconds, batch = best_of(rounds, lambda: batch_lp_assembly(problems))
    loop_seconds, reference = best_of(
        rounds, lambda: [build_collective_lp(p, s) for p, s in problems]
    )
    for item, ref in enumerate(reference):
        split = batch.data_for(item)
        check(
            (split.a_eq != ref.a_eq).nnz == 0
            and (split.a_ub != ref.a_ub).nnz == 0
            and np.array_equal(split.b_ub, ref.b_ub)
            and np.array_equal(split.objective, ref.objective)
            and split.bounds == ref.bounds,
            f"batched LP assembly vs build_collective_lp, item {item}",
        )
    return {
        "ensemble": len(problems),
        "per_item_seconds": round(loop_seconds, 5),
        "batched_seconds": round(batched_seconds, 5),
        "speedup": round(loop_seconds / batched_seconds, 2),
        "identical": True,
    }


def bench_solve_many(num_platforms, num_slices) -> dict:
    """The facade path: one batched session vs a fresh session per job."""
    recipes = [
        PlatformRecipe.of(
            "random", num_nodes=16, density=0.4, seed=3000 + index
        )
        for index in range(num_platforms)
    ]
    jobs = [
        Job.broadcast(recipe, heuristic=heuristic, simulate=True, num_slices=num_slices)
        for recipe in recipes
        for heuristic in ("grow-tree", "prune-degree")
    ]
    start = time.perf_counter()
    batched = Session().solve_many(jobs)
    batched_seconds = time.perf_counter() - start
    start = time.perf_counter()
    sequential = [Session().solve(job).materialize() for job in jobs]
    sequential_seconds = time.perf_counter() - start
    check(
        [r.deterministic_metrics() for r in batched]
        == [r.deterministic_metrics() for r in sequential],
        "solve_many vs sequential solve metrics",
    )
    return {
        "jobs": len(jobs),
        "sequential_seconds": round(sequential_seconds, 5),
        "batched_seconds": round(batched_seconds, 5),
        "speedup": round(sequential_seconds / batched_seconds, 2),
        "identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep (CI smoke): 32 platforms, K=50, one round",
    )
    parser.add_argument("--rounds", type=int, default=3, help="best-of round count")
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_batch.json",
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)

    if args.quick:
        ensemble, slice_counts, rounds, facade_platforms = 32, (50,), 1, 4
    else:
        ensemble, slice_counts, rounds, facade_platforms = 256, (50, 200), args.rounds, 16

    platforms, _trees, ctrees = build_ensemble(ensemble)

    record = {
        "benchmark": "batch",
        "version": _version.__version__,
        "created_unix": round(time.time(), 1),
        "quick": args.quick,
        "host": record_host(),
        "ensemble": ensemble,
        "node_counts": list(ENSEMBLE_NODE_COUNTS),
        "makespan": bench_makespan(ctrees, slice_counts, rounds),
        "simulation": bench_simulation(ctrees, slice_counts, rounds),
        "lp_assembly": bench_lp_assembly(platforms, rounds),
        "solve_many": bench_solve_many(facade_platforms, num_slices=40),
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))

    if not args.quick:
        # The 5x target applies to the dispatch-bound regime batching
        # addresses (small K: per-item Python dispatch dominates).  Larger
        # slice counts are recorded too, but there both paths are
        # array-bound and the ratio honestly shrinks.
        target_suffix = f"-K{min(slice_counts)}"
        for section in ("makespan", "simulation"):
            for label, row in record[section].items():
                if label.endswith(target_suffix) and row["speedup"] < 5.0:
                    print(
                        f"WARNING: {section}/{label} speedup {row['speedup']}x "
                        "below the 5x target",
                        file=sys.stderr,
                    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
