"""Benchmark of the batched ensemble-evaluation pipeline.

Measures, and records into ``BENCH_pipeline.json`` (repo root by default):

* **ensemble throughput** — wall-clock of a 200-platform random ensemble
  evaluated serially vs. the per-``map`` :class:`ProcessExecutor` vs. the
  persistent :class:`~repro.pool.WarmPoolExecutor` (workers pre-spawned,
  spawn time recorded separately), plus the replay time from a warm
  on-disk cache; the serial and pool record streams are verified
  bit-identical (timing fields excluded).
* **dispatch overhead** — per-task cost of shipping a trivial task through
  the warm pool (amortized over its lifetime) vs. the fresh-pool-per-map
  :class:`ProcessExecutor`; the ``reduction`` ratio is what ROADMAP item 3
  claims back.
* **LP assembly** — the vectorised, compiled-array assembly of the
  steady-state LP (:func:`build_steady_state_lp`) vs. the per-edge loop
  reference (:func:`build_steady_state_lp_reference`).

Run it as a script::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--jobs 4]
        [--platforms 200] [--output BENCH_pipeline.json] [--quick]

``--quick`` (the CI mode) shrinks the ensemble and skips the process-pool
ensemble arm and the LP-assembly sweep; it always asserts serial↔warm-pool
bit-identity, and asserts the >= 1.8x warm-pool speedup only when the host
actually has >= 2 CPUs — on single-core hosts the ratio is recorded as an
honest (unflattering) data point instead.  The full run additionally
asserts the >= 5x dispatch-overhead reduction, which is parallelism-free
and holds on any host.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from conftest import record_host
from repro import _version, generate_random_platform
from repro.experiments import EvaluationPipeline, scaled_parameters
from repro.lp.formulation import build_steady_state_lp, build_steady_state_lp_reference

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (num_nodes, density) cases for the LP-assembly comparison.
LP_CASES = {"20-nodes": (20, 0.15), "30-nodes": (30, 0.12), "50-nodes": (50, 0.06)}

#: Minimum warm-pool ensemble speedup asserted on multi-core hosts.
MIN_POOL_SPEEDUP = 1.8
#: Minimum per-task dispatch-overhead reduction vs the per-map process pool.
MIN_DISPATCH_REDUCTION = 5.0


def ensemble_parameters(num_platforms: int):
    """A small-node ensemble with exactly ``num_platforms`` random platforms."""
    grid_points = 4  # 2 node counts x 2 densities
    per_point, remainder = divmod(num_platforms, grid_points)
    if per_point < 1 or remainder:
        raise SystemExit(f"--platforms must be a positive multiple of {grid_points}")
    return replace(
        scaled_parameters(1.0),
        node_counts=(10, 16),
        densities=(0.15, 0.25),
        configurations_per_point=per_point,
        seed=20041146,
    )


def evaluate_serial(parameters) -> tuple[list, float]:
    """The serial (batched in-process) baseline every arm is compared to."""
    pipeline = EvaluationPipeline(jobs=1)
    start = time.perf_counter()
    records = pipeline.evaluate("random", parameters)
    seconds = time.perf_counter() - start
    pipeline.close()
    return records, seconds


def bench_warm_pool(parameters, jobs: int, serial: tuple[list, float]) -> dict:
    """The warm-pool ensemble arm: pre-spawned workers, shared platforms."""
    serial_records, serial_seconds = serial
    pipeline = EvaluationPipeline(jobs=jobs, backend="warm-pool")
    start = time.perf_counter()
    pipeline.executor.ensure_started()
    spawn_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm_records = pipeline.evaluate("random", parameters)
    warm_seconds = time.perf_counter() - start
    pool_stats = pipeline.executor.stats()
    pipeline.close()
    identical = [r.deterministic_payload() for r in serial_records] == [
        r.deterministic_payload() for r in warm_records
    ]
    return {
        "backend": "warm-pool",
        "jobs": jobs,
        "num_platforms": parameters.total_random_platforms,
        "serial_seconds": round(serial_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(serial_seconds / warm_seconds, 3),
        "pool_spawn_seconds": round(spawn_seconds, 4),
        "serial_warm_identical": identical,
        "workers_completed": pool_stats["completed"],
        "worker_respawns": pool_stats["respawns"],
    }


def bench_dispatch(jobs: int, tasks: int = 16, rounds: int = 3) -> dict:
    """Per-task dispatch overhead: warm pool vs fresh-pool-per-map executor.

    Both executors round-trip the same trivial echo task, so the entire
    measured time is dispatch machinery — for :class:`ProcessExecutor`
    that includes the fresh ``ProcessPoolExecutor`` it spins up per
    ``map`` call, which is exactly the overhead warm workers amortize
    away.
    """
    from repro.pool import WarmPoolExecutor, _echo_probe
    from repro.runtime import ProcessExecutor

    payload = list(range(tasks))
    with WarmPoolExecutor(jobs) as warm:
        warm.ensure_started()  # spawn cost is reported separately
        warm_best = min(
            _timed_map(warm, _echo_probe, payload) for _ in range(rounds)
        )
    process_best = min(
        _timed_map(ProcessExecutor(jobs), _echo_probe, payload)
        for _ in range(rounds)
    )
    return {
        "tasks": tasks,
        "rounds": rounds,
        "warm_per_task_seconds": round(warm_best / tasks, 6),
        "process_per_task_seconds": round(process_best / tasks, 6),
        "reduction": round(process_best / warm_best, 1),
    }


def _timed_map(executor, function, tasks) -> float:
    start = time.perf_counter()
    results = list(executor.map(function, tasks))
    seconds = time.perf_counter() - start
    assert results == list(tasks), "echo round-trip corrupted the payload"
    return seconds


def bench_ensemble(parameters, jobs: int, serial: tuple[list, float]) -> dict:
    """Process-pool arm and cache-replay timings of the random ensemble."""
    serial_records, serial_seconds = serial

    pipeline = EvaluationPipeline(jobs=jobs, backend="process")
    start = time.perf_counter()
    parallel = pipeline.evaluate("random", parameters)
    parallel_seconds = time.perf_counter() - start
    pipeline.close()

    deterministic = [r.deterministic_payload() for r in serial_records] == [
        r.deterministic_payload() for r in parallel
    ]

    with tempfile.TemporaryDirectory(prefix="bench-pipeline-") as cache_dir:
        warm = EvaluationPipeline(cache_dir=cache_dir).evaluate("random", parameters)
        start = time.perf_counter()
        replayed = EvaluationPipeline(cache_dir=cache_dir).evaluate("random", parameters)
        replay_seconds = time.perf_counter() - start
    # The disk roundtrip must be exact, timings included.
    replay_ok = [r.to_dict() for r in replayed] == [r.to_dict() for r in warm]

    return {
        "num_platforms": parameters.total_random_platforms,
        "num_records": len(serial_records),
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "parallel_speedup": round(serial_seconds / parallel_seconds, 3),
        "cache_replay_seconds": round(replay_seconds, 4),
        "cache_replay_speedup": round(serial_seconds / replay_seconds, 1),
        "serial_parallel_identical": deterministic,
        "cache_replay_identical": replay_ok,
    }


def bench_lp_assembly(rounds: int = 5) -> dict:
    """Compiled-array vs per-edge-loop LP assembly, best-of-``rounds``."""
    results = {}
    for label, (num_nodes, density) in LP_CASES.items():
        platform = generate_random_platform(
            num_nodes=num_nodes, density=density, seed=3
        )
        platform.compiled()  # the compiled view is shared state: warm it for both
        timings = {}
        for name, builder in (
            ("compiled", build_steady_state_lp),
            ("reference", build_steady_state_lp_reference),
        ):
            best = min(
                _timed(builder, platform) for _ in range(rounds)
            )
            timings[f"{name}_seconds"] = round(best, 5)
        timings["speedup"] = round(
            timings["reference_seconds"] / timings["compiled_seconds"], 2
        )
        results[label] = timings
    return results


def _timed(builder, platform) -> float:
    start = time.perf_counter()
    builder(platform, 0)
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="pool worker count (default: cpu_count capped at 4, floor 2)",
    )
    parser.add_argument(
        "--platforms",
        type=int,
        default=None,
        help="random-ensemble size (default: 200, or 40 under --quick)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_pipeline.json",
        help="where to write the benchmark record",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: small ensemble, identity + conditional speedup asserts",
    )
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    jobs = args.jobs if args.jobs is not None else max(2, min(4, cpu_count))
    platforms = (
        args.platforms
        if args.platforms is not None
        else (40 if args.quick else 200)
    )

    parameters = ensemble_parameters(platforms)
    serial = evaluate_serial(parameters)
    pool = bench_warm_pool(parameters, jobs, serial)
    pool["dispatch"] = bench_dispatch(jobs)

    record = {
        "benchmark": "pipeline",
        "version": _version.__version__,
        "created_unix": round(time.time(), 1),
        "host": record_host(pool=pool),
        "pool": pool,
    }
    if not args.quick:
        record["ensemble"] = bench_ensemble(parameters, jobs, serial)
        pool["process_seconds"] = record["ensemble"]["parallel_seconds"]
        pool["process_speedup"] = record["ensemble"]["parallel_speedup"]
        record["lp_assembly"] = bench_lp_assembly()

    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))

    failures = []
    if not pool["serial_warm_identical"]:
        failures.append("serial and warm-pool record streams differ")
    if not args.quick and not record["ensemble"]["serial_parallel_identical"]:
        failures.append("serial and process-pool record streams differ")
    if pool["cpu_count"] >= 2 and pool["warm_speedup"] < MIN_POOL_SPEEDUP:
        failures.append(
            f"warm-pool speedup {pool['warm_speedup']}x is below the "
            f"{MIN_POOL_SPEEDUP}x floor on a {pool['cpu_count']}-CPU host"
        )
    elif pool["cpu_count"] < 2:
        print(
            f"note: single-CPU host, warm-pool speedup "
            f"{pool['warm_speedup']}x recorded without assertion",
            file=sys.stderr,
        )
    if not args.quick and pool["dispatch"]["reduction"] < MIN_DISPATCH_REDUCTION:
        failures.append(
            f"dispatch-overhead reduction {pool['dispatch']['reduction']}x is "
            f"below the {MIN_DISPATCH_REDUCTION}x floor"
        )
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
