"""Benchmark of the batched ensemble-evaluation pipeline.

Measures, and records into ``BENCH_pipeline.json`` (repo root by default):

* **ensemble throughput** — wall-clock of a 200-platform random ensemble
  evaluated serially vs. through the 4-worker :class:`ProcessExecutor`,
  plus the replay time from a warm on-disk cache; the serial and parallel
  record streams are verified bit-identical (timing fields excluded).
* **LP assembly** — the vectorised, compiled-array assembly of the
  steady-state LP (:func:`build_steady_state_lp`) vs. the per-edge loop
  reference (:func:`build_steady_state_lp_reference`).

Run it as a script::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--jobs 4]
        [--platforms 200] [--output BENCH_pipeline.json]

Note: the parallel arm only speeds up wall-clock on multi-core hosts; the
recorded ``host.cpu_count`` field qualifies every number, so single-core CI
containers still produce a trackable (if unflattering) data point.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from conftest import record_host
from repro import _version, generate_random_platform
from repro.experiments import EvaluationPipeline, scaled_parameters
from repro.lp.formulation import build_steady_state_lp, build_steady_state_lp_reference

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (num_nodes, density) cases for the LP-assembly comparison.
LP_CASES = {"20-nodes": (20, 0.15), "30-nodes": (30, 0.12), "50-nodes": (50, 0.06)}


def ensemble_parameters(num_platforms: int):
    """A small-node ensemble with exactly ``num_platforms`` random platforms."""
    grid_points = 4  # 2 node counts x 2 densities
    per_point, remainder = divmod(num_platforms, grid_points)
    if per_point < 1 or remainder:
        raise SystemExit(f"--platforms must be a positive multiple of {grid_points}")
    return replace(
        scaled_parameters(1.0),
        node_counts=(10, 16),
        densities=(0.15, 0.25),
        configurations_per_point=per_point,
        seed=20041146,
    )


def bench_ensemble(num_platforms: int, jobs: int) -> dict:
    """Serial vs parallel vs cache-replay timings of the random ensemble."""
    parameters = ensemble_parameters(num_platforms)

    start = time.perf_counter()
    serial = EvaluationPipeline(jobs=1).evaluate("random", parameters)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = EvaluationPipeline(jobs=jobs).evaluate("random", parameters)
    parallel_seconds = time.perf_counter() - start

    deterministic = [r.deterministic_payload() for r in serial] == [
        r.deterministic_payload() for r in parallel
    ]

    with tempfile.TemporaryDirectory(prefix="bench-pipeline-") as cache_dir:
        warm = EvaluationPipeline(cache_dir=cache_dir).evaluate("random", parameters)
        start = time.perf_counter()
        replayed = EvaluationPipeline(cache_dir=cache_dir).evaluate("random", parameters)
        replay_seconds = time.perf_counter() - start
    # The disk roundtrip must be exact, timings included.
    replay_ok = [r.to_dict() for r in replayed] == [r.to_dict() for r in warm]

    return {
        "num_platforms": num_platforms,
        "num_records": len(serial),
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "parallel_speedup": round(serial_seconds / parallel_seconds, 3),
        "cache_replay_seconds": round(replay_seconds, 4),
        "cache_replay_speedup": round(serial_seconds / replay_seconds, 1),
        "serial_parallel_identical": deterministic,
        "cache_replay_identical": replay_ok,
    }


def bench_lp_assembly(rounds: int = 5) -> dict:
    """Compiled-array vs per-edge-loop LP assembly, best-of-``rounds``."""
    results = {}
    for label, (num_nodes, density) in LP_CASES.items():
        platform = generate_random_platform(
            num_nodes=num_nodes, density=density, seed=3
        )
        platform.compiled()  # the compiled view is shared state: warm it for both
        timings = {}
        for name, builder in (
            ("compiled", build_steady_state_lp),
            ("reference", build_steady_state_lp_reference),
        ):
            best = min(
                _timed(builder, platform) for _ in range(rounds)
            )
            timings[f"{name}_seconds"] = round(best, 5)
        timings["speedup"] = round(
            timings["reference_seconds"] / timings["compiled_seconds"], 2
        )
        results[label] = timings
    return results


def _timed(builder, platform) -> float:
    start = time.perf_counter()
    builder(platform, 0)
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4, help="parallel worker count")
    parser.add_argument(
        "--platforms", type=int, default=200, help="random-ensemble size"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_pipeline.json",
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)


    record = {
        "benchmark": "pipeline",
        "version": _version.__version__,
        "created_unix": round(time.time(), 1),
        "host": record_host(),
        "ensemble": bench_ensemble(args.platforms, args.jobs),
        "lp_assembly": bench_lp_assembly(),
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))
    if not record["ensemble"]["serial_parallel_identical"]:
        print("ERROR: serial and parallel record streams differ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
