"""Benchmark of the collective-operations subsystem vs the broadcast baseline.

Measures, and records into ``BENCH_collectives.json`` (repo root by default):

* **LP assembly** — :func:`repro.lp.formulation.build_collective_lp` for a
  multicast spec on a strict target subset vs the broadcast program on the
  same platform.  The multicast program owns one commodity block per target
  instead of ``p - 1``, so it must be *smaller* (variables and constraints,
  always asserted) and assemble *no slower* than broadcast (asserted with a
  safety margin in full runs; the ``--quick`` CI smoke only records the
  ratio — sub-millisecond timings on shared runners are too jittery to gate
  a PR on);
* **simulation** — the pipelined in-order simulation of the multicast
  Steiner tree vs the broadcast tree on the same platform (fewer covered
  nodes, so again no slower, asserted in full runs);
* **equality** — before timing anything, the run asserts the subsystem's
  anchor laws in-bench: multicast with full targets produces bit-identical
  LP matrices to broadcast, the scatter optimum never beats the broadcast
  optimum, and reduce equals broadcast-on-reversed.

Run it as a script::

    PYTHONPATH=src python benchmarks/bench_collectives.py [--quick]
        [--rounds 3] [--output BENCH_collectives.json]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

import numpy as np

from conftest import record_host
from repro import _version
from repro.collectives import CollectiveSpec
from repro.core.registry import build_collective_tree
from repro.lp.formulation import build_collective_lp
from repro.lp.solver import solve_collective_lp
from repro.platform.generators.random_graph import generate_random_platform
from repro.simulation.collective import simulate_collective

REPO_ROOT = Path(__file__).resolve().parent.parent


def _best_of(rounds: int, fn, *args, **kwargs) -> float:
    best = math.inf
    for _ in range(rounds):
        start = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def _assert_equalities(platform, source: int) -> None:
    """The anchor laws of the subsystem, asserted before any timing."""
    broadcast = build_collective_lp(platform, CollectiveSpec.broadcast(source))
    full = CollectiveSpec.multicast(
        source, [n for n in platform.nodes if n != source]
    )
    multicast = build_collective_lp(platform, full)
    assert (broadcast.a_eq != multicast.a_eq).nnz == 0
    assert (broadcast.a_ub != multicast.a_ub).nnz == 0
    assert np.array_equal(broadcast.b_eq, multicast.b_eq)
    assert np.array_equal(broadcast.b_ub, multicast.b_ub)
    assert broadcast.bounds == multicast.bounds

    broadcast_tp = solve_collective_lp(platform, CollectiveSpec.broadcast(source)).throughput
    scatter_tp = solve_collective_lp(platform, CollectiveSpec.scatter(source)).throughput
    assert scatter_tp <= broadcast_tp + 1e-9, "scatter beat broadcast"
    reduce_tp = solve_collective_lp(platform, CollectiveSpec.reduce(source)).throughput
    dual_tp = solve_collective_lp(
        platform.reversed(), CollectiveSpec.broadcast(source)
    ).throughput
    assert math.isclose(reduce_tp, dual_tp, rel_tol=1e-9), "reduce != dual broadcast"


def bench(
    num_nodes: int,
    rounds: int,
    target_fraction: float = 0.25,
    assert_timings: bool = True,
) -> dict:
    platform = generate_random_platform(
        num_nodes=num_nodes, density=0.15, seed=20041146 % 1000
    )
    source = 0
    _assert_equalities(platform, source)

    others = [n for n in platform.nodes if n != source]
    subset = tuple(others[: max(2, int(len(others) * target_fraction))])
    broadcast_spec = CollectiveSpec.broadcast(source)
    multicast_spec = CollectiveSpec.multicast(source, subset)

    broadcast_lp = build_collective_lp(platform, broadcast_spec)
    multicast_lp = build_collective_lp(platform, multicast_spec)
    assert multicast_lp.index.num_variables < broadcast_lp.index.num_variables
    assert multicast_lp.num_constraints < broadcast_lp.num_constraints

    assembly_broadcast = _best_of(
        rounds, build_collective_lp, platform, broadcast_spec
    )
    assembly_multicast = _best_of(
        rounds, build_collective_lp, platform, multicast_spec
    )

    broadcast_tree = build_collective_tree(platform, broadcast_spec)
    multicast_tree = build_collective_tree(platform, multicast_spec)
    slices = 200
    sim_broadcast = _best_of(
        rounds,
        simulate_collective,
        broadcast_tree,
        broadcast_spec,
        slices,
        record_trace=False,
    )
    sim_multicast = _best_of(
        rounds,
        simulate_collective,
        multicast_tree,
        multicast_spec,
        slices,
        record_trace=False,
    )

    # "No slower than the broadcast baseline", with head-room for timer
    # noise.  Skipped under --quick (the CI smoke step): sub-millisecond
    # timings on a loaded shared runner are too jittery to gate a PR on —
    # CI asserts only the structural facts (smaller program, equality laws)
    # and records the ratios for inspection.
    if assert_timings:
        assert assembly_multicast <= assembly_broadcast * 1.25, (
            assembly_multicast,
            assembly_broadcast,
        )
        assert sim_multicast <= sim_broadcast * 1.25, (sim_multicast, sim_broadcast)

    return {
        "num_nodes": num_nodes,
        "num_edges": platform.num_links,
        "num_targets": len(subset),
        "lp_assembly": {
            "broadcast_seconds": assembly_broadcast,
            "multicast_seconds": assembly_multicast,
            "speedup": assembly_broadcast / assembly_multicast,
            "broadcast_variables": broadcast_lp.index.num_variables,
            "multicast_variables": multicast_lp.index.num_variables,
            "broadcast_constraints": broadcast_lp.num_constraints,
            "multicast_constraints": multicast_lp.num_constraints,
        },
        "simulation": {
            "slices": slices,
            "broadcast_seconds": sim_broadcast,
            "multicast_seconds": sim_multicast,
            "speedup": sim_broadcast / sim_multicast,
            "broadcast_covered_nodes": len(broadcast_tree.nodes),
            "multicast_covered_nodes": len(multicast_tree.nodes),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke sweep")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_collectives.json")
    )
    args = parser.parse_args(argv)

    sizes = [20] if args.quick else [20, 40, 60]
    results = [
        bench(size, args.rounds, assert_timings=not args.quick) for size in sizes
    ]

    payload = {
        "benchmark": "collectives",
        "version": _version.__version__,
        "host": record_host(),
        "results": results,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    for row in results:
        lp = row["lp_assembly"]
        sim = row["simulation"]
        print(
            f"n={row['num_nodes']:3d} |targets|={row['num_targets']:2d}  "
            f"LP assembly: {lp['multicast_seconds'] * 1000:6.2f} ms vs broadcast "
            f"{lp['broadcast_seconds'] * 1000:6.2f} ms ({lp['speedup']:.2f}x, "
            f"{lp['multicast_constraints']}/{lp['broadcast_constraints']} rows)  "
            f"sim: {sim['multicast_seconds'] * 1000:6.2f} ms vs "
            f"{sim['broadcast_seconds'] * 1000:6.2f} ms ({sim['speedup']:.2f}x)"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
