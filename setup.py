"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file only exists so
that legacy editable installs (``pip install -e .`` on environments without
the ``wheel`` package, e.g. fully offline boxes) keep working.
"""

from setuptools import setup

setup()
