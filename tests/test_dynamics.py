"""Tests for the dynamic-platform subsystem: traces, replay, adaptive policies."""

from __future__ import annotations

import pytest

from repro.dynamics import (
    POLICIES,
    DynamicOutcome,
    PlatformTrace,
    TraceReplayer,
    TraceSpec,
    generate_trace,
    replay_tree,
    run_dynamic,
)
from repro.exceptions import ConfigError, InvalidLinkError, PlatformError
from repro.platform.generators.random_graph import generate_random_platform
from repro.utils.ascii_plot import SPARK_LEVELS, sparkline
from repro.utils.rng import derive_seed, spawn_seeds


def make_platform(seed: int = 7, num_nodes: int = 12, density: float = 0.3):
    return generate_random_platform(num_nodes, density, seed=seed)


DRIFT_SPEC = TraceSpec(seed=3, horizon=6, drift=0.3, congestion_rate=0.3)
CHURN_SPEC = TraceSpec(seed=3, horizon=6, drift=0.3, congestion_rate=0.3, churn_rate=0.5)


# --------------------------------------------------------------------------- #
# Trace generation
# --------------------------------------------------------------------------- #
class TestTraceGeneration:
    def test_same_spec_same_platform_bit_identical(self):
        a = generate_trace(make_platform(), DRIFT_SPEC, protect=(0,))
        b = generate_trace(make_platform(), DRIFT_SPEC, protect=(0,))
        assert a == b
        assert a.to_json() == b.to_json()
        assert a.trace_key() == b.trace_key()

    def test_different_seed_different_trace(self):
        platform = make_platform()
        a = generate_trace(platform, DRIFT_SPEC)
        b = generate_trace(platform, TraceSpec(seed=4, horizon=6, drift=0.3))
        assert a != b

    def test_windows_match_horizon(self):
        trace = generate_trace(make_platform(), DRIFT_SPEC)
        assert trace.num_windows == DRIFT_SPEC.horizon
        assert trace.num_events > 0

    def test_json_round_trip(self):
        trace = generate_trace(make_platform(), CHURN_SPEC, protect=(0,))
        restored = PlatformTrace.from_json(trace.to_json())
        assert restored == trace
        assert restored.trace_key() == trace.trace_key()

    def test_unknown_format_version_rejected(self):
        trace = generate_trace(make_platform(), DRIFT_SPEC)
        payload = trace.to_dict()
        payload["format_version"] = 99
        with pytest.raises(ConfigError, match="version"):
            PlatformTrace.from_dict(payload)
        spec_payload = DRIFT_SPEC.to_dict()
        spec_payload["format_version"] = 99
        with pytest.raises(ConfigError, match="version"):
            TraceSpec.from_dict(spec_payload)

    def test_protected_nodes_never_leave(self):
        trace = generate_trace(make_platform(), CHURN_SPEC, protect=(0,))
        leavers = {
            event.node
            for window in trace.windows
            for event in window
            if event.kind == "node-leave"
        }
        assert 0 not in leavers

    def test_unknown_protected_node_rejected(self):
        with pytest.raises(ConfigError, match="not part of"):
            generate_trace(make_platform(), DRIFT_SPEC, protect=(999,))

    def test_drift_factors_bounded_by_span(self):
        spec = TraceSpec(seed=1, horizon=10, drift=1.5, drift_span=2.0)
        trace = generate_trace(make_platform(), spec)
        factors = [
            event.factor
            for window in trace.windows
            for event in window
            if event.kind == "link-cost"
        ]
        assert factors
        assert all(1 / 2.0 - 1e-12 <= f <= 2.0 + 1e-12 for f in factors)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon": 0},
            {"window": 0.0},
            {"drift": -0.1},
            {"drift_rho": 1.0},
            {"drift_span": 1.0},
            {"congestion_rate": -1.0},
            {"congestion_factor": 0.5},
            {"congestion_windows": 0},
            {"churn_rate": 1.5},
            {"churn_downtime": 0},
        ],
    )
    def test_spec_validation(self, kwargs):
        with pytest.raises(ConfigError):
            TraceSpec(**kwargs)


# --------------------------------------------------------------------------- #
# Batched platform mutation (the replay substrate)
# --------------------------------------------------------------------------- #
class TestBatchMutate:
    def test_update_link_costs_bumps_epoch_once(self):
        platform = make_platform()
        edges = platform.edges[:4]
        updates = {
            edge: platform.link(*edge).cost.scaled(2.0) for edge in edges
        }
        before = platform.mutation_epoch
        assert platform.update_link_costs(updates) == len(edges)
        assert platform.mutation_epoch == before + 1
        for edge in edges:
            assert platform.link(*edge).cost == updates[edge]

    def test_empty_batch_does_not_invalidate(self):
        platform = make_platform()
        before = platform.mutation_epoch
        assert platform.update_link_costs({}) == 0
        assert platform.batch_mutate() == 0
        assert platform.mutation_epoch == before

    def test_batch_remove_add_costs_single_epoch(self):
        platform = make_platform()
        victim = platform.edges[0]
        link = platform.link(*victim)
        survivor = platform.edges[1]
        new_cost = platform.link(*survivor).cost.scaled(3.0)
        before = platform.mutation_epoch
        count = platform.batch_mutate(
            costs={survivor: new_cost}, remove=[victim]
        )
        assert count == 2
        assert platform.mutation_epoch == before + 1
        assert not platform.has_link(*victim)
        assert platform.link(*survivor).cost == new_cost
        # Re-adding the removed link is one more batch, one more epoch.
        assert platform.batch_mutate(add=[link]) == 1
        assert platform.mutation_epoch == before + 2
        assert platform.has_link(*victim)

    def test_compiled_view_invalidated_exactly_once_per_batch(self):
        platform = make_platform()
        compiled = platform.compiled()
        edge = platform.edges[0]
        platform.update_link_costs({edge: platform.link(*edge).cost.scaled(2.0)})
        recompiled = platform.compiled()
        assert recompiled is not compiled
        # No further mutation: the compiled view is stable again.
        assert platform.compiled() is recompiled

    def test_failed_batch_leaves_platform_untouched(self):
        platform = make_platform()
        edge = platform.edges[0]
        good = {edge: platform.link(*edge).cost.scaled(2.0)}
        before_cost = platform.link(*edge).cost
        before = platform.mutation_epoch
        with pytest.raises(InvalidLinkError):
            platform.batch_mutate(costs={**good, (997, 998): before_cost})
        assert platform.mutation_epoch == before
        assert platform.link(*edge).cost == before_cost

    def test_remove_missing_link_rejected(self):
        platform = make_platform()
        with pytest.raises(InvalidLinkError):
            platform.batch_mutate(remove=[(997, 998)])

    def test_cost_for_link_removed_in_same_batch_rejected(self):
        platform = make_platform()
        edge = platform.edges[0]
        cost = platform.link(*edge).cost
        with pytest.raises(InvalidLinkError):
            platform.batch_mutate(costs={edge: cost}, remove=[edge])


# --------------------------------------------------------------------------- #
# Replay
# --------------------------------------------------------------------------- #
class TestReplay:
    def test_replayer_copies_platform(self):
        platform = make_platform()
        trace = generate_trace(platform, DRIFT_SPEC)
        replayer = TraceReplayer(platform, trace)
        epoch = platform.mutation_epoch
        while not replayer.done:
            replayer.apply_next_window()
        assert platform.mutation_epoch == epoch  # pristine platform untouched
        assert replayer.platform is not platform

    def test_one_epoch_bump_per_window(self):
        platform = make_platform()
        trace = generate_trace(platform, CHURN_SPEC, protect=(0,))
        replayer = TraceReplayer(platform, trace)
        for window in trace.windows:
            before = replayer.platform.mutation_epoch
            applied = replayer.apply_next_window()
            assert applied == len(window)
            delta = replayer.platform.mutation_epoch - before
            assert delta == (1 if window else 0)
        assert replayer.done
        with pytest.raises(PlatformError):
            replayer.apply_next_window()

    def test_replay_series_deterministic(self):
        platform = make_platform()
        trace = generate_trace(platform, CHURN_SPEC, protect=(0,))
        a = replay_tree(make_platform(), trace, source=0)
        b = replay_tree(platform, trace, source=0)
        assert a.to_dict() == b.to_dict()

    def test_replay_series_shape(self):
        platform = make_platform()
        trace = generate_trace(platform, DRIFT_SPEC)
        series = replay_tree(platform, trace, source=0)
        assert len(series.samples) == trace.num_windows + 1
        assert series.samples[0].time == 0.0
        assert series.times == tuple(
            i * DRIFT_SPEC.window for i in range(trace.num_windows + 1)
        )
        assert all(bound > 0 for bound in series.bounds)
        assert all(0.0 <= ratio <= 1.0 + 1e-9 for ratio in series.ratios)
        assert 0.0 < series.mean_ratio <= 1.0 + 1e-9

    def test_replay_json_round_trip(self):
        platform = make_platform()
        trace = generate_trace(platform, DRIFT_SPEC)
        series = replay_tree(platform, trace, source=0)
        from repro.dynamics import ReplaySeries

        assert ReplaySeries.from_dict(series.to_dict()) == series

    def test_churn_keeps_bounds_feasible(self):
        platform = make_platform()
        trace = generate_trace(platform, CHURN_SPEC, protect=(0,))
        series = replay_tree(platform, trace, source=0)
        # Targets shrink to the alive reachable set, so the per-epoch LP
        # stays feasible and positive throughout the churny trace.
        assert all(bound > 0 for bound in series.bounds)


# --------------------------------------------------------------------------- #
# Adaptive re-scheduling
# --------------------------------------------------------------------------- #
class TestAdaptive:
    def run(self, spec=DRIFT_SPEC, **kwargs):
        platform = make_platform()
        trace = generate_trace(platform, spec, protect=(0,))
        kwargs.setdefault("threshold", 0.15)
        kwargs.setdefault("replan_cost", 0.05)
        return run_dynamic(platform, trace, source=0, **kwargs)

    def test_decision_timeline_deterministic(self):
        a = self.run()
        b = self.run()
        assert a.to_payload() == b.to_payload()

    def test_policies_share_epoch_axis(self):
        outcome = self.run()
        horizon = DRIFT_SPEC.horizon
        assert len(outcome.times) == horizon + 1
        for policy in POLICIES:
            timeline = outcome.timeline(policy)
            assert len(timeline.samples) == horizon + 1
            assert len(timeline.decisions) == horizon
            assert timeline.samples[0].ratio == outcome.timeline("static").samples[0].ratio

    def test_static_never_oracle_always(self):
        outcome = self.run()
        assert outcome.timeline("static").replans == 0
        assert outcome.timeline("oracle").replans == DRIFT_SPEC.horizon

    def test_adaptive_beats_static_and_underplans_oracle(self):
        outcome = self.run()
        adaptive = outcome.timeline("adaptive")
        static = outcome.timeline("static")
        oracle = outcome.timeline("oracle")
        assert adaptive.mean_ratio >= static.mean_ratio - 1e-9
        assert adaptive.replans < oracle.replans

    def test_ratios_within_unit_interval(self):
        outcome = self.run(spec=CHURN_SPEC)
        for policy in POLICIES:
            assert all(
                -1e-9 <= ratio <= 1.0 + 1e-9
                for ratio in outcome.timeline(policy).ratios
            )

    def test_payload_round_trip(self):
        outcome = self.run()
        restored = DynamicOutcome.from_payload(outcome.to_payload())
        assert restored.to_payload() == outcome.to_payload()

    def test_subset_of_policies(self):
        outcome = self.run(policies=("static", "adaptive"))
        assert sorted(outcome.timelines) == ["adaptive", "static"]
        with pytest.raises(ConfigError, match="no timeline"):
            outcome.timeline("oracle")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown policies"):
            self.run(policies=("static", "nonsense"))

    def test_validation(self):
        with pytest.raises(ConfigError, match="threshold"):
            self.run(threshold=0.0)
        with pytest.raises(ConfigError, match="replan_cost"):
            self.run(replan_cost=1.0)
        with pytest.raises(ConfigError, match="at least one policy"):
            self.run(policies=())


# --------------------------------------------------------------------------- #
# Satellites: seed spawning and sparklines
# --------------------------------------------------------------------------- #
class TestSpawnSeeds:
    def test_matches_derive_seed_elementwise(self):
        seeds = spawn_seeds(123, 5, "trace", 7)
        assert seeds == [derive_seed(123, "trace", 7, i) for i in range(5)]

    def test_children_distinct(self):
        seeds = spawn_seeds(0, 64)
        assert len(set(seeds)) == 64

    def test_component_sensitivity(self):
        assert spawn_seeds(0, 3, "a") != spawn_seeds(0, 3, "b")
        assert spawn_seeds(0, 3) != spawn_seeds(1, 3)

    def test_count_validation(self):
        assert spawn_seeds(0, 0) == []
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_levels(self):
        marks = sparkline([0.0, 0.5, 1.0], lo=0.0, hi=1.0)
        assert marks == SPARK_LEVELS[0] + SPARK_LEVELS[4] + SPARK_LEVELS[-1]

    def test_flat_series_renders_mid(self):
        assert sparkline([2.0, 2.0, 2.0]) == SPARK_LEVELS[3] * 3

    def test_values_clamped_to_scale(self):
        marks = sparkline([-1.0, 2.0], lo=0.0, hi=1.0)
        assert marks == SPARK_LEVELS[0] + SPARK_LEVELS[-1]

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            sparkline([1.0], lo=1.0, hi=0.0)
