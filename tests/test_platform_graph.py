"""Unit tests for the Platform graph class."""

from __future__ import annotations

import pytest

from repro import Platform, PlatformBuilder
from repro.exceptions import (
    DisconnectedPlatformError,
    InvalidLinkError,
    PlatformError,
)
from repro.platform.link import Link
from repro.platform.node import ProcessorNode


@pytest.fixture
def triangle() -> Platform:
    platform = Platform(name="triangle")
    for node in (0, 1, 2):
        platform.add_node(node)
    platform.connect(0, 1, 1.0, bidirectional=True)
    platform.connect(1, 2, 2.0, bidirectional=True)
    platform.connect(0, 2, 4.0)
    return platform


class TestConstruction:
    def test_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_links == 5
        assert len(triangle) == 3

    def test_slice_size_must_be_positive(self):
        with pytest.raises(PlatformError):
            Platform(slice_size=0.0)

    def test_add_link_requires_existing_nodes(self):
        platform = Platform()
        platform.add_node(0)
        with pytest.raises(InvalidLinkError):
            platform.add_link(Link.with_transfer_time(0, 99, 1.0))
        with pytest.raises(InvalidLinkError):
            platform.add_link(Link.with_transfer_time(99, 0, 1.0))

    def test_add_node_with_record_and_extra_attributes_conflicts(self):
        platform = Platform()
        with pytest.raises(PlatformError):
            platform.add_node(ProcessorNode(name=0), level="wan")

    def test_node_lookup(self, triangle):
        assert triangle.node(0).name == 0
        with pytest.raises(PlatformError):
            triangle.node(42)
        assert 0 in triangle
        assert 42 not in triangle

    def test_remove_link(self, triangle):
        triangle.remove_link(0, 2)
        assert not triangle.has_link(0, 2)
        with pytest.raises(InvalidLinkError):
            triangle.remove_link(0, 2)


class TestWeightsAndNeighbours:
    def test_transfer_time_uses_slice_size_default(self):
        platform = Platform(slice_size=2.0)
        platform.add_node("a")
        platform.add_node("b")
        platform.add_link(Link.from_bandwidth("a", "b", bandwidth=1.0))
        assert platform.transfer_time("a", "b") == pytest.approx(2.0)
        assert platform.transfer_time("a", "b", size=5.0) == pytest.approx(5.0)

    def test_neighbours(self, triangle):
        assert set(triangle.out_neighbors(0)) == {1, 2}
        assert set(triangle.in_neighbors(0)) == {1}
        assert triangle.out_degree(0) == 2
        assert triangle.in_degree(2) == 2

    def test_edge_weights(self, triangle):
        weights = triangle.edge_weights()
        assert weights[(0, 1)] == pytest.approx(1.0)
        assert weights[(0, 2)] == pytest.approx(4.0)
        assert len(weights) == triangle.num_links

    def test_weighted_out_degree(self, triangle):
        assert triangle.weighted_out_degree(0) == pytest.approx(5.0)
        assert triangle.weighted_out_degree(2) == pytest.approx(2.0)

    def test_min_out_transfer_time(self, triangle):
        assert triangle.min_out_transfer_time(0) == pytest.approx(1.0)
        lonely = Platform()
        lonely.add_node(0)
        with pytest.raises(PlatformError):
            lonely.min_out_transfer_time(0)

    def test_density(self, triangle):
        assert triangle.density == pytest.approx(5 / 6)
        single = Platform()
        single.add_node(0)
        assert single.density == 0.0


class TestConnectivity:
    def test_reachability(self, triangle):
        assert triangle.reachable_from(0) == {0, 1, 2}
        assert triangle.is_broadcast_feasible(0)

    def test_unreachable_nodes_detected(self):
        platform = Platform()
        platform.add_node(0)
        platform.add_node(1)
        platform.add_node(2)
        platform.connect(0, 1, 1.0)
        assert not platform.is_broadcast_feasible(0)
        with pytest.raises(DisconnectedPlatformError):
            platform.require_broadcast_feasible(0)

    def test_shortest_path(self, diamond_platform):
        path = diamond_platform.shortest_path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        # 0 -> 1 -> 2 -> 3 costs 3.0, cheaper than 0 -> 1 -> 3 (4.0) or 0 -> 2 -> 3 (5.0).
        assert path == [0, 1, 2, 3]

    def test_shortest_path_missing(self):
        platform = Platform()
        platform.add_node(0)
        platform.add_node(1)
        with pytest.raises(DisconnectedPlatformError):
            platform.shortest_path(0, 1)


class TestViewsAndCopies:
    def test_to_networkx(self, triangle):
        graph = triangle.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 5
        assert graph.edges[0, 2]["weight"] == pytest.approx(4.0)

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_link(0, 2)
        assert triangle.has_link(0, 2)
        assert not clone.has_link(0, 2)
        assert clone.slice_size == triangle.slice_size

    def test_subgraph_with_links(self, triangle):
        sub = triangle.subgraph_with_links([(0, 1), (1, 2)])
        assert sub.num_nodes == 3
        assert sub.num_links == 2
        assert sub.has_link(0, 1) and sub.has_link(1, 2)

    def test_validate_rejects_empty(self):
        with pytest.raises(PlatformError):
            Platform().validate()

    def test_builder_strict_mode(self):
        with pytest.raises(PlatformError):
            PlatformBuilder().strict().link(0, 1, 1.0).build()

    def test_repr_mentions_size(self, triangle):
        assert "nodes=3" in repr(triangle)
