"""Tests for platform JSON (de)serialization."""

from __future__ import annotations

import json

import pytest

from repro import generate_random_platform, generate_tiers_platform, load_platform, save_platform
from repro.exceptions import PlatformError
from repro.platform.serialization import platform_from_dict, platform_to_dict


class TestRoundTrip:
    def test_random_platform_round_trip(self):
        platform = generate_random_platform(num_nodes=10, density=0.3, seed=2)
        rebuilt = platform_from_dict(platform_to_dict(platform))
        assert rebuilt.num_nodes == platform.num_nodes
        assert rebuilt.num_links == platform.num_links
        assert rebuilt.edge_weights() == pytest.approx(platform.edge_weights())
        for node in platform.nodes:
            assert rebuilt.node(node).send_overhead == pytest.approx(
                platform.node(node).send_overhead
            )

    def test_tiers_platform_round_trip_preserves_levels(self):
        platform = generate_tiers_platform(30, seed=3)
        rebuilt = platform_from_dict(platform_to_dict(platform))
        for node in platform.nodes:
            assert rebuilt.node(node).level == platform.node(node).level
            assert rebuilt.node(node).cluster == platform.node(node).cluster

    def test_file_round_trip(self, tmp_path):
        platform = generate_random_platform(num_nodes=8, density=0.4, seed=4)
        path = save_platform(platform, tmp_path / "platform.json")
        assert path.exists()
        # The file is valid JSON.
        json.loads(path.read_text())
        rebuilt = load_platform(path)
        assert rebuilt.name == platform.name
        assert rebuilt.edge_weights() == pytest.approx(platform.edge_weights())

    def test_dict_is_json_serialisable(self):
        platform = generate_random_platform(num_nodes=6, density=0.5, seed=5)
        text = json.dumps(platform_to_dict(platform))
        assert "links" in text

    def test_unknown_format_version_rejected(self):
        platform = generate_random_platform(num_nodes=6, density=0.5, seed=6)
        data = platform_to_dict(platform)
        data["format_version"] = 99
        with pytest.raises(PlatformError):
            platform_from_dict(data)

    def test_slice_size_preserved(self):
        platform = generate_random_platform(num_nodes=6, density=0.5, seed=7)
        platform.slice_size = 2.5
        rebuilt = platform_from_dict(platform_to_dict(platform))
        assert rebuilt.slice_size == 2.5
