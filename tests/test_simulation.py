"""Tests for the discrete-event simulator (engine, resources, broadcast, trace)."""

from __future__ import annotations

import pytest

from repro import BroadcastTree, MultiPortModel, build_broadcast_tree, tree_throughput
from repro.exceptions import SimulationError
from repro.simulation import (
    PipelinedBroadcastSimulator,
    SequentialResource,
    SimulationEngine,
    render_gantt,
    simulate_broadcast,
)


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        order: list[str] = []
        engine.schedule_at(2.0, lambda: order.append("late"))
        engine.schedule_at(1.0, lambda: order.append("early"))
        engine.schedule_after(0.5, lambda: order.append("first"))
        end = engine.run()
        assert order == ["first", "early", "late"]
        assert end == pytest.approx(2.0)
        assert engine.processed_events == 3

    def test_ties_fire_in_scheduling_order(self):
        engine = SimulationEngine()
        order: list[int] = []
        for index in range(5):
            engine.schedule_at(1.0, lambda i=index: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_events_can_schedule_more_events(self):
        engine = SimulationEngine()
        seen: list[float] = []

        def ping(count: int) -> None:
            seen.append(engine.now)
            if count > 0:
                engine.schedule_after(1.0, lambda: ping(count - 1))

        engine.schedule_at(0.0, lambda: ping(3))
        engine.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_until_horizon(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(10.0, lambda: None)
        engine.run(until=5.0)
        assert engine.pending_events == 1

    def test_scheduling_in_the_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)

    def test_max_events_guard(self):
        engine = SimulationEngine()

        def forever() -> None:
            engine.schedule_after(0.1, forever)

        engine.schedule_at(0.0, forever)
        with pytest.raises(SimulationError):
            engine.run(max_events=50)


class TestSequentialResource:
    def test_reservations_accumulate(self):
        resource = SequentialResource("port")
        end = resource.reserve(0.0, 2.0)
        assert end == 2.0
        end = resource.reserve(3.0, 1.0)
        assert end == 4.0
        assert resource.busy_time == pytest.approx(3.0)
        assert resource.utilization(4.0) == pytest.approx(0.75)
        resource.validate_no_overlap()

    def test_double_booking_rejected(self):
        resource = SequentialResource("port")
        resource.reserve(0.0, 5.0)
        with pytest.raises(SimulationError):
            resource.reserve(2.0, 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            SequentialResource("port").reserve(0.0, -1.0)

    def test_earliest_start(self):
        resource = SequentialResource("port")
        resource.reserve(0.0, 4.0)
        assert resource.earliest_start(1.0) == 4.0
        assert resource.earliest_start(9.0) == 9.0


class TestBroadcastSimulation:
    @pytest.mark.parametrize("heuristic", ["grow-tree", "prune-degree", "prune-simple"])
    def test_direct_tree_matches_analysis(self, small_random_platform, heuristic):
        tree = build_broadcast_tree(small_random_platform, 0, heuristic)
        result = simulate_broadcast(tree, num_slices=40)
        assert result.relative_error() < 0.02
        assert result.makespan > 0
        result.trace.validate_causality(0)

    def test_multi_port_direct_tree_matches_analysis(self, small_random_platform):
        model = MultiPortModel()
        tree = build_broadcast_tree(
            small_random_platform, 0, "multiport-grow-tree", model=model
        )
        result = simulate_broadcast(tree, num_slices=40, model=model)
        assert result.relative_error() < 0.02

    def test_routed_tree_never_beats_analysis(self, small_random_platform):
        tree = build_broadcast_tree(small_random_platform, 0, "binomial")
        result = simulate_broadcast(tree, num_slices=40)
        # The analytical value is an upper bound for the simple FIFO schedule.
        assert result.measured_throughput <= result.analytical_throughput * 1.01

    def test_star_simulation_exact(self, star_platform):
        tree = BroadcastTree.from_edges(
            star_platform, 0, [(0, leaf) for leaf in range(1, 5)]
        )
        result = simulate_broadcast(tree, num_slices=25)
        # Makespan: 25 slices * period 8 (the fill phase overlaps the last
        # child of the previous slice exactly).
        assert result.makespan == pytest.approx(25 * 8.0)
        assert result.measured_throughput == pytest.approx(1 / 8.0, rel=1e-6)
        assert result.effective_throughput <= 1 / 8.0 + 1e-9

    def test_arrival_times_monotone_per_node(self, small_random_platform):
        tree = build_broadcast_tree(small_random_platform, 0, "grow-tree")
        result = simulate_broadcast(tree, num_slices=10)
        for node, arrivals in result.arrival_times.items():
            assert arrivals == sorted(arrivals)
            assert len(arrivals) == 10

    def test_no_resource_overlap(self, small_random_platform):
        tree = build_broadcast_tree(small_random_platform, 0, "prune-degree")
        simulator = PipelinedBroadcastSimulator(tree, 15)
        simulator.run()
        for resource in simulator._send_port.values():
            resource.validate_no_overlap()
        for resource in simulator._recv_port.values():
            resource.validate_no_overlap()
        for resource in simulator._link.values():
            resource.validate_no_overlap()

    def test_greedy_policy_at_least_as_good_for_routed_trees(self, small_random_platform):
        tree = build_broadcast_tree(small_random_platform, 0, "binomial")
        in_order = simulate_broadcast(tree, num_slices=30, policy="in-order")
        greedy = simulate_broadcast(tree, num_slices=30, policy="greedy")
        assert greedy.makespan <= in_order.makespan * 1.05

    def test_invalid_parameters(self, star_platform):
        tree = BroadcastTree.from_edges(
            star_platform, 0, [(0, leaf) for leaf in range(1, 5)]
        )
        with pytest.raises(SimulationError):
            PipelinedBroadcastSimulator(tree, 0)
        with pytest.raises(SimulationError):
            PipelinedBroadcastSimulator(tree, 5, policy="magic")

    def test_trace_queries_and_gantt(self, star_platform):
        tree = BroadcastTree.from_edges(
            star_platform, 0, [(0, leaf) for leaf in range(1, 5)]
        )
        result = simulate_broadcast(tree, num_slices=4)
        trace = result.trace
        assert len(trace) == 4 * 4
        assert len(trace.by_sender(0)) == 16
        assert len(trace.by_receiver(1)) == 4
        assert len(trace.by_slice(0)) == 4
        assert trace.completion_time() == pytest.approx(result.makespan)
        arrivals = trace.arrival_times(1, 4)
        assert all(a < float("inf") for a in arrivals)
        chart = render_gantt(trace)
        assert "transfers" in chart
        assert render_gantt([]) == "(empty trace)"

    def test_trace_throughput_measurement(self, star_platform):
        tree = BroadcastTree.from_edges(
            star_platform, 0, [(0, leaf) for leaf in range(1, 5)]
        )
        result = simulate_broadcast(tree, num_slices=20)
        measured = result.trace.steady_state_throughput(20)
        assert measured == pytest.approx(1 / 8.0, rel=1e-6)
        with pytest.raises(SimulationError):
            result.trace.steady_state_throughput(20, warmup_fraction=1.0)
