"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, Phase, given, settings
from hypothesis import strategies as st

from repro import (
    BroadcastTree,
    MultiPortModel,
    OnePortModel,
    build_broadcast_tree,
    generate_random_platform,
    node_periods,
    optimal_throughput,
    tree_throughput,
)
from repro.analysis.metrics import summarize
from repro.core.binomial import BinomialTreeHeuristic
from repro.platform.costs import AffineCost
from repro.simulation import simulate_broadcast
from repro.utils.graph_utils import adjacency_from_edges, reachable_from, sort_edges_by_weight
from tests.conftest import assert_spanning_tree

# Hypothesis settings shared by the heavier strategies: platform generation
# plus heuristics is not free, keep the number of examples moderate and skip
# the shrinking phase (a shrink over LP solves / simulations can take many
# minutes on a single core; the un-shrunk counterexample, which includes the
# generator seed, is already fully reproducible).
_NO_SHRINK = (Phase.explicit, Phase.reuse, Phase.generate)
MODERATE = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    phases=_NO_SHRINK,
)
LIGHT = settings(max_examples=100, deadline=None)
HEAVY = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    phases=_NO_SHRINK,
)


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
platform_params = st.tuples(
    st.integers(min_value=4, max_value=14),          # nodes
    st.floats(min_value=0.1, max_value=0.6),         # density
    st.integers(min_value=0, max_value=10_000),      # seed
)

affine_params = st.tuples(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
)


def make_platform(params):
    nodes, density, seed = params
    return generate_random_platform(num_nodes=nodes, density=density, seed=seed)


# --------------------------------------------------------------------------- #
# Cost model properties
# --------------------------------------------------------------------------- #
class TestAffineCostProperties:
    @LIGHT
    @given(affine_params)
    def test_non_negative_and_monotone(self, params):
        startup, per_unit, size = params
        cost = AffineCost(startup=startup, per_unit=per_unit)
        assert cost(size) >= 0
        assert cost(size + 1.0) >= cost(size)

    @LIGHT
    @given(affine_params, st.floats(min_value=0.0, max_value=5.0))
    def test_scaling_is_linear(self, params, factor):
        startup, per_unit, size = params
        cost = AffineCost(startup=startup, per_unit=per_unit)
        assert cost.scaled(factor)(size) == pytest.approx(factor * cost(size), rel=1e-9, abs=1e-9)


# --------------------------------------------------------------------------- #
# Graph helper properties
# --------------------------------------------------------------------------- #
class TestGraphUtilProperties:
    @LIGHT
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] != e[1]),
            max_size=40,
        )
    )
    def test_reachability_contains_source_and_is_closed(self, edges):
        adjacency = adjacency_from_edges(range(10), edges)
        reachable = reachable_from(0, adjacency)
        assert 0 in reachable
        # Closure: every successor of a reachable node is reachable.
        for node in reachable:
            assert adjacency.get(node, set()).issubset(reachable)

    @LIGHT
    @given(
        st.dictionaries(
            st.tuples(st.integers(0, 5), st.integers(6, 11)),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            max_size=20,
        )
    )
    def test_sort_edges_is_permutation_and_ordered(self, weights):
        edges = list(weights)
        ordered = sort_edges_by_weight(edges, weights)
        assert sorted(map(str, ordered)) == sorted(map(str, edges))
        values = [weights[e] for e in ordered]
        assert values == sorted(values, reverse=True)


# --------------------------------------------------------------------------- #
# Generator properties
# --------------------------------------------------------------------------- #
class TestGeneratorProperties:
    @MODERATE
    @given(platform_params)
    def test_random_platform_always_feasible_and_symmetric(self, params):
        platform = make_platform(params)
        assert platform.num_nodes == params[0]
        assert platform.is_broadcast_feasible(0)
        for u, v in platform.edges:
            assert platform.has_link(v, u)
            assert platform.transfer_time(u, v) > 0


# --------------------------------------------------------------------------- #
# Heuristic invariants
# --------------------------------------------------------------------------- #
class TestHeuristicProperties:
    @MODERATE
    @given(platform_params, st.sampled_from(["prune-simple", "prune-degree", "grow-tree", "binomial"]))
    def test_heuristics_always_span(self, params, heuristic):
        platform = make_platform(params)
        tree = build_broadcast_tree(platform, 0, heuristic)
        assert_spanning_tree(tree, platform, 0)

    @MODERATE
    @given(platform_params)
    def test_one_port_throughput_is_inverse_max_out_degree(self, params):
        platform = make_platform(params)
        tree = build_broadcast_tree(platform, 0, "grow-tree")
        report = tree_throughput(tree, OnePortModel())
        max_out = max(tree.weighted_out_degree(node) for node in tree.nodes)
        assert report.period == pytest.approx(max_out)
        assert report.throughput == pytest.approx(1.0 / max_out)

    @MODERATE
    @given(platform_params)
    def test_multi_port_at_least_one_port(self, params):
        platform = make_platform(params)
        tree = build_broadcast_tree(platform, 0, "prune-degree")
        one = tree_throughput(tree, OnePortModel()).throughput
        multi = tree_throughput(tree, MultiPortModel()).throughput
        assert multi >= one - 1e-12

    @MODERATE
    @given(platform_params)
    def test_node_periods_bounded_by_tree_period(self, params):
        platform = make_platform(params)
        tree = build_broadcast_tree(platform, 0, "grow-tree")
        report = tree_throughput(tree)
        periods = node_periods(tree)
        assert all(period <= report.period + 1e-12 for period in periods.values())

    @MODERATE
    @given(st.integers(min_value=1, max_value=200))
    def test_binomial_transfers_cover_all_ranks(self, num_nodes):
        transfers = BinomialTreeHeuristic.logical_transfers(num_nodes)
        receivers = sorted(dst for _, dst in transfers)
        assert receivers == list(range(1, num_nodes))
        # Senders must already be informed: every sender has a smaller rank
        # than its receiver (binomial property).
        assert all(src < dst for src, dst in transfers)
        # Tree depth is logarithmic.
        if num_nodes > 1:
            assert len(transfers) == num_nodes - 1
            assert max(dst.bit_length() for _, dst in transfers) <= math.ceil(
                math.log2(num_nodes)
            ) + 1


# --------------------------------------------------------------------------- #
# LP and simulation cross-validation
# --------------------------------------------------------------------------- #
class TestCrossValidationProperties:
    @HEAVY
    @given(platform_params)
    def test_lp_upper_bounds_single_trees(self, params):
        platform = make_platform(params)
        optimum = optimal_throughput(platform, 0)
        for heuristic in ("grow-tree", "prune-degree"):
            tree = build_broadcast_tree(platform, 0, heuristic)
            assert tree_throughput(tree).throughput <= optimum * (1 + 1e-6)

    @HEAVY
    @given(platform_params)
    def test_simulation_matches_analysis_for_direct_trees(self, params):
        platform = make_platform(params)
        tree = build_broadcast_tree(platform, 0, "grow-tree")
        # 60 slices: the 30-slice measurement window can straddle the
        # warm-up on slow-converging platforms (e.g. nodes=10, density=0.5,
        # seed=17 measures 5.8% high); the event-free fast path makes the
        # longer run essentially free.
        result = simulate_broadcast(tree, num_slices=60, record_trace=False)
        assert result.relative_error() < 0.05


# --------------------------------------------------------------------------- #
# Metric properties
# --------------------------------------------------------------------------- #
class TestMetricProperties:
    @LIGHT
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=50))
    def test_summary_bounds(self, values):
        stats = summarize(values)
        # Allow a tiny absolute slack: summing floats can push the mean a few
        # ulps past the extrema when all values are (nearly) equal.
        assert stats.minimum - 1e-9 <= stats.mean <= stats.maximum + 1e-9
        assert stats.std >= 0
        assert stats.count == len(values)

    @LIGHT
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=50),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_summary_scaling(self, values, factor):
        base = summarize(values)
        scaled = summarize([v * factor for v in values])
        assert scaled.mean == pytest.approx(base.mean * factor, rel=1e-9, abs=1e-9)
        assert scaled.std == pytest.approx(base.std * factor, rel=1e-9, abs=1e-6)
