"""Tests for the multi-port heuristics (Algorithm 5 and Multiport-Prune-Degree)."""

from __future__ import annotations

import pytest

from repro import (
    GrowingMinimumOutDegreeTree,
    MultiPortGrowingTree,
    MultiPortModel,
    MultiPortRefinedPruning,
    OnePortModel,
    PlatformBuilder,
    tree_throughput,
)
from repro.exceptions import HeuristicError
from tests.conftest import assert_spanning_tree


@pytest.mark.parametrize("heuristic_cls", [MultiPortGrowingTree, MultiPortRefinedPruning])
class TestCommonBehaviour:
    def test_produces_spanning_tree(self, heuristic_cls, small_random_platform):
        tree = heuristic_cls().build(small_random_platform, 0, model=MultiPortModel())
        assert_spanning_tree(tree, small_random_platform, 0)

    def test_one_port_model_rejected_in_strict_mode(self, heuristic_cls, small_random_platform):
        with pytest.raises(HeuristicError):
            heuristic_cls().build(small_random_platform, 0, model=OnePortModel())

    def test_non_strict_mode_falls_back_to_multiport_metric(
        self, heuristic_cls, small_random_platform
    ):
        tree = heuristic_cls().build(
            small_random_platform, 0, model=OnePortModel(), strict_model=False
        )
        assert_spanning_tree(tree, small_random_platform, 0)

    def test_deterministic(self, heuristic_cls, small_random_platform):
        model = MultiPortModel()
        a = heuristic_cls().build(small_random_platform, 0, model=model)
        b = heuristic_cls().build(small_random_platform, 0, model=model)
        assert a.same_structure_as(b)


class TestMultiPortGrowingTree:
    def test_prefers_fanout_when_sends_are_cheap(self):
        """With a tiny send overhead the source should adopt several children
        directly instead of building a chain (the one-port optimum)."""
        platform = (
            PlatformBuilder(name="cheap-sends")
            .node(0, send_overhead=0.05)
            .node(1, send_overhead=0.05)
            .node(2, send_overhead=0.05)
            .node(3, send_overhead=0.05)
            .build()
        )
        for u in range(4):
            for v in range(4):
                if u != v:
                    platform.connect(u, v, 1.0)
        model = MultiPortModel()
        multi_tree = MultiPortGrowingTree().build(platform, 0, model=model)
        assert len(multi_tree.children(0)) == 3
        # The multi-port-aware tree beats the one-port-oriented chain under
        # the multi-port model.
        chain = GrowingMinimumOutDegreeTree().build(platform, 0)
        assert (
            tree_throughput(multi_tree, model).throughput
            >= tree_throughput(chain, model).throughput
        )

    def test_multiport_tree_beats_binomial_under_multiport_model(self, medium_random_platform):
        from repro import BinomialTreeHeuristic

        model = MultiPortModel()
        multi_tree = MultiPortGrowingTree().build(medium_random_platform, 0, model=model)
        binomial = BinomialTreeHeuristic().build(medium_random_platform, 0)
        assert (
            tree_throughput(multi_tree, model).throughput
            >= tree_throughput(binomial, model).throughput - 1e-9
        )


class TestMultiPortRefinedPruning:
    def test_throughput_positive_and_bounded(self, medium_random_platform):
        model = MultiPortModel()
        tree = MultiPortRefinedPruning().build(medium_random_platform, 0, model=model)
        report = tree_throughput(tree, model)
        assert report.throughput > 0
        # Under any model a node still has to push each slice once on its
        # fastest link, so the throughput cannot exceed that rate.
        fastest = medium_random_platform.min_out_transfer_time(0)
        send = model.node_send_time(medium_random_platform, 0)
        assert report.throughput <= 1.0 / min(fastest, send) + 1e-9

    def test_works_on_tiers(self, tiers_platform):
        model = MultiPortModel()
        tree = MultiPortRefinedPruning().build(tiers_platform, 0, model=model)
        assert_spanning_tree(tree, tiers_platform, 0)
