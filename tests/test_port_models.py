"""Tests for the one-port / multi-port communication models."""

from __future__ import annotations

import pytest

from repro import MultiPortModel, OnePortModel, PlatformBuilder, PortModelKind, get_port_model
from repro.exceptions import PlatformError
from repro.models.timing import transfer_timing


@pytest.fixture
def fan_platform():
    """Node 0 with three heterogeneous outgoing links and explicit overheads."""
    return (
        PlatformBuilder(name="fan")
        .node(0, send_overhead=0.5)
        .nodes(1, 2, 3)
        .link(0, 1, 2.0)
        .link(0, 2, 3.0)
        .link(0, 3, 5.0)
        .link(1, 2, 1.0)
        .link(2, 3, 1.0)
        .build()
    )


class TestGetPortModel:
    def test_none_is_one_port(self):
        assert isinstance(get_port_model(None), OnePortModel)

    def test_strings(self):
        assert isinstance(get_port_model("one-port"), OnePortModel)
        assert isinstance(get_port_model("multi-port"), MultiPortModel)

    def test_kind(self):
        assert isinstance(get_port_model(PortModelKind.MULTI_PORT), MultiPortModel)

    def test_instance_passthrough(self):
        model = MultiPortModel(send_fraction=0.5)
        assert get_port_model(model) is model

    def test_unknown_string_rejected(self):
        with pytest.raises(ValueError):
            get_port_model("three-port")


class TestOnePortModel:
    def test_occupations_all_equal_link_time(self, fan_platform):
        model = OnePortModel()
        assert model.sender_busy_time(fan_platform, 0, 3) == pytest.approx(5.0)
        assert model.receiver_busy_time(fan_platform, 0, 3) == pytest.approx(5.0)
        assert model.link_busy_time(fan_platform, 0, 3) == pytest.approx(5.0)

    def test_node_period_sums_outgoing(self, fan_platform):
        model = OnePortModel()
        outgoing = [(1, 2.0, 1), (2, 3.0, 1), (3, 5.0, 1)]
        assert model.node_period(fan_platform, 0, outgoing) == pytest.approx(10.0)

    def test_node_period_accounts_for_multiplicity(self, fan_platform):
        model = OnePortModel()
        outgoing = [(1, 2.0, 3)]
        assert model.node_period(fan_platform, 0, outgoing) == pytest.approx(6.0)

    def test_node_period_incoming_sum(self, fan_platform):
        model = OnePortModel()
        incoming = [(1, 1.0, 1), (0, 3.0, 1)]
        assert model.node_period(fan_platform, 2, [], incoming) == pytest.approx(4.0)

    def test_idle_node_has_zero_period(self, fan_platform):
        assert OnePortModel().node_period(fan_platform, 3, [], []) == 0.0


class TestMultiPortModel:
    def test_send_fraction_validation(self):
        with pytest.raises(PlatformError):
            MultiPortModel(send_fraction=0.0)
        with pytest.raises(PlatformError):
            MultiPortModel(send_fraction=1.5)

    def test_explicit_node_overhead_wins(self, fan_platform):
        model = MultiPortModel(send_fraction=0.8)
        assert model.node_send_time(fan_platform, 0) == pytest.approx(0.5)

    def test_derived_overhead_uses_fastest_link(self, fan_platform):
        model = MultiPortModel(send_fraction=0.8)
        # Node 1 has no explicit overhead; its fastest outgoing link is 1.0.
        assert model.node_send_time(fan_platform, 1) == pytest.approx(0.8)

    def test_leaf_has_zero_overhead(self, fan_platform):
        model = MultiPortModel()
        assert model.node_send_time(fan_platform, 3) == 0.0

    def test_node_period_formula(self, fan_platform):
        model = MultiPortModel()
        outgoing = [(1, 2.0, 1), (2, 3.0, 1), (3, 5.0, 1)]
        # max(3 * send_0, max T) = max(1.5, 5.0)
        assert model.node_period(fan_platform, 0, outgoing) == pytest.approx(5.0)

    def test_node_period_send_bound_dominates(self, fan_platform):
        model = MultiPortModel()
        outgoing = [(1, 2.0, 1)] * 20  # 20 sends of time 2
        period = model.node_period(fan_platform, 0, outgoing)
        assert period == pytest.approx(20 * 0.5)

    def test_sender_busy_below_link_time(self, fan_platform):
        model = MultiPortModel()
        assert model.sender_busy_time(fan_platform, 0, 3) == pytest.approx(0.5)
        assert model.receiver_busy_time(fan_platform, 0, 3) == 0.0

    def test_recv_overhead_honoured(self):
        platform = (
            PlatformBuilder()
            .node(0)
            .node(1, recv_overhead=0.25)
            .link(0, 1, 2.0)
            .link(1, 0, 2.0)
            .build()
        )
        model = MultiPortModel()
        assert model.node_recv_time(platform, 1) == pytest.approx(0.25)
        incoming = [(0, 2.0, 4)]
        assert model.node_period(platform, 1, [], incoming) == pytest.approx(8.0)


class TestTransferTiming:
    def test_one_port_timing(self, fan_platform):
        timing = transfer_timing(OnePortModel(), fan_platform, 0, 2)
        assert timing.sender_busy == timing.link_busy == timing.receiver_busy == 3.0
        assert timing.completion_offset == 3.0
        assert timing.receiver_busy_start_offset == 0.0

    def test_multi_port_timing(self, fan_platform):
        timing = transfer_timing(MultiPortModel(), fan_platform, 0, 2)
        assert timing.sender_busy == pytest.approx(0.5)
        assert timing.link_busy == pytest.approx(3.0)
        assert timing.receiver_busy == 0.0
        assert timing.receiver_busy_start_offset == pytest.approx(3.0)

    def test_invalid_timing_rejected(self):
        from repro.models.timing import TransferTiming

        with pytest.raises(ValueError):
            TransferTiming(sender_busy=2.0, link_busy=1.0, receiver_busy=0.0)
        with pytest.raises(ValueError):
            TransferTiming(sender_busy=0.5, link_busy=1.0, receiver_busy=2.0)
        with pytest.raises(ValueError):
            TransferTiming(sender_busy=-0.1, link_busy=1.0, receiver_busy=0.0)
