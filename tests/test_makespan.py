"""Tests for the pipelined / atomic makespan analysis."""

from __future__ import annotations

import pytest

from repro import (
    BroadcastTree,
    MultiPortModel,
    fill_time,
    makespan_lower_bound,
    pipelined_makespan,
    tree_throughput,
)
from repro.exceptions import TreeError
from repro.sta import atomic_completion_times, atomic_makespan


@pytest.fixture
def chain_tree(line_platform):
    return BroadcastTree.from_edges(line_platform, 0, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def star_tree(star_platform):
    return BroadcastTree.from_edges(star_platform, 0, [(0, leaf) for leaf in range(1, 5)])


class TestFillTime:
    def test_chain_fill_is_path_sum(self, chain_tree):
        assert fill_time(chain_tree) == pytest.approx(1.0 + 2.0 + 3.0)

    def test_star_fill_is_serialized(self, star_tree):
        # One-port: the hub sends to the 4 leaves one after the other.
        assert fill_time(star_tree) == pytest.approx(4 * 2.0)

    def test_star_fill_multi_port_overlaps(self, star_platform, star_tree):
        model = MultiPortModel()
        # The generator stamps send_0 = 0.8 * 2.0 = 1.6 on the hub; the last
        # leaf's transfer starts at 3 * 1.6 and completes 2.0 later.
        assert fill_time(star_tree, model) == pytest.approx(3 * 1.6 + 2.0)


class TestPipelinedMakespan:
    def test_single_slice_equals_fill(self, chain_tree):
        report = pipelined_makespan(chain_tree, 1)
        assert report.makespan == pytest.approx(fill_time(chain_tree))
        assert report.fill_time == report.makespan

    def test_many_slices_converge_to_period(self, chain_tree):
        slices = 200
        report = pipelined_makespan(chain_tree, slices)
        period = tree_throughput(chain_tree).period
        assert report.makespan == pytest.approx(
            fill_time(chain_tree) + (slices - 1) * period, rel=0.05
        )
        assert report.effective_throughput == pytest.approx(
            tree_throughput(chain_tree).throughput, rel=0.05
        )

    def test_star_makespan_exact(self, star_tree):
        # Hub: period 8; last leaf receives slice k at 8k + 8.
        report = pipelined_makespan(star_tree, 10)
        assert report.makespan == pytest.approx(8 * 9 + 8)
        assert report.steady_state_period == pytest.approx(8.0)

    def test_makespan_at_least_lower_bound(self, chain_tree, star_tree):
        for tree in (chain_tree, star_tree):
            for slices in (1, 5, 50):
                exact = pipelined_makespan(tree, slices).makespan
                bound = makespan_lower_bound(tree, slices)
                assert exact >= bound - 1e-9

    def test_invalid_slice_count(self, chain_tree):
        with pytest.raises(TreeError):
            pipelined_makespan(chain_tree, 0)
        with pytest.raises(TreeError):
            makespan_lower_bound(chain_tree, 0)

    def test_monotone_in_num_slices(self, star_tree):
        values = [pipelined_makespan(star_tree, k).makespan for k in (1, 2, 4, 8, 16)]
        assert values == sorted(values)


class TestAtomicMakespan:
    def test_chain_atomic(self, chain_tree):
        # The whole message travels the chain: sum of the link times.  The
        # fixture links use fixed per-message occupation times, so the value
        # does not depend on the message size argument.
        assert atomic_makespan(chain_tree, 1.0) == pytest.approx(6.0)
        assert atomic_makespan(chain_tree, 2.0) == pytest.approx(6.0)

    def test_chain_atomic_scales_with_bandwidth_links(self):
        # With bandwidth-based (linear) link costs the atomic makespan does
        # scale with the message size.
        from repro import Platform
        from repro.platform.link import Link

        platform = Platform(name="linear-line")
        for node in range(3):
            platform.add_node(node)
        platform.add_link(Link.from_bandwidth(0, 1, bandwidth=1.0))
        platform.add_link(Link.from_bandwidth(1, 2, bandwidth=0.5))
        tree = BroadcastTree.from_edges(platform, 0, [(0, 1), (1, 2)])
        assert atomic_makespan(tree, 1.0) == pytest.approx(3.0)
        assert atomic_makespan(tree, 2.0) == pytest.approx(6.0)

    def test_star_atomic_serialises_children(self, star_tree):
        completions = atomic_completion_times(star_tree, 1.0)
        assert completions[0] == 0.0
        assert sorted(completions[leaf] for leaf in range(1, 5)) == pytest.approx(
            [2.0, 4.0, 6.0, 8.0]
        )
        assert atomic_makespan(star_tree, 1.0) == pytest.approx(8.0)

    def test_atomic_vs_pipelined_large_message(self):
        # Splitting a large message into slices and pipelining beats sending
        # it atomically whenever the tree has depth > 1.  Use bandwidth-based
        # links so the atomic transfer time grows with the message size.
        from repro import Platform
        from repro.platform.link import Link

        platform = Platform(name="linear-chain")
        for node in range(4):
            platform.add_node(node)
        for u, v, bandwidth in ((0, 1, 1.0), (1, 2, 0.5), (2, 3, 1.0)):
            platform.add_link(Link.from_bandwidth(u, v, bandwidth=bandwidth))
        tree = BroadcastTree.from_edges(platform, 0, [(0, 1), (1, 2), (2, 3)])
        slices = 100
        atomic = atomic_makespan(tree, float(slices))  # one monolithic message
        pipelined = pipelined_makespan(tree, slices).makespan  # unit-size slices
        assert pipelined < atomic
