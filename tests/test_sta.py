"""Tests for the STA (atomic broadcast) baselines."""

from __future__ import annotations

import pytest

from repro import PlatformBuilder, build_broadcast_tree
from repro.sta import FastestEdgeFirst, FastestNodeFirst, atomic_makespan
from tests.conftest import assert_spanning_tree


@pytest.mark.parametrize("heuristic_cls", [FastestNodeFirst, FastestEdgeFirst])
class TestCommonBehaviour:
    def test_produces_spanning_tree(self, heuristic_cls, small_random_platform):
        tree = heuristic_cls().build(small_random_platform, 0)
        assert_spanning_tree(tree, small_random_platform, 0)

    def test_deterministic(self, heuristic_cls, small_random_platform):
        a = heuristic_cls().build(small_random_platform, 0)
        b = heuristic_cls().build(small_random_platform, 0)
        assert a.same_structure_as(b)

    def test_works_on_tiers(self, heuristic_cls, tiers_platform):
        tree = heuristic_cls().build(tiers_platform, 0)
        assert_spanning_tree(tree, tiers_platform, 0)

    def test_makespan_positive(self, heuristic_cls, medium_random_platform):
        tree = heuristic_cls().build(medium_random_platform, 0)
        assert atomic_makespan(tree, 10.0) > 0


class TestFastestEdgeFirst:
    def test_prefers_fast_edges(self):
        """FEF should relay through the fast intermediate node rather than
        use the source's slow direct links."""
        platform = (
            PlatformBuilder(name="relay")
            .nodes(0, 1, 2, 3)
            .link(0, 1, 1.0, bidirectional=True)
            .link(1, 2, 1.0, bidirectional=True)
            .link(1, 3, 1.0, bidirectional=True)
            .link(0, 2, 10.0, bidirectional=True)
            .link(0, 3, 10.0, bidirectional=True)
            .build()
        )
        tree = FastestEdgeFirst().build(platform, 0)
        assert tree.parent(1) == 0
        assert tree.parent(2) == 1
        assert tree.parent(3) == 1
        assert atomic_makespan(tree, 1.0) == pytest.approx(3.0)

    def test_beats_binomial_on_heterogeneous_platform(self, medium_random_platform):
        fef = FastestEdgeFirst().build(medium_random_platform, 0)
        binomial = build_broadcast_tree(medium_random_platform, 0, "binomial")
        assert atomic_makespan(fef, 1.0) <= atomic_makespan(binomial, 1.0)


class TestFastestNodeFirst:
    def test_star_with_fast_and_slow_leaves(self):
        """On a clique where node 1 is the fastest sender, FNF informs it first."""
        platform = (
            PlatformBuilder(name="speeds")
            .nodes(0, 1, 2, 3)
            .build()
        )
        # Node 1 is "fast" (its outgoing links are cheap), 2 and 3 are slow.
        times = {1: 0.5, 2: 3.0, 3: 3.0, 0: 1.0}
        for u in range(4):
            for v in range(4):
                if u != v:
                    platform.connect(u, v, times[u])
        tree = FastestNodeFirst().build(platform, 0)
        assert tree.parent(1) == 0
        # The fast node then helps broadcasting to at least one slow node.
        assert len(tree.children(1)) >= 1
