"""Tests for the platform-based one-port heuristics (Algorithms 1-4)."""

from __future__ import annotations

import pytest

from repro import (
    BinomialTreeHeuristic,
    GrowingMinimumOutDegreeTree,
    RefinedPlatformPruning,
    SimplePlatformPruning,
    tree_throughput,
)
from repro.exceptions import DisconnectedPlatformError, HeuristicError
from tests.conftest import assert_spanning_tree

ALL_TOPOLOGY_HEURISTICS = [
    SimplePlatformPruning,
    RefinedPlatformPruning,
    GrowingMinimumOutDegreeTree,
    BinomialTreeHeuristic,
]


@pytest.mark.parametrize("heuristic_cls", ALL_TOPOLOGY_HEURISTICS)
class TestCommonBehaviour:
    def test_produces_spanning_tree(self, heuristic_cls, small_random_platform):
        tree = heuristic_cls().build(small_random_platform, 0)
        assert_spanning_tree(tree, small_random_platform, 0)
        assert tree.name == heuristic_cls.name

    def test_works_from_any_source(self, heuristic_cls, small_random_platform):
        for source in (0, 3, 7):
            tree = heuristic_cls().build(small_random_platform, source)
            assert_spanning_tree(tree, small_random_platform, source)

    def test_deterministic(self, heuristic_cls, small_random_platform):
        a = heuristic_cls().build(small_random_platform, 0)
        b = heuristic_cls().build(small_random_platform, 0)
        assert a.same_structure_as(b)

    def test_rejects_unknown_source(self, heuristic_cls, small_random_platform):
        with pytest.raises(HeuristicError):
            heuristic_cls().build(small_random_platform, "nope")

    def test_rejects_disconnected_platform(self, heuristic_cls):
        from repro import Platform

        platform = Platform()
        for node in range(3):
            platform.add_node(node)
        platform.connect(0, 1, 1.0)
        with pytest.raises(DisconnectedPlatformError):
            heuristic_cls().build(platform, 0)

    def test_rejects_unexpected_kwargs(self, heuristic_cls, small_random_platform):
        with pytest.raises(HeuristicError):
            heuristic_cls().build(small_random_platform, 0, bogus=True)

    def test_works_on_tiers(self, heuristic_cls, tiers_platform):
        tree = heuristic_cls().build(tiers_platform, 0)
        assert_spanning_tree(tree, tiers_platform, 0)


class TestKnownOptimalStructures:
    def test_star_has_single_possible_tree(self, star_platform):
        for heuristic_cls in (SimplePlatformPruning, RefinedPlatformPruning, GrowingMinimumOutDegreeTree):
            tree = heuristic_cls().build(star_platform, 0)
            assert set(tree.children(0)) == {1, 2, 3, 4}
            assert tree_throughput(tree).period == pytest.approx(8.0)

    def test_complete_uniform_grow_tree_builds_chain(self, complete_uniform_platform):
        tree = GrowingMinimumOutDegreeTree().build(complete_uniform_platform, 0)
        # On a uniform clique the best single tree is a Hamiltonian chain:
        # every node forwards to exactly one child (throughput 1).
        assert max(len(tree.children(n)) for n in tree.nodes) == 1
        assert tree_throughput(tree).throughput == pytest.approx(1.0)

    def test_refined_pruning_on_complete_uniform_stays_balanced(self, complete_uniform_platform):
        # Refined pruning does not necessarily end on a Hamiltonian chain
        # (removal order can leave a node with two children), but it must
        # keep the maximum weighted out-degree at 2 or below on a uniform
        # clique, i.e. at least half of the optimal throughput.
        tree = RefinedPlatformPruning().build(complete_uniform_platform, 0)
        assert tree_throughput(tree).throughput >= 0.5 - 1e-9

    def test_diamond_best_chain(self, diamond_platform):
        tree = GrowingMinimumOutDegreeTree().build(diamond_platform, 0)
        report = tree_throughput(tree)
        # The chain 0 -> 1 -> 2 -> 3 achieves period 1.
        assert report.period == pytest.approx(1.0)

    def test_refined_beats_or_matches_simple_on_random(self, medium_random_platform):
        simple = tree_throughput(SimplePlatformPruning().build(medium_random_platform, 0))
        refined = tree_throughput(RefinedPlatformPruning().build(medium_random_platform, 0))
        assert refined.throughput >= simple.throughput - 1e-9


class TestGrowTreeVariants:
    def test_literal_cost_update_still_spans(self, small_random_platform):
        tree = GrowingMinimumOutDegreeTree(literal_cost_update=True).build(
            small_random_platform, 0
        )
        assert_spanning_tree(tree, small_random_platform, 0)

    def test_textual_metric_at_least_as_good_on_fixture(self, medium_random_platform):
        textual = tree_throughput(
            GrowingMinimumOutDegreeTree().build(medium_random_platform, 0)
        ).throughput
        literal = tree_throughput(
            GrowingMinimumOutDegreeTree(literal_cost_update=True).build(
                medium_random_platform, 0
            )
        ).throughput
        # Not a theorem, but holds on the fixed fixture and documents the
        # reason the textual metric is the default.
        assert textual >= literal - 1e-9


class TestBinomialTree:
    def test_logical_transfer_pattern_power_of_two(self):
        transfers = BinomialTreeHeuristic.logical_transfers(8)
        assert (0, 4) in transfers
        assert (0, 2) in transfers and (4, 6) in transfers
        assert len(transfers) == 7
        receivers = [dst for _, dst in transfers]
        assert sorted(receivers) == list(range(1, 8))

    def test_logical_transfer_pattern_non_power_of_two(self):
        transfers = BinomialTreeHeuristic.logical_transfers(6)
        receivers = sorted(dst for _, dst in transfers)
        assert receivers == [1, 2, 3, 4, 5]
        # Ranks beyond 2^m = 4 receive from rank - 4.
        assert (0, 4) in transfers and (1, 5) in transfers

    def test_single_node(self):
        assert BinomialTreeHeuristic.logical_transfers(1) == []

    def test_invalid_size(self):
        with pytest.raises(HeuristicError):
            BinomialTreeHeuristic.logical_transfers(0)

    def test_source_is_rank_zero(self, small_random_platform):
        tree = BinomialTreeHeuristic().build(small_random_platform, 5)
        assert tree.source == 5
        assert len(tree.children(5)) >= 1

    def test_explicit_index_order(self, small_random_platform):
        order = sorted(small_random_platform.nodes, reverse=True)
        tree = BinomialTreeHeuristic(index_order=order).build(small_random_platform, 0)
        assert_spanning_tree(tree, small_random_platform, 0)

    def test_bad_index_order_rejected(self, small_random_platform):
        with pytest.raises(HeuristicError):
            BinomialTreeHeuristic(index_order=[0, 1, 2]).build(small_random_platform, 0)

    def test_binomial_worse_than_topology_aware(self, medium_random_platform):
        binomial = tree_throughput(BinomialTreeHeuristic().build(medium_random_platform, 0))
        grown = tree_throughput(
            GrowingMinimumOutDegreeTree().build(medium_random_platform, 0)
        )
        assert binomial.throughput < grown.throughput
