"""The solve service: endpoints, admission, deadlines, degradation, drain.

Most tests drive :class:`ServiceApp.handle` directly (no sockets — the
HTTP layer is a thin JSON pump), a few go over real HTTP through
:class:`ThreadingHTTPServer`, and the shutdown test runs the actual
``python -m repro.cli serve`` process and SIGTERMs it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from dataclasses import replace
from http.server import ThreadingHTTPServer

import pytest

from repro.api import Job, PlatformRecipe, Result, RetryPolicy, Session
from repro.exceptions import AdmissionError, DeadlineExceededError
from repro.faults import FaultPlan, classify_task, inject_faults
from repro.service import (
    Deadline,
    ServiceApp,
    ServiceConfig,
    ServiceUnavailableError,
    SolveService,
    TenantLedger,
    parse_solve_request,
)
from repro.service.server import _make_handler


def _job(seed: int, *, num_nodes: int = 8) -> Job:
    return Job.broadcast(
        PlatformRecipe.of("random", num_nodes=num_nodes, density=0.3, seed=seed),
        source=0,
    )


def _batch_body(jobs, **extra) -> str:
    return json.dumps(
        {"jobs": [job.canonical_payload() for job in jobs], **extra}
    )


@pytest.fixture
def service():
    instance = SolveService(
        ServiceConfig(max_cache_bytes=32 * 1024 * 1024)
    ).start()
    yield instance
    instance.stop()


@pytest.fixture
def app(service):
    return ServiceApp(service)


# --------------------------------------------------------------------------- #
# Parsing and structured 4xx
# --------------------------------------------------------------------------- #
class TestParsing:
    def test_single_job_payload(self):
        jobs, deadline = parse_solve_request(_job(1).to_json())
        assert jobs == [_job(1)]
        assert deadline is None

    def test_batch_envelope_with_deadline(self):
        jobs, deadline = parse_solve_request(
            _batch_body([_job(1), _job(2)], deadline=4.5)
        )
        assert jobs == [_job(1), _job(2)]
        assert deadline == 4.5

    @pytest.mark.parametrize(
        "body",
        [
            "",
            "{not json",
            "[1, 2]",
            '{"jobs": []}',
            '{"jobs": "nope"}',
            '{"jobs": [42]}',
            '{"jobs": [{}], "deadline": "soon"}',
            '{"jobs": [{}], "deadline": -1}',
        ],
    )
    def test_malformed_bodies_are_config_errors(self, body, app):
        status, payload, _ = app.handle("POST", "/solve", body, {})
        assert status == 400
        assert payload["ok"] is False
        assert payload["error"]["kind"] == "invalid_request"

    def test_over_version_job_is_structured_400(self, app):
        payload = _job(1).canonical_payload()
        payload["format_version"] = 99
        status, body, _ = app.handle("POST", "/solve", json.dumps(payload), {})
        assert status == 400
        assert "format version" in body["error"]["message"]

    def test_unknown_route_is_structured_404(self, app):
        status, payload, _ = app.handle("GET", "/nope", "", {})
        assert status == 404
        assert payload["error"]["kind"] == "not_found"


# --------------------------------------------------------------------------- #
# Solving
# --------------------------------------------------------------------------- #
class TestSolve:
    def test_solve_returns_metrics(self, app):
        status, payload, _ = app.handle("POST", "/solve", _job(1).to_json(), {})
        assert status == 200
        assert payload["ok"] is True and payload["partial"] is False
        entry = payload["results"][0]
        assert entry["ok"] is True
        assert 0 < entry["metrics"]["relative_performance"] <= 1 + 1e-9

    def test_response_round_trips_through_result(self, app):
        status, payload, _ = app.handle("POST", "/solve", _job(2).to_json(), {})
        restored = Result.from_dict(payload["results"][0], session=Session())
        assert restored.ok
        assert restored.metrics()["lp_bound"] > 0

    def test_batch_dedupes_against_warm_caches(self, app, service):
        body = _batch_body([_job(3), _job(3), _job(4)])
        status, payload, _ = app.handle("POST", "/solve", body, {})
        assert status == 200 and len(payload["results"]) == 3
        assert payload["results"][0] == payload["results"][1]
        lp_misses = service.session.lp_cache.stats()["misses"]
        status, payload, _ = app.handle("POST", "/solve", body, {})
        assert status == 200
        # Warm repeat: every metric comes from the session memos — the LP
        # cache sees no new misses.
        assert service.session.lp_cache.stats()["misses"] == lp_misses

    def test_concurrent_requests_are_batched_and_answered(self, app, service):
        service.pause()
        responses: dict[int, tuple] = {}

        def post(i: int) -> None:
            responses[i] = app.handle("POST", "/solve", _job(20 + i).to_json(), {})

        threads = [threading.Thread(target=post, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        deadline = Deadline.after(5.0)
        while service.admission.queued_jobs < 3 and not deadline.expired:
            time.sleep(0.01)
        service.resume()
        for thread in threads:
            thread.join(timeout=30)
        assert sorted(responses) == [0, 1, 2]
        assert all(status == 200 for status, _, _ in responses.values())


# --------------------------------------------------------------------------- #
# Graceful degradation: per-job failures stay data
# --------------------------------------------------------------------------- #
def _mixed_fate_plan(jobs) -> FaultPlan:
    """A persistent plan failing at least one — but not all — of ``jobs``."""
    keys = [job.cache_key() for job in jobs]
    for seed in range(200):
        plan = FaultPlan(seed=seed, task_error_rate=0.4, persistent=True)
        fates = [classify_task(plan, key) for key in keys]
        if "error" in fates and "ok" in fates:
            return plan
    raise AssertionError("no seed produced a mixed-fate plan")


class TestPartialSuccess:
    def test_failed_jobs_come_back_as_failed_results_in_200(self):
        session = Session(retry_policy=RetryPolicy(retries=0, backoff=0.001))
        service = SolveService(ServiceConfig(), session=session).start()
        app = ServiceApp(service)
        jobs = [_job(seed) for seed in range(40, 44)]
        plan = _mixed_fate_plan(jobs)
        expected = {
            job.cache_key(): classify_task(plan, job.cache_key()) for job in jobs
        }
        try:
            with inject_faults(plan):
                status, payload, _ = app.handle(
                    "POST", "/solve", _batch_body(jobs), {}
                )
        finally:
            service.stop()
        assert status == 200
        assert payload["ok"] is True and payload["partial"] is True
        for job, entry in zip(jobs, payload["results"]):
            if expected[job.cache_key()] == "error":
                assert entry["ok"] is False
                assert entry["error"]["error_type"] == "InjectedWorkerError"
            else:
                assert entry["ok"] is True
                assert entry["metrics"]["lp_bound"] > 0
        assert payload["failed"] == sum(
            1 for fate in expected.values() if fate == "error"
        )

    def test_injected_request_fault_is_structured_500(self, app):
        with inject_faults(FaultPlan(seed=0, request_error_rate=1.0)):
            status, payload, _ = app.handle(
                "POST", "/solve", _job(1).to_json(), {}
            )
        assert status == 500
        assert payload["ok"] is False
        assert payload["error"]["kind"] == "injected_fault"


# --------------------------------------------------------------------------- #
# Admission control and deadlines
# --------------------------------------------------------------------------- #
class TestAdmission:
    def test_queue_full_is_429_with_retry_after(self):
        service = SolveService(
            ServiceConfig(max_queued_jobs=2, tenant_quota=None, retry_after=2.5)
        ).start()
        app = ServiceApp(service)
        try:
            service.pause()
            done = []
            threads = [
                threading.Thread(
                    target=lambda i=i: done.append(
                        app.handle("POST", "/solve", _job(50 + i).to_json(), {})
                    ),
                )
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            deadline = Deadline.after(5.0)
            while service.admission.queued_jobs < 2 and not deadline.expired:
                time.sleep(0.01)
            status, payload, headers = app.handle(
                "POST", "/solve", _job(99).to_json(), {}
            )
            assert status == 429
            assert payload["error"]["kind"] == "admission_rejected"
            assert float(headers["Retry-After"]) == pytest.approx(2.5)
            service.resume()
            for thread in threads:
                thread.join(timeout=30)
            assert all(status == 200 for status, _, _ in done)
        finally:
            service.stop()

    def test_tenant_quota_is_per_tenant(self):
        service = SolveService(
            ServiceConfig(max_queued_jobs=16, tenant_quota=1)
        ).start()
        app = ServiceApp(service)
        try:
            service.pause()
            background = threading.Thread(
                target=app.handle,
                args=("POST", "/solve", _job(60).to_json(), {"X-Tenant": "alice"}),
            )
            background.start()
            deadline = Deadline.after(5.0)
            while service.admission.queued_jobs < 1 and not deadline.expired:
                time.sleep(0.01)
            status, payload, _ = app.handle(
                "POST", "/solve", _job(61).to_json(), {"X-Tenant": "alice"}
            )
            assert status == 429
            assert "quota" in payload["error"]["message"]
            # A different tenant is admitted by the same capacity check.
            stats = service.stats()
            assert stats["tenants"] == {"alice": 1}
            service.resume()
            background.join(timeout=30)
        finally:
            service.stop()

    def test_ledger_releases_to_zero(self):
        ledger = TenantLedger(max_inflight=2)
        ledger.acquire("t", 2)
        with pytest.raises(AdmissionError):
            ledger.acquire("t", 1)
        ledger.release("t", 2)
        assert ledger.snapshot() == {}
        ledger.acquire("t", 1)

    def test_deadline_expiry_is_504(self):
        service = SolveService(ServiceConfig()).start()
        app = ServiceApp(service)
        try:
            service.pause()
            start = time.monotonic()
            status, payload, _ = app.handle(
                "POST", "/solve", _batch_body([_job(70)], deadline=0.2), {}
            )
            elapsed = time.monotonic() - start
            assert status == 504
            assert payload["error"]["kind"] == "deadline_exceeded"
            assert 0.1 < elapsed < 5.0
            service.resume()
            # The expired request is eventually released by the solve loop.
            deadline = Deadline.after(5.0)
            while service.admission.queued_jobs > 0 and not deadline.expired:
                time.sleep(0.01)
            assert service.admission.queued_jobs == 0
        finally:
            service.stop()

    def test_deadline_threads_into_task_timeouts(self, service):
        captured = {}
        original = service.session.solve_many

        def spy(jobs, **kwargs):
            captured["retry_policy"] = kwargs.get("retry_policy")
            return original(jobs, **kwargs)

        service.session.solve_many = spy
        app = ServiceApp(service)
        status, _, _ = app.handle(
            "POST", "/solve", _batch_body([_job(80)], deadline=7.0), {}
        )
        assert status == 200
        policy = captured["retry_policy"]
        assert policy is not None and policy.task_timeout is not None
        assert policy.task_timeout <= 7.0


# --------------------------------------------------------------------------- #
# Introspection and lifecycle
# --------------------------------------------------------------------------- #
class TestLifecycle:
    def test_health_endpoints(self, app, service):
        assert app.handle("GET", "/healthz", "", {})[0] == 200
        assert app.handle("GET", "/readyz", "", {})[0] == 200
        service.pause()  # paused is still ready (the loop is alive)
        assert app.handle("GET", "/readyz", "", {})[0] == 200
        service.resume()

    def test_statz_reports_bounded_caches(self):
        budget = 64 * 1024
        service = SolveService(
            ServiceConfig(max_cache_entries=64, max_cache_bytes=budget)
        ).start()
        app = ServiceApp(service)
        try:
            for seed in range(8):
                status, _, _ = app.handle(
                    "POST", "/solve", _job(seed, num_nodes=12).to_json(), {}
                )
                assert status == 200
            status, stats, _ = app.handle("GET", "/statz", "", {})
        finally:
            service.stop()
        assert status == 200
        total = stats["caches"]["total"]
        assert total["max_bytes"] == budget
        assert total["bytes"] <= budget
        assert total["evictions"] > 0
        assert stats["counters"]["requests_total"] == 8
        assert stats["queued_jobs"] == 0

    def test_draining_service_rejects_with_503(self, service, app):
        service.drain(timeout=0.1)
        assert app.handle("GET", "/readyz", "", {})[0] == 503
        status, payload, _ = app.handle("POST", "/solve", _job(1).to_json(), {})
        assert status == 503
        assert payload["error"]["kind"] == "unavailable"

    def test_stop_fails_queued_requests_with_503(self):
        service = SolveService(ServiceConfig()).start()
        service.pause()
        outcome: list = []
        thread = threading.Thread(
            target=lambda: outcome.append(
                ServiceApp(service).handle("POST", "/solve", _job(5).to_json(), {})
            )
        )
        thread.start()
        deadline = Deadline.after(5.0)
        while service.admission.queued_jobs < 1 and not deadline.expired:
            time.sleep(0.01)
        service.stop()
        thread.join(timeout=10)
        status, payload, _ = outcome[0]
        assert status == 503
        assert payload["error"]["kind"] == "unavailable"

    def test_submit_after_stop_raises_unavailable(self):
        service = SolveService(ServiceConfig()).start()
        service.stop()
        with pytest.raises(ServiceUnavailableError):
            service.submit([_job(1)])


# --------------------------------------------------------------------------- #
# Real HTTP
# --------------------------------------------------------------------------- #
class TestHTTP:
    @pytest.fixture
    def endpoint(self):
        service = SolveService(ServiceConfig()).start()
        httpd = ThreadingHTTPServer(
            ("127.0.0.1", 0), _make_handler(ServiceApp(service))
        )
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{httpd.server_address[1]}"
        httpd.shutdown()
        httpd.server_close()
        service.stop()

    def _post(self, url: str, body: str):
        request = urllib.request.Request(
            url, data=body.encode("utf-8"), method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_solve_over_http(self, endpoint):
        status, payload = self._post(endpoint + "/solve", _job(7).to_json())
        assert status == 200
        assert payload["results"][0]["metrics"]["throughput"] > 0

    def test_malformed_over_http_is_json_400(self, endpoint):
        status, payload = self._post(endpoint + "/solve", "{broken")
        assert status == 400
        assert payload["error"]["kind"] == "invalid_request"

    def test_statz_over_http(self, endpoint):
        with urllib.request.urlopen(endpoint + "/statz", timeout=30) as response:
            assert response.status == 200
            stats = json.loads(response.read())
        assert "caches" in stats and "counters" in stats


# --------------------------------------------------------------------------- #
# SIGTERM drain (real process)
# --------------------------------------------------------------------------- #
class TestSigtermDrain:
    def test_serve_process_drains_cleanly_on_sigterm(self, tmp_path):
        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src, env.get("PYTHONPATH", "")])
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = process.stdout.readline()
            assert "listening on http://" in line, line
            port = int(line.rsplit(":", 1)[1])
            url = f"http://127.0.0.1:{port}"
            body = _job(1).to_json().encode("utf-8")
            request = urllib.request.Request(
                url + "/solve", data=body, method="POST"
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                assert response.status == 200
                assert json.loads(response.read())["ok"] is True
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
            assert code == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
