"""Bounded-cache primitives: LRU eviction, byte budgets, usage counters.

Covers the standalone pieces (``approx_nbytes``, ``BoundedCache``,
``ByteBudget``) and their integration into :class:`LPSolutionCache`, the
:class:`ResultCache` memory tier, and the byte-budgeted
:class:`~repro.api.Session` — the "long-lived processes cannot OOM" layer
of the solve service.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Job, PlatformRecipe, Session
from repro.exceptions import ExperimentError
from repro.lp.solver import LPSolutionCache
from repro.platform.generators.random_graph import generate_random_platform
from repro.runtime import BoundedCache, ByteBudget, ResultCache, approx_nbytes


def _job(seed: int, *, num_nodes: int = 8) -> Job:
    return Job.broadcast(
        PlatformRecipe.of("random", num_nodes=num_nodes, density=0.3, seed=seed),
        source=0,
    )


# --------------------------------------------------------------------------- #
# approx_nbytes
# --------------------------------------------------------------------------- #
class TestApproxNbytes:
    def test_prefers_exact_nbytes_of_arrays(self):
        array = np.zeros(1000, dtype=np.float64)
        estimate = approx_nbytes(array)
        assert estimate >= array.nbytes
        assert estimate <= array.nbytes + 200

    def test_containers_charge_their_elements(self):
        small = approx_nbytes(["x"])
        large = approx_nbytes(["x" * 10_000])
        assert large - small > 9_000

    def test_cycles_terminate(self):
        loop: list = []
        loop.append(loop)
        assert approx_nbytes(loop) > 0

    def test_objects_walk_their_dict(self):
        class Holder:
            def __init__(self) -> None:
                self.payload = np.zeros(500, dtype=np.float64)

        assert approx_nbytes(Holder()) >= 4000


# --------------------------------------------------------------------------- #
# BoundedCache
# --------------------------------------------------------------------------- #
class TestBoundedCache:
    def test_acts_like_a_dict(self):
        cache = BoundedCache()
        cache["a"] = 1
        cache["b"] = 2
        assert cache["a"] == 1
        assert cache.get("missing") is None
        assert "b" in cache and "missing" not in cache
        assert len(cache) == 2
        assert sorted(cache.keys()) == ["a", "b"]
        assert cache.pop("a") == 1
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_getitem_raises_keyerror(self):
        with pytest.raises(KeyError):
            BoundedCache()["nope"]

    def test_entry_bound_evicts_least_recently_used(self):
        cache = BoundedCache(max_entries=2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache["a"] == 1  # refresh: "b" is now the LRU entry
        cache["c"] = 3
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_byte_bound_evicts_by_recorded_size(self):
        cache = BoundedCache(max_bytes=3000, sizeof=lambda value: 1000)
        for name in "abcde":
            cache[name] = name
        assert len(cache) == 3
        assert cache.current_bytes == 3000
        assert cache.evictions == 2
        assert list(cache.keys()) == ["c", "d", "e"]

    def test_oversized_single_entry_is_kept(self):
        cache = BoundedCache(max_bytes=10, sizeof=lambda value: 1000)
        cache["big"] = "x"
        assert "big" in cache  # a cache must hold what it was just given

    def test_overwrite_recharges_bytes(self):
        sizes = {"small": 10, "large": 500}
        cache = BoundedCache(sizeof=lambda value: sizes[value])
        cache["k"] = "small"
        cache["k"] = "large"
        assert cache.current_bytes == 500
        assert len(cache) == 1

    def test_counters_and_stats(self):
        cache = BoundedCache(max_entries=8, name="test")
        cache["a"] = 1
        cache.get("a")
        cache.get("gone")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["evictions"] == 0
        assert stats["max_entries"] == 8
        assert stats["bytes"] > 0

    def test_contains_does_not_count_or_touch(self):
        cache = BoundedCache(max_entries=2)
        cache["a"] = 1
        cache["b"] = 2
        assert "a" in cache  # membership must not refresh recency
        cache["c"] = 3
        assert "a" not in cache
        assert cache.hits == 0 and cache.misses == 0

    def test_setdefault(self):
        cache = BoundedCache()
        assert cache.setdefault("k", 5) == 5
        assert cache.setdefault("k", 9) == 5

    def test_rejects_non_positive_bounds(self):
        with pytest.raises(ExperimentError):
            BoundedCache(max_entries=0)
        with pytest.raises(ExperimentError):
            BoundedCache(max_bytes=-1)


# --------------------------------------------------------------------------- #
# ByteBudget
# --------------------------------------------------------------------------- #
class TestByteBudget:
    def test_global_lru_eviction_across_members(self):
        budget = ByteBudget(3000)
        first = BoundedCache(budget=budget, sizeof=lambda value: 1000, name="one")
        second = BoundedCache(budget=budget, sizeof=lambda value: 1000, name="two")
        first["a"] = 1
        second["b"] = 2
        first["c"] = 3
        # 3000/3000 charged; next insert must evict the *globally* oldest
        # entry — "a" in the first cache, not anything in the second.
        second["d"] = 4
        assert "a" not in first
        assert "b" in second and "c" in first and "d" in second
        assert budget.total_bytes == 3000
        assert budget.total_evictions == 1

    def test_touch_refreshes_against_global_eviction(self):
        budget = ByteBudget(2000)
        first = BoundedCache(budget=budget, sizeof=lambda value: 1000)
        second = BoundedCache(budget=budget, sizeof=lambda value: 1000)
        first["a"] = 1
        second["b"] = 2
        assert first.get("a") == 1  # "b" becomes the global LRU
        first["c"] = 3
        assert "b" not in second
        assert "a" in first

    def test_unbounded_budget_only_aggregates(self):
        budget = ByteBudget()
        cache = BoundedCache(budget=budget, sizeof=lambda value: 7)
        cache["a"] = 1
        assert budget.total_bytes == 7
        assert budget.total_evictions == 0

    def test_rejects_non_positive_ceiling(self):
        with pytest.raises(ExperimentError):
            ByteBudget(0)


# --------------------------------------------------------------------------- #
# LPSolutionCache bounds
# --------------------------------------------------------------------------- #
class TestBoundedLPSolutionCache:
    def test_eviction_releases_platforms_and_recomputes(self):
        cache = LPSolutionCache(max_entries=2)
        platforms = [
            generate_random_platform(num_nodes=6, density=0.4, seed=seed)
            for seed in range(3)
        ]
        solutions = [cache.solve(platform, 0) for platform in platforms]
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["evictions"] == 1
        # The evicted platform re-solves to the same throughput.
        again = cache.solve(platforms[0], 0)
        assert again.throughput == pytest.approx(solutions[0].throughput)

    def test_hit_does_not_resolve(self):
        cache = LPSolutionCache()
        platform = generate_random_platform(num_nodes=6, density=0.4, seed=1)
        first = cache.solve(platform, 0)
        second = cache.solve(platform, 0)
        assert first is second
        assert cache.stats()["hits"] == 1


# --------------------------------------------------------------------------- #
# ResultCache memory-tier bounds
# --------------------------------------------------------------------------- #
class TestBoundedResultCacheMemory:
    def test_memory_tier_evicts(self):
        cache = ResultCache(max_memory_entries=2)
        for i in range(4):
            cache.put(f"key-{i}", [{"i": i}])
        assert cache.get("key-0") is None
        assert cache.get("key-3") == [{"i": 3}]
        assert cache.memory_stats()["evictions"] == 2

    def test_plain_dict_memory_still_works(self):
        shared: dict = {}
        cache = ResultCache(memory=shared)
        cache.put("k", [{"v": 1}])
        assert cache.get("k") == [{"v": 1}]
        assert cache.memory_stats() == {"entries": 1}

    def test_bounds_conflict_with_explicit_memory(self):
        with pytest.raises(ExperimentError):
            ResultCache(memory={}, max_memory_entries=4)

    def test_disk_tier_backstops_memory_eviction(self, tmp_path):
        cache = ResultCache(tmp_path, max_memory_entries=1)
        cache.put("first", [{"v": 1}])
        cache.put("second", [{"v": 2}])  # evicts "first" from memory
        assert cache.memory_stats()["entries"] == 1
        assert cache.get("first") == [{"v": 1}]  # re-read from disk


# --------------------------------------------------------------------------- #
# Byte-budgeted sessions
# --------------------------------------------------------------------------- #
class TestBoundedSession:
    def test_session_stays_under_byte_budget_with_evictions(self):
        budget_bytes = 96 * 1024
        session = Session(max_cache_bytes=budget_bytes)
        for seed in range(6):
            session.solve(_job(seed, num_nodes=10)).materialize()
        stats = session.cache_stats()
        assert stats["total"]["max_bytes"] == budget_bytes
        assert stats["total"]["bytes"] <= budget_bytes
        assert stats["total"]["evictions"] > 0

    def test_eviction_is_transparent_to_results(self):
        tight = Session(max_cache_bytes=64 * 1024)
        loose = Session()
        jobs = [_job(seed) for seed in range(4)]
        tight_metrics = [
            tight.solve(job).materialize().deterministic_metrics() for job in jobs
        ]
        # Re-solve the first job after later jobs likely evicted its memos.
        replay = tight.solve(jobs[0]).materialize().deterministic_metrics()
        reference = [
            loose.solve(job).materialize().deterministic_metrics() for job in jobs
        ]
        assert tight_metrics == reference
        assert replay == reference[0]

    def test_cache_stats_exposes_counters(self):
        session = Session(max_cache_entries=64)
        result = session.solve(_job(1))
        result.materialize()
        _ = result.lp_solution
        _ = result.lp_solution  # repeated full-solution access: an LP hit
        stats = session.cache_stats()
        for block in ("platforms", "trees", "lp_solutions", "results"):
            assert stats[block]["entries"] >= 0
            assert "hits" in stats[block] and "evictions" in stats[block]
        assert stats["lp_solutions"]["hits"] > 0
        assert stats["total"]["evictions"] == 0

    def test_entry_bound_per_memo_cache(self):
        session = Session(max_cache_entries=2)
        for seed in range(4):
            session.solve(_job(seed)).materialize()
        stats = session.cache_stats()
        assert stats["platforms"]["entries"] <= 2
        assert stats["trees"]["entries"] <= 2
        assert stats["lp_solutions"]["entries"] <= 2
