"""Property tests: ``CompiledPlatform`` is observationally equivalent to ``Platform``.

The compiled view is only allowed to change *how fast* questions are
answered, never the answers: degrees, neighbours, link costs, aggregate
cost metrics and reachable sets must match the graph-backed originals on
arbitrary platforms, and the cached view must be invalidated by mutation.
The LP assembled from the compiled arrays must equal the loop-built
reference matrix for matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CompiledPlatform,
    MultiPortModel,
    OnePortModel,
    Platform,
    compile_platform,
    generate_random_platform,
    generate_tiers_platform,
)
from repro.exceptions import InvalidLinkError, PlatformError
from repro.lp.formulation import build_steady_state_lp, build_steady_state_lp_reference


def random_platforms():
    """A spread of generated platforms (sizes, densities, generators)."""
    platforms = [
        generate_random_platform(num_nodes=n, density=d, seed=seed)
        for n, d, seed in [(6, 0.4, 0), (10, 0.25, 1), (17, 0.15, 2), (25, 0.1, 3)]
    ]
    platforms.append(generate_tiers_platform(30, seed=4))
    return platforms


@pytest.fixture(params=range(5), ids=lambda i: f"platform{i}")
def platform(request) -> Platform:
    return random_platforms()[request.param]


class TestObservationalEquivalence:
    def test_node_and_edge_identity(self, platform):
        view = platform.compiled()
        assert list(view.node_names) == platform.nodes
        assert list(view.edge_list) == platform.edges
        assert view.num_nodes == platform.num_nodes
        assert view.num_edges == platform.num_links
        for i, name in enumerate(view.node_names):
            assert view.index_of(name) == i
            assert view.name_of(i) == name

    def test_degrees_and_neighbors(self, platform):
        view = platform.compiled()
        for i, name in enumerate(view.node_names):
            assert view.out_degrees[i] == platform.out_degree(name)
            assert view.in_degrees[i] == platform.in_degree(name)
            out = [view.name_of(j) for j in view.out_neighbors_of(i)]
            assert sorted(out, key=str) == sorted(platform.out_neighbors(name), key=str)
            incoming = [view.name_of(j) for j in view.in_neighbors_of(i)]
            assert sorted(incoming, key=str) == sorted(platform.in_neighbors(name), key=str)

    def test_link_costs(self, platform):
        view = platform.compiled()
        for u, v in platform.edges:
            direct = platform.link(u, v).transfer_time(platform.slice_size)
            assert view.transfer_time_between(u, v) == direct
            assert view.edge_weight_map[(u, v)] == direct
        with pytest.raises(InvalidLinkError):
            view.transfer_time_between("no-such", "node")

    def test_aggregate_costs(self, platform):
        view = platform.compiled()
        for i, name in enumerate(view.node_names):
            expected = sum(
                link.transfer_time(platform.slice_size) for link in platform.out_links(name)
            )
            assert view.weighted_out_degrees[i] == pytest.approx(expected)
            assert platform.weighted_out_degree(name) == pytest.approx(expected)
            if platform.out_degree(name) > 0:
                expected_min = min(
                    link.transfer_time(platform.slice_size)
                    for link in platform.out_links(name)
                )
                assert view.min_out_transfer_times[i] == expected_min
                assert platform.min_out_transfer_time(name) == expected_min
            else:
                assert view.min_out_transfer_times[i] == np.inf

    def test_reachable_sets(self, platform):
        view = platform.compiled()
        for name in platform.nodes:
            assert view.reachable_from(name) == platform.reachable_from(name)
        assert view.is_broadcast_feasible(platform.nodes[0]) == platform.is_broadcast_feasible(
            platform.nodes[0]
        )

    def test_unknown_node_rejected(self, platform):
        with pytest.raises(PlatformError):
            platform.compiled().index_of("definitely-not-a-node")

    def test_multi_port_send_times(self, platform):
        view = platform.compiled()
        model = MultiPortModel(send_fraction=0.8)
        times = view.node_send_times(0.8)
        by_name = model.node_send_times(platform)
        for i, name in enumerate(view.node_names):
            assert times[i] == model.node_send_time(platform, name)
            if platform.out_degree(name) > 0:
                assert by_name[name] == times[i]

    def test_node_send_times_respects_subclass_override(self):
        platform = generate_random_platform(num_nodes=6, density=0.4, seed=9)

        class Constant(MultiPortModel):
            def node_send_time(self, platform, node, size=None):
                return 42.0

        times = Constant().node_send_times(platform)
        assert set(times.values()) == {42.0}

    def test_edge_weight_map_matches_per_edge_calls(self, platform):
        for model in (OnePortModel(), MultiPortModel()):
            mapped = model.edge_weight_map(platform)
            assert mapped == {
                (u, v): model.edge_weight(platform, u, v) for u, v in platform.edges
            }


class TestCompiledCache:
    def test_cached_until_mutation(self):
        platform = generate_random_platform(num_nodes=8, density=0.3, seed=5)
        first = platform.compiled()
        assert platform.compiled() is first
        platform.add_node("extra")
        second = platform.compiled()
        assert second is not first
        assert second.num_nodes == first.num_nodes + 1

    def test_link_mutations_invalidate(self):
        platform = Platform()
        platform.add_node(0)
        platform.add_node(1)
        platform.connect(0, 1, 2.0)
        assert platform.compiled().num_edges == 1
        platform.remove_link(0, 1)
        assert platform.compiled().num_edges == 0

    def test_per_size_views(self):
        platform = generate_random_platform(num_nodes=8, density=0.3, seed=6)
        default = platform.compiled()
        doubled = platform.compiled(2 * platform.slice_size)
        assert doubled is not default
        assert platform.compiled() is default  # both sizes stay cached
        expected = [
            link.transfer_time(2 * platform.slice_size) for link in platform.iter_links()
        ]
        np.testing.assert_array_equal(doubled.transfer_times, expected)

    def test_identity_equality_and_hashability(self):
        platform = generate_random_platform(num_nodes=6, density=0.4, seed=8)
        first = platform.compiled()
        other = compile_platform(platform)
        assert first == first and first != other  # identity, never ValueError
        assert len({first, other}) == 2  # usable as dict/set keys

    def test_compile_platform_alias(self):
        platform = generate_random_platform(num_nodes=6, density=0.4, seed=7)
        view = compile_platform(platform)
        assert isinstance(view, CompiledPlatform)
        assert list(view.node_names) == platform.nodes


class TestCompiledLPAssembly:
    @pytest.mark.parametrize("seed,nodes,density", [(3, 12, 0.3), (9, 20, 0.15)])
    def test_matches_reference_matrices(self, seed, nodes, density):
        platform = generate_random_platform(num_nodes=nodes, density=density, seed=seed)
        fast = build_steady_state_lp(platform, 0)
        slow = build_steady_state_lp_reference(platform, 0)
        assert fast.index.edges == slow.index.edges
        assert fast.index.destinations == slow.index.destinations
        assert (fast.a_eq != slow.a_eq).nnz == 0
        assert (fast.a_ub != slow.a_ub).nnz == 0
        np.testing.assert_array_equal(fast.b_eq, slow.b_eq)
        np.testing.assert_array_equal(fast.b_ub, slow.b_ub)
        np.testing.assert_array_equal(fast.objective, slow.objective)
        assert fast.bounds == slow.bounds

    def test_matches_reference_on_tiers(self):
        platform = generate_tiers_platform(30, seed=11)
        fast = build_steady_state_lp(platform, 0)
        slow = build_steady_state_lp_reference(platform, 0)
        assert (fast.a_eq != slow.a_eq).nnz == 0
        assert (fast.a_ub != slow.a_ub).nnz == 0
