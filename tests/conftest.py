"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro import (
    BroadcastTree,
    Platform,
    PlatformBuilder,
    generate_cluster_platform,
    generate_random_platform,
    generate_star_platform,
    generate_tiers_platform,
)


# --------------------------------------------------------------------------- #
# Per-test timeout (SIGALRM watchdog; no pytest-timeout dependency)
# --------------------------------------------------------------------------- #
#: Seconds one test may run before it is failed; 0 disables the watchdog.
#: Generous on purpose: the guard exists so a hung worker pool or an
#: unrecovered injected fault fails one test instead of wedging the suite.
_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "180"))


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    if (
        _TEST_TIMEOUT <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {_TEST_TIMEOUT:g}s per-test timeout "
            f"(REPRO_TEST_TIMEOUT to adjust)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# --------------------------------------------------------------------------- #
# Hand-built platforms with known structure
# --------------------------------------------------------------------------- #
@pytest.fixture
def line_platform() -> Platform:
    """A bidirectional chain 0 - 1 - 2 - 3 with increasing link times."""
    return (
        PlatformBuilder(name="line")
        .nodes(0, 1, 2, 3)
        .link(0, 1, 1.0, bidirectional=True)
        .link(1, 2, 2.0, bidirectional=True)
        .link(2, 3, 3.0, bidirectional=True)
        .build()
    )


@pytest.fixture
def star_platform() -> Platform:
    """A star with hub 0 and four leaves, uniform link time 2."""
    return generate_star_platform(5, uniform_time=2.0)


@pytest.fixture
def diamond_platform() -> Platform:
    """A small platform with two distinct routes from the source.

    Node 0 is the natural source; it has a fast link to 1 and a slow link to
    2; nodes 1 and 2 are connected, and both reach node 3.  The best
    one-port tree is the chain 0 -> 1 -> 2 -> 3.
    """
    return (
        PlatformBuilder(name="diamond")
        .nodes(0, 1, 2, 3)
        .link(0, 1, 1.0, bidirectional=True)
        .link(0, 2, 4.0, bidirectional=True)
        .link(1, 2, 1.0, bidirectional=True)
        .link(1, 3, 3.0, bidirectional=True)
        .link(2, 3, 1.0, bidirectional=True)
        .build()
    )


@pytest.fixture
def complete_uniform_platform() -> Platform:
    """A complete graph over 6 nodes with uniform link time 1.

    Its optimal one-port pipelined broadcast tree is any Hamiltonian chain
    (throughput 1), which equals the LP optimum.
    """
    builder = PlatformBuilder(name="complete-uniform").nodes(*range(6))
    builder.fully_connected(list(range(6)), 1.0)
    return builder.build()


@pytest.fixture
def small_random_platform() -> Platform:
    """A reproducible 12-node random platform used across heuristic tests."""
    return generate_random_platform(num_nodes=12, density=0.25, seed=1234)


@pytest.fixture
def medium_random_platform() -> Platform:
    """A reproducible 20-node random platform (kept small to stay fast)."""
    return generate_random_platform(num_nodes=20, density=0.15, seed=99)


@pytest.fixture
def cluster_platform() -> Platform:
    """Three clusters of four nodes with a slow backbone."""
    return generate_cluster_platform(
        num_clusters=3, cluster_size=4, inter_time_mean=8.0, seed=5
    )


@pytest.fixture
def tiers_platform() -> Platform:
    """One 30-node Tiers-like platform."""
    return generate_tiers_platform(30, seed=11)


# --------------------------------------------------------------------------- #
# Assertion helpers
# --------------------------------------------------------------------------- #
def assert_spanning_tree(tree: BroadcastTree, platform: Platform, source) -> None:
    """Structural checks every heuristic output must satisfy."""
    assert tree.source == source
    assert set(tree.nodes) == set(platform.nodes)
    assert len(tree.logical_edges) == platform.num_nodes - 1
    # Every non-source node has exactly one parent and reaches the source.
    for node in platform.nodes:
        if node == source:
            assert tree.parent(node) is None
        else:
            assert tree.parent(node) is not None
            assert tree.depth(node) >= 1
    # Every route edge exists in the platform.
    for parent, child in tree.logical_edges:
        for a, b in tree.route(parent, child):
            assert platform.has_link(a, b)


@pytest.fixture
def check_spanning_tree():
    """Expose :func:`assert_spanning_tree` as a fixture."""
    return assert_spanning_tree
