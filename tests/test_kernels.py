"""Fast-path kernels vs. their reference implementations.

Every kernel of :mod:`repro.kernels` has a pure-Python reference twin.  The
tests here assert the two agree across random platforms, sizes, both port
models and routed (binomial) trees:

* on *integer-cost* platforms every intermediate quantity of both
  implementations is an exact dyadic float, so the comparison is
  **bit-identical** (``==``, no tolerance), including against the
  discrete-event simulator;
* on continuous random platforms the vectorized scans re-associate prefix
  sums, so those comparisons allow ``1e-12`` relative slack — while the
  purely combinatorial kernels (heuristic selections, spanning oracle,
  multi-port simulation replay) stay bit-identical even there.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, Phase, given, settings
from hypothesis import strategies as st

from repro import (
    BroadcastTree,
    MultiPortModel,
    OnePortModel,
    Platform,
    build_broadcast_tree,
    generate_random_platform,
    pipelined_makespan,
    pipelined_makespan_reference,
    tree_throughput,
)
from repro.analysis.makespan import fill_time
from repro.core.grow_tree import GrowingMinimumOutDegreeTree
from repro.core.local_search import improve_tree, improve_tree_reference
from repro.core.lp_prune import LPCommunicationGraphPruning
from repro.core.multiport_grow import MultiPortGrowingTree
from repro.core.multiport_prune import MultiPortRefinedPruning
from repro.core.prune_refined import RefinedPlatformPruning
from repro.kernels import CompiledTree, SpanningOracle, arrival_matrix
from repro.lp.solver import solve_steady_state_lp
from repro.platform.link import Link
from repro.platform.node import ProcessorNode
from repro.simulation import simulate_broadcast
from repro.utils.graph_utils import adjacency_from_edges, edge_removal_keeps_spanning

_NO_SHRINK = (Phase.explicit, Phase.reuse, Phase.generate)
MODERATE = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    phases=_NO_SHRINK,
)

platform_params = st.tuples(
    st.integers(min_value=4, max_value=14),          # nodes
    st.floats(min_value=0.1, max_value=0.6),         # density
    st.integers(min_value=0, max_value=10_000),      # seed
)
integer_params = st.tuples(
    st.integers(min_value=4, max_value=14),          # nodes
    st.integers(min_value=0, max_value=30),          # extra directed edge pairs
    st.integers(min_value=0, max_value=10_000),      # seed
    st.booleans(),                                   # stamp explicit overheads
)


def integer_platform(num_nodes, extra_pairs, seed, recv_overheads=False) -> Platform:
    """Connected random platform whose costs are small integers.

    Integer transfer times and integer explicit overheads make every
    quantity of the schedule recurrences exactly representable, which turns
    the fast-path/reference comparisons into bit-identity checks.  (The
    multi-port default ``send_u = 0.8 * min T`` is deliberately avoided —
    0.8 is not a dyadic rational.)
    """
    rng = np.random.default_rng(seed)
    platform = Platform(name=f"int-{num_nodes}-{seed}", slice_size=1.0)
    times: dict[tuple[int, int], int] = {}
    order = [int(n) for n in rng.permutation(num_nodes)]
    for position in range(1, num_nodes):
        u, v = order[int(rng.integers(0, position))], order[position]
        times[(u, v)] = int(rng.integers(1, 10))
        times[(v, u)] = int(rng.integers(1, 10))
    for _ in range(extra_pairs):
        u, v = (int(x) for x in rng.integers(0, num_nodes, size=2))
        if u != v and (u, v) not in times:
            times[(u, v)] = int(rng.integers(1, 10))
            times[(v, u)] = int(rng.integers(1, 10))
    for node in range(num_nodes):
        platform.add_node(
            ProcessorNode(
                name=node,
                send_overhead=int(rng.integers(1, 4)),
                recv_overhead=int(rng.integers(1, 4)) if recv_overheads and rng.integers(2) else None,
            )
        )
    for (u, v), time in times.items():
        platform.add_link(Link.with_transfer_time(u, v, float(time)))
    platform.validate()
    return platform


def both_models():
    return (OnePortModel(), MultiPortModel())


# --------------------------------------------------------------------------- #
# CompiledTree structural equivalence
# --------------------------------------------------------------------------- #
class TestCompiledTree:
    @MODERATE
    @given(platform_params, st.sampled_from(["grow-tree", "binomial"]))
    def test_matches_tree_structure(self, params, heuristic):
        platform = generate_random_platform(
            num_nodes=params[0], density=params[1], seed=params[2]
        )
        tree = build_broadcast_tree(platform, 0, heuristic)
        ctree = tree.compiled()
        view = ctree.view
        assert view.name_of(ctree.source) == tree.source
        assert [view.name_of(i) for i in ctree.bfs.tolist()] == tree.bfs_order()
        for i, name in enumerate(view.node_names):
            children = [view.name_of(c) for c in ctree.children_of(i).tolist()]
            assert children == tree.children(name)
            parent = tree.parent(name)
            assert ctree.parents[i] == (-1 if parent is None else view.index_of(parent))
            for slot, child in zip(ctree.child_slots_of(i).tolist(), children):
                hops = [view.edge_list[e] for e in ctree.route_of(slot).tolist()]
                assert tuple(hops) == tree.route(name, child)
        assert ctree.is_direct == tree.is_direct

    def test_cached_per_size_and_rebuilt_on_mutation(self, diamond_platform):
        tree = BroadcastTree.from_edges(diamond_platform, 0, [(0, 1), (1, 2), (2, 3)])
        first = tree.compiled()
        assert tree.compiled() is first
        assert tree.compiled(2.0) is not first
        diamond_platform.add_link(Link.with_transfer_time(3, 0, 5.0))
        rebuilt = tree.compiled()
        assert rebuilt is not first
        assert rebuilt.view is diamond_platform.compiled()


# --------------------------------------------------------------------------- #
# Vectorized makespan kernel
# --------------------------------------------------------------------------- #
class TestMakespanKernel:
    @MODERATE
    @given(integer_params, st.sampled_from(["grow-tree", "prune-degree", "binomial"]))
    def test_bit_identical_on_integer_platforms(self, params, heuristic):
        nodes, extra, seed, overheads = params
        platform = integer_platform(nodes, extra, seed, overheads)
        tree = build_broadcast_tree(platform, 0, heuristic)
        for model in both_models():
            for num_slices in (1, 7, 40):
                fast = pipelined_makespan(tree, num_slices, model)
                reference = pipelined_makespan_reference(tree, num_slices, model)
                assert fast == reference  # dataclass equality: exact floats

    @MODERATE
    @given(platform_params, st.sampled_from(["grow-tree", "binomial"]))
    def test_close_on_continuous_platforms(self, params, heuristic):
        platform = generate_random_platform(
            num_nodes=params[0], density=params[1], seed=params[2]
        )
        tree = build_broadcast_tree(platform, 0, heuristic)
        for model in both_models():
            fast = pipelined_makespan(tree, 25, model)
            reference = pipelined_makespan_reference(tree, 25, model)
            assert fast.makespan == pytest.approx(reference.makespan, rel=1e-12)
            assert fast.fill_time == pytest.approx(reference.fill_time, rel=1e-12)
            assert fast.steady_state_period == reference.steady_state_period

    def test_shared_relay_falls_back_per_node(self):
        # Children 2 and 3 of logical parent 0 both route through relay 1:
        # that parent takes the scalar path, the rest stays vectorized.
        platform = Platform(name="shared-relay", slice_size=1.0)
        for node in range(4):
            platform.add_node(node)
        for u, v, t in [(0, 1, 2.0), (1, 2, 3.0), (1, 3, 5.0)]:
            platform.add_link(Link.with_transfer_time(u, v, t))
        tree = BroadcastTree.from_logical_transfers(
            platform, 0, [(0, 1), (0, 2), (0, 3)]
        )
        assert not tree.is_direct
        for num_slices in (1, 9):
            fast = pipelined_makespan(tree, num_slices)
            reference = pipelined_makespan_reference(tree, num_slices)
            assert fast == reference

        # fill_time must serialize the shared relay on both of its branches:
        # the kernel (canonical model) and the custom-model fallback loop.
        class CustomOnePort(OnePortModel):
            """Subclass: rejected by the kernel, takes the fallback path."""

        expected = pipelined_makespan_reference(tree, 1).fill_time
        assert fill_time(tree, OnePortModel()) == expected
        assert fill_time(tree, CustomOnePort()) == expected

    @MODERATE
    @given(integer_params)
    def test_fill_time_is_single_slice_makespan(self, params):
        platform = integer_platform(*params)
        tree = build_broadcast_tree(platform, 0, "grow-tree")
        for model in both_models():
            assert fill_time(tree, model) == (
                pipelined_makespan_reference(tree, 1, model).fill_time
            )


# --------------------------------------------------------------------------- #
# In-order simulation fast path
# --------------------------------------------------------------------------- #
class TestSimulationFastPath:
    @staticmethod
    def run_both(tree, model, num_slices=23):
        fast = simulate_broadcast(
            tree, num_slices, model=model, record_trace=False
        )
        # Reference arm: force the event engine for the same configuration.
        from repro.simulation.broadcast import PipelinedBroadcastSimulator

        reference = PipelinedBroadcastSimulator(
            tree, num_slices, model=model, record_trace=False
        )
        reference._fast_path_applicable = lambda: False
        return fast, reference.run()

    @MODERATE
    @given(integer_params, st.sampled_from(["grow-tree", "prune-degree"]))
    def test_bit_identical_on_integer_platforms(self, params, heuristic):
        nodes, extra, seed, overheads = params
        platform = integer_platform(nodes, extra, seed, overheads)
        tree = build_broadcast_tree(platform, 0, heuristic)
        for model in both_models():
            fast, engine = self.run_both(tree, model)
            assert fast.arrival_times == engine.arrival_times
            assert fast.makespan == engine.makespan
            assert fast.measured_throughput == engine.measured_throughput
            assert fast.analytical_throughput == engine.analytical_throughput
            assert fast.resource_utilization == engine.resource_utilization

    @MODERATE
    @given(platform_params)
    def test_multi_port_bit_identical_on_continuous_platforms(self, params):
        # The multi-port fast path replays the engine's arithmetic operation
        # for operation, so it is exact even with irrational-looking floats.
        platform = generate_random_platform(
            num_nodes=params[0], density=params[1], seed=params[2]
        )
        model = MultiPortModel()
        tree = build_broadcast_tree(platform, 0, "multiport-grow-tree", model=model)
        fast, engine = self.run_both(tree, model)
        assert fast.arrival_times == engine.arrival_times
        assert fast.resource_utilization == engine.resource_utilization

    @MODERATE
    @given(platform_params)
    def test_one_port_close_on_continuous_platforms(self, params):
        platform = generate_random_platform(
            num_nodes=params[0], density=params[1], seed=params[2]
        )
        tree = build_broadcast_tree(platform, 0, "grow-tree")
        fast, engine = self.run_both(tree, OnePortModel())
        for node, times in engine.arrival_times.items():
            assert fast.arrival_times[node] == pytest.approx(times, rel=1e-12)
        assert fast.makespan == pytest.approx(engine.makespan, rel=1e-12)

    def test_zero_send_overhead_matches_engine_utilization(self):
        # An explicit send_overhead of 0 makes every multi-port send free;
        # the engine then drops the send port from resource_utilization
        # (busy_time filter) and the fast path must do the same.
        platform = Platform(name="free-sender", slice_size=1.0)
        for node in range(3):
            platform.add_node(ProcessorNode(name=node, send_overhead=0.0))
        for u, v in [(0, 1), (1, 2)]:
            platform.add_link(Link.with_transfer_time(u, v, 2.0))
            platform.add_link(Link.with_transfer_time(v, u, 2.0))
        platform.validate()
        tree = BroadcastTree.from_edges(platform, 0, [(0, 1), (1, 2)])
        fast, engine = self.run_both(tree, MultiPortModel(), num_slices=8)
        assert fast.arrival_times == engine.arrival_times
        assert fast.resource_utilization == engine.resource_utilization

    def test_routed_trees_and_tracing_keep_the_engine(self, small_random_platform):
        routed = build_broadcast_tree(small_random_platform, 0, "binomial")
        result = simulate_broadcast(routed, 10, record_trace=False)
        assert result.makespan > 0  # engine path (fast path rejects routed trees)
        direct = build_broadcast_tree(small_random_platform, 0, "grow-tree")
        traced = simulate_broadcast(direct, 10, record_trace=True)
        assert len(traced.trace) > 0  # tracing always uses the engine


# --------------------------------------------------------------------------- #
# Incremental heuristics
# --------------------------------------------------------------------------- #
class TestIncrementalHeuristics:
    @MODERATE
    @given(platform_params, st.booleans())
    def test_grow_tree_heap_matches_rescan(self, params, literal):
        platform = generate_random_platform(
            num_nodes=params[0], density=params[1], seed=params[2]
        )
        fast = GrowingMinimumOutDegreeTree(literal_cost_update=literal, fast=True)
        reference = GrowingMinimumOutDegreeTree(literal_cost_update=literal, fast=False)
        assert fast.build(platform, 0).to_parent_dict() == (
            reference.build(platform, 0).to_parent_dict()
        )

    @MODERATE
    @given(platform_params)
    def test_multiport_grow_heap_matches_rescan(self, params):
        platform = generate_random_platform(
            num_nodes=params[0], density=params[1], seed=params[2]
        )
        model = MultiPortModel()
        fast = MultiPortGrowingTree(fast=True).build(platform, 0, model=model)
        reference = MultiPortGrowingTree(fast=False).build(platform, 0, model=model)
        assert fast.to_parent_dict() == reference.to_parent_dict()

    @MODERATE
    @given(platform_params)
    def test_prune_refined_oracle_matches_reference(self, params):
        platform = generate_random_platform(
            num_nodes=params[0], density=params[1], seed=params[2]
        )
        fast = RefinedPlatformPruning(fast=True).build(platform, 0)
        reference = RefinedPlatformPruning(fast=False).build(platform, 0)
        assert fast.to_parent_dict() == reference.to_parent_dict()

    @MODERATE
    @given(platform_params)
    def test_multiport_prune_oracle_matches_reference(self, params):
        platform = generate_random_platform(
            num_nodes=params[0], density=params[1], seed=params[2]
        )
        model = MultiPortModel()
        fast = MultiPortRefinedPruning(fast=True).build(platform, 0, model=model)
        reference = MultiPortRefinedPruning(fast=False).build(platform, 0, model=model)
        assert fast.to_parent_dict() == reference.to_parent_dict()

    @MODERATE
    @given(st.tuples(
        st.integers(min_value=4, max_value=10),
        st.floats(min_value=0.2, max_value=0.6),
        st.integers(min_value=0, max_value=1_000),
    ))
    def test_lp_prune_oracle_matches_reference(self, params):
        platform = generate_random_platform(
            num_nodes=params[0], density=params[1], seed=params[2]
        )
        solution = solve_steady_state_lp(platform, 0)
        fast = LPCommunicationGraphPruning(fast=True).build(
            platform, 0, lp_solution=solution
        )
        reference = LPCommunicationGraphPruning(fast=False).build(
            platform, 0, lp_solution=solution
        )
        assert fast.to_parent_dict() == reference.to_parent_dict()

    @MODERATE
    @given(platform_params, st.sampled_from(["grow-tree", "binomial"]))
    def test_local_search_delta_matches_full_recompute(self, params, heuristic):
        platform = generate_random_platform(
            num_nodes=params[0], density=params[1], seed=params[2]
        )
        tree = build_broadcast_tree(platform, 0, heuristic)
        for model in both_models():
            fast = improve_tree(tree, model)
            reference = improve_tree_reference(tree, model)
            assert fast.to_parent_dict() == reference.to_parent_dict()
            assert (
                tree_throughput(fast, model).throughput
                == tree_throughput(reference, model).throughput
            )


# --------------------------------------------------------------------------- #
# Spanning oracle
# --------------------------------------------------------------------------- #
class TestSpanningOracle:
    @MODERATE
    @given(platform_params, st.integers(min_value=0, max_value=2**32 - 1))
    def test_matches_reference_reachability(self, params, removal_seed):
        platform = generate_random_platform(
            num_nodes=params[0], density=params[1], seed=params[2]
        )
        view = platform.compiled()
        oracle = SpanningOracle(view, view.index_of(0))
        nodes = platform.nodes
        remaining = set(platform.edges)
        adjacency = adjacency_from_edges(nodes, remaining)
        rng = np.random.default_rng(removal_seed)
        edge_ids = {edge: e for e, edge in enumerate(view.edge_list)}
        for _ in range(min(20, len(remaining))):
            edge = sorted(remaining)[int(rng.integers(0, len(remaining)))]
            expected = edge_removal_keeps_spanning(0, nodes, adjacency, edge)
            assert oracle.keeps_spanning(edge_ids[edge]) == expected
            if expected:
                remaining.discard(edge)
                adjacency[edge[0]].discard(edge[1])
                oracle.remove(edge_ids[edge])


# --------------------------------------------------------------------------- #
# LP solution extraction
# --------------------------------------------------------------------------- #
class TestLPOccupationExtraction:
    def test_one_pass_occupation_matches_naive_loops(self, small_random_platform):
        platform = small_random_platform
        solution = solve_steady_state_lp(platform, 0)
        for node in platform.nodes:
            t_in = sum(
                solution.edge_messages[(u, v)] * platform.transfer_time(u, v)
                for u, v in platform.edges
                if v == node
            )
            t_out = sum(
                solution.edge_messages[(u, v)] * platform.transfer_time(u, v)
                for u, v in platform.edges
                if u == node
            )
            reference_in, reference_out = solution.objective_per_node[node]
            assert reference_in == pytest.approx(t_in, rel=1e-12, abs=1e-15)
            assert reference_out == pytest.approx(t_out, rel=1e-12, abs=1e-15)
