"""Tests for the shared utilities (rng, graph helpers, ascii rendering, metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import geometric_mean, relative_performance, summarize
from repro.utils.ascii_plot import ascii_chart, format_series_table, format_table
from repro.utils.graph_utils import (
    adjacency_from_edges,
    edge_removal_keeps_spanning,
    is_spanning_from,
    reachable_from,
    sort_edges_by_weight,
)
from repro.utils.rng import (
    as_generator,
    derive_seed,
    hash_stable,
    round_robin_chunks,
    sample_positive_normal,
    spawn_generators,
)


class TestRng:
    def test_as_generator_accepts_all_inputs(self):
        assert isinstance(as_generator(None), np.random.Generator)
        assert isinstance(as_generator(42), np.random.Generator)
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen
        assert isinstance(as_generator(np.random.SeedSequence(1)), np.random.Generator)

    def test_seeded_generators_reproducible(self):
        a = as_generator(7).normal(size=5)
        b = as_generator(7).normal(size=5)
        assert np.allclose(a, b)

    def test_spawn_generators_independent_and_deterministic(self):
        first = [g.integers(0, 1000) for g in spawn_generators(3, 4)]
        second = [g.integers(0, 1000) for g in spawn_generators(3, 4)]
        assert first == second
        assert len(set(first)) > 1

    def test_spawn_from_generator(self):
        children = spawn_generators(np.random.default_rng(0), 2)
        assert len(children) == 2
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_derive_seed_stable_and_sensitive(self):
        assert derive_seed(1, "random", 10) == derive_seed(1, "random", 10)
        assert derive_seed(1, "random", 10) != derive_seed(1, "random", 11)
        assert derive_seed(1, "random", 10) != derive_seed(2, "random", 10)
        assert derive_seed(None, "x") == derive_seed(None, "x")

    def test_hash_stable(self):
        assert hash_stable("tiers") == hash_stable("tiers")
        assert hash_stable("tiers") != hash_stable("random")

    def test_sample_positive_normal_floors_values(self):
        rng = as_generator(0)
        values = sample_positive_normal(rng, mean=1.0, deviation=10.0, size=500)
        assert np.all(values >= 0.05)
        scalar = sample_positive_normal(as_generator(1), mean=5.0, deviation=0.0)
        assert scalar == pytest.approx(5.0)
        with pytest.raises(ValueError):
            sample_positive_normal(rng, mean=-1.0, deviation=1.0)

    def test_round_robin_chunks(self):
        groups = round_robin_chunks(range(7), 3)
        assert groups == [[0, 3, 6], [1, 4], [2, 5]]
        with pytest.raises(ValueError):
            round_robin_chunks([1], 0)


class TestGraphUtils:
    @pytest.fixture
    def adjacency(self):
        edges = [(0, 1), (1, 2), (2, 3), (0, 3), (3, 0)]
        return adjacency_from_edges(range(4), edges)

    def test_reachable_from(self, adjacency):
        assert reachable_from(0, adjacency) == {0, 1, 2, 3}
        assert reachable_from(1, adjacency) == {0, 1, 2, 3}

    def test_skip_edge(self, adjacency):
        assert reachable_from(0, adjacency, skip_edge=(0, 1)) == {0, 3}

    def test_is_spanning_from(self, adjacency):
        assert is_spanning_from(0, range(4), adjacency)
        partial = {2: {3}, 3: set()}
        assert not is_spanning_from(2, range(4), partial)

    def test_edge_removal_keeps_spanning(self, adjacency):
        assert edge_removal_keeps_spanning(0, range(4), adjacency, (0, 3))
        assert not edge_removal_keeps_spanning(0, range(4), adjacency, (0, 1))

    def test_sort_edges_by_weight_deterministic(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        weights = {(0, 1): 2.0, (1, 2): 2.0, (2, 3): 1.0}
        descending = sort_edges_by_weight(edges, weights)
        assert descending[-1] == (2, 3)
        assert set(descending) == set(edges)
        ascending = sort_edges_by_weight(edges, weights, descending=False)
        assert ascending[0] == (2, 3)


class TestAsciiRendering:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["long-name", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in text
        assert lines[0].startswith("name")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series_table(self):
        text = format_series_table("x", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]})
        assert "s1" in text and "s2" in text
        assert "0.400" in text

    def test_ascii_chart_contains_legend_and_bounds(self):
        chart = ascii_chart([1, 2, 3], {"up": [0.1, 0.5, 0.9], "down": [0.9, 0.5, 0.1]})
        assert "legend:" in chart
        assert "up" in chart and "down" in chart
        with pytest.raises(ValueError):
            ascii_chart([1], {})


class TestMetrics:
    def test_summarize(self):
        stats = summarize([0.5, 0.7, 0.9])
        assert stats.count == 3
        assert stats.mean == pytest.approx(0.7)
        assert stats.minimum == 0.5 and stats.maximum == 0.9
        assert stats.std == pytest.approx(0.1633, abs=1e-3)
        assert "%" in stats.format()
        assert "%" not in stats.format(as_percentage=False)
        with pytest.raises(ValueError):
            summarize([])

    def test_relative_performance(self):
        assert relative_performance(0.5, 1.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            relative_performance(0.5, 0.0)
        with pytest.raises(ValueError):
            relative_performance(-0.5, 1.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
