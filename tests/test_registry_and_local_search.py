"""Tests for the heuristic registry and the local-search improvement pass."""

from __future__ import annotations

import pytest

from repro import (
    HEURISTICS,
    PAPER_MULTI_PORT_HEURISTICS,
    PAPER_ONE_PORT_HEURISTICS,
    BinomialTreeHeuristic,
    GrowingMinimumOutDegreeTree,
    LocalSearchImprovement,
    available_heuristics,
    build_broadcast_tree,
    get_heuristic,
    improve_tree,
    register_heuristic,
    tree_throughput,
)
from repro.core.base import TreeHeuristic
from repro.exceptions import HeuristicError, UnknownHeuristicError
from tests.conftest import assert_spanning_tree


class TestRegistry:
    def test_paper_heuristics_are_registered(self):
        for name in PAPER_ONE_PORT_HEURISTICS + PAPER_MULTI_PORT_HEURISTICS:
            assert name in HEURISTICS
            heuristic = get_heuristic(name)
            assert isinstance(heuristic, TreeHeuristic)
            assert heuristic.name == name

    def test_available_heuristics_sorted(self):
        names = available_heuristics()
        assert names == sorted(names)
        assert "grow-tree" in names

    def test_get_heuristic_passthrough(self):
        instance = GrowingMinimumOutDegreeTree()
        assert get_heuristic(instance) is instance

    def test_unknown_name(self):
        with pytest.raises(UnknownHeuristicError):
            get_heuristic("does-not-exist")

    def test_register_custom_heuristic(self, small_random_platform):
        class StarFromSource(TreeHeuristic):
            name = "test-star"
            paper_label = "Test Star"

            def _build(self, platform, source, model, size, **kwargs):
                from repro import BroadcastTree

                transfers = [(source, node) for node in platform.nodes if node != source]
                return BroadcastTree.from_logical_transfers(platform, source, transfers)

        register_heuristic("test-star", StarFromSource, overwrite=True)
        try:
            tree = build_broadcast_tree(small_random_platform, 0, "test-star")
            assert set(tree.children(0)) | {0} >= set()
            assert tree.num_nodes == small_random_platform.num_nodes
            with pytest.raises(ValueError):
                register_heuristic("test-star", StarFromSource)
        finally:
            HEURISTICS.pop("test-star", None)

    def test_build_broadcast_tree_default(self, small_random_platform):
        tree = build_broadcast_tree(small_random_platform, 0)
        assert tree.name == "grow-tree"
        assert_spanning_tree(tree, small_random_platform, 0)

    def test_describe(self):
        assert "Grow Tree" in GrowingMinimumOutDegreeTree().describe()
        assert "grow-tree" in repr(GrowingMinimumOutDegreeTree())


class TestLocalSearch:
    def test_never_degrades_throughput(self, medium_random_platform):
        for name in ("grow-tree", "prune-degree", "prune-simple"):
            tree = build_broadcast_tree(medium_random_platform, 0, name)
            improved = improve_tree(tree)
            assert (
                tree_throughput(improved).throughput
                >= tree_throughput(tree).throughput - 1e-12
            )
            assert_spanning_tree(improved, medium_random_platform, 0)

    def test_improves_binomial_tree(self, medium_random_platform):
        tree = build_broadcast_tree(medium_random_platform, 0, "binomial")
        improved = improve_tree(tree)
        assert (
            tree_throughput(improved).throughput
            > tree_throughput(tree).throughput
        )

    def test_improved_name_is_tagged(self, small_random_platform):
        tree = build_broadcast_tree(small_random_platform, 0, "grow-tree")
        improved = improve_tree(tree)
        assert improved.name.endswith("+local-search")

    def test_star_platform_cannot_improve(self, star_platform):
        from repro import BroadcastTree

        tree = BroadcastTree.from_edges(
            star_platform, 0, [(0, leaf) for leaf in range(1, 5)]
        )
        improved = improve_tree(tree)
        assert tree_throughput(improved).period == pytest.approx(8.0)

    def test_wrapper_heuristic(self, small_random_platform):
        wrapper = LocalSearchImprovement(GrowingMinimumOutDegreeTree())
        assert wrapper.name == "grow-tree+local-search"
        tree = wrapper.build(small_random_platform, 0)
        assert_spanning_tree(tree, small_random_platform, 0)
        base = GrowingMinimumOutDegreeTree().build(small_random_platform, 0)
        assert (
            tree_throughput(tree).throughput
            >= tree_throughput(base).throughput - 1e-12
        )

    def test_wrapper_requires_heuristic(self):
        with pytest.raises(HeuristicError):
            LocalSearchImprovement("grow-tree")  # type: ignore[arg-type]

    def test_registered_local_search_variants(self, small_random_platform):
        for name in ("grow-tree+local-search", "binomial+local-search"):
            tree = build_broadcast_tree(small_random_platform, 0, name)
            assert_spanning_tree(tree, small_random_platform, 0)

    def test_max_iterations_zero_keeps_tree(self, medium_random_platform):
        tree = build_broadcast_tree(medium_random_platform, 0, "grow-tree")
        frozen = improve_tree(tree, max_iterations=0)
        assert tree_throughput(frozen).throughput == pytest.approx(
            tree_throughput(tree).throughput
        )


class TestBinomialFlattening:
    def test_routed_tree_is_flattened_before_search(self, medium_random_platform):
        tree = BinomialTreeHeuristic().build(medium_random_platform, 0)
        improved = improve_tree(tree, max_iterations=0)
        # Even without any accepted move, the routed tree is flattened into a
        # direct tree whose physical transfers are a subset of the original.
        assert improved.is_direct
        assert improved.num_nodes == tree.num_nodes
