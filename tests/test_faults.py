"""Fault-injection suite: the fault-tolerant runtime under deterministic faults.

The acceptance scenario of the fault-tolerant runtime: a 200-task campaign
with ~20% injected worker errors / hangs / crashes completes under
``keep_going``, its surviving records are bit-identical to the fault-free
run, every injected fault is accounted for as a structured error record,
and a second invocation resumes from the disk cache, recomputing only the
failed tasks.

Every fault decision is a pure function of the plan seed and the task /
job labels (:func:`repro.faults.classify_task`), so the tests *predict*
the exact failure set up front and assert the runtime matches it.  Fault
plans are selected by scanning seeds against the prediction rather than
pinned: labels embed the library version, so pinned seeds would silently
change meaning on a version bump.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.api import (
    FailedResult,
    Job,
    PlatformRecipe,
    Result,
    RetryPolicy,
    Session,
    TaskFailure,
)
from repro.collectives import CollectiveSpec
from repro.exceptions import (
    ConfigError,
    ExperimentError,
    JobFailedError,
    ReproError,
    TaskTimeoutError,
)
from repro.experiments import (
    EvaluationPipeline,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    ensemble_task_key,
    random_ensemble_tasks,
    scaled_parameters,
)
from repro.experiments.pipeline import _task_jobs
from repro.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    InjectedCrashError,
    InjectedWorkerError,
    active_plan,
    classify_task,
    inject_faults,
)
from repro.runtime import ResultCache as RuntimeResultCache
from repro.runtime import SupervisedExecutor, stable_key


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
class CountingSerial(SerialExecutor):
    """Serial executor counting how many tasks were actually submitted."""

    def __init__(self) -> None:
        self.calls = 0

    def map(self, function, tasks):
        tasks = list(tasks)
        self.calls += len(tasks)
        return super().map(function, tasks)


def _campaign_parameters(configurations: int, seed: int):
    return replace(
        scaled_parameters(0.1),
        node_counts=(5,),
        densities=(0.4,),
        configurations_per_point=configurations,
        tiers_sizes=(),
        seed=seed,
    )


def _task_labels_and_job_keys(tasks):
    """Per-task supervision label plus the job labels its session will roll."""
    session = Session()
    task_keys = [ensemble_task_key(task) for task in tasks]
    job_keys = [
        [job.cache_key() for job in _task_jobs(task, session)] for task in tasks
    ]
    return task_keys, job_keys


def _first_fault(plan, task_key, job_keys):
    """The first fault site a task hits, or ``None`` when it survives.

    Mirrors the runtime's two supervision layers: the pipeline rolls the
    task label first (the hook runs before the task body), then the
    session inside the task rolls each job label in submission order.
    """
    kind = classify_task(plan, task_key)
    if kind != "ok":
        return kind
    for key in job_keys:
        kind = classify_task(plan, key)
        if kind != "ok":
            return kind
    return None


def _predict_failures(plan, task_keys, job_keys):
    """Map of task index -> fault kind for every task the plan fails."""
    predicted = {}
    for i, task_key in enumerate(task_keys):
        kind = _first_fault(plan, task_key, job_keys[i])
        if kind is not None:
            predicted[i] = kind
    return predicted


def _payloads(records):
    return [record.deterministic_payload() for record in records]


#: Fault kind -> exception type the runtime surfaces for it (serial runs;
#: crash faults downgrade to :class:`InjectedCrashError` outside workers).
_SERIAL_ERROR_TYPES = {
    "error": "InjectedWorkerError",
    "timeout": "TaskTimeoutError",
    "crash": "InjectedCrashError",
}


# --------------------------------------------------------------------------- #
# The plan: validation, serialization, deterministic classification
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ConfigError):
            FaultPlan(task_error_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(solver_error_rate=-0.1)

    def test_task_rates_must_partition(self):
        with pytest.raises(ConfigError):
            FaultPlan(task_error_rate=0.5, task_timeout_rate=0.4, task_crash_rate=0.2)

    def test_hang_must_be_positive(self):
        with pytest.raises(ConfigError):
            FaultPlan(hang_seconds=0.0)

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=9,
            task_error_rate=0.125,
            task_crash_rate=0.25,
            solver_error_rate=0.5,
            hang_seconds=1.5,
            persistent=True,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_classification_is_deterministic_and_partitioned(self):
        plan = FaultPlan(
            seed=3, task_error_rate=0.1, task_timeout_rate=0.2, task_crash_rate=0.1
        )
        labels = [f"label-{i}" for i in range(2000)]
        kinds = [classify_task(plan, label) for label in labels]
        assert kinds == [classify_task(plan, label) for label in labels]
        fractions = {
            kind: kinds.count(kind) / len(kinds)
            for kind in ("error", "timeout", "crash", "ok")
        }
        assert fractions["error"] == pytest.approx(0.1, abs=0.04)
        assert fractions["timeout"] == pytest.approx(0.2, abs=0.04)
        assert fractions["crash"] == pytest.approx(0.1, abs=0.04)
        assert fractions["ok"] == pytest.approx(0.6, abs=0.04)

    def test_inject_faults_publishes_and_restores_environment(self):
        assert active_plan() is None
        outer = FaultPlan(seed=1, task_error_rate=0.1)
        inner = FaultPlan(seed=2, task_error_rate=0.2)
        with inject_faults(outer):
            assert active_plan() == outer
            assert FAULT_PLAN_ENV in os.environ
            with inject_faults(inner):
                assert active_plan() == inner
            assert active_plan() == outer
        assert active_plan() is None
        assert FAULT_PLAN_ENV not in os.environ

    def test_keyword_rates_shortcut(self):
        with inject_faults(seed=5, task_error_rate=0.5) as plan:
            assert plan.task_error_rate == 0.5
        with pytest.raises(ConfigError):
            inject_faults(FaultPlan(), task_error_rate=0.5)


class TestStableKeyGuard:
    def test_identity_repr_is_rejected_with_field_name(self):
        with pytest.raises(ExperimentError, match=r"\$\.options\.callback"):
            stable_key({"seed": 3, "options": {"callback": object()}})

    def test_value_reprs_still_accepted(self):
        assert stable_key({"a": (1, 2)}) == stable_key({"a": (1, 2)})


# --------------------------------------------------------------------------- #
# Supervision units under injection
# --------------------------------------------------------------------------- #
class TestSupervisionUnderInjection:
    def test_transient_faults_are_recovered_by_one_retry(self):
        supervisor = SupervisedExecutor(
            SerialExecutor(), RetryPolicy(retries=1, backoff=0.0)
        )
        with inject_faults(seed=0, task_error_rate=1.0):
            values = list(supervisor.map(lambda x: x * x, [1, 2, 3]))
        assert values == [1, 4, 9]

    def test_exhausted_retries_become_structured_failures(self):
        supervisor = SupervisedExecutor(
            SerialExecutor(), RetryPolicy(retries=2, backoff=0.0)
        )
        plan = FaultPlan(seed=0, task_error_rate=1.0, persistent=True)
        with inject_faults(plan):
            outcomes = list(
                supervisor.map_outcomes(lambda x: x, [1, 2], labels=["a", "b"])
            )
        assert [o.ok for o in outcomes] == [False, False]
        assert [o.failure.label for o in outcomes] == ["a", "b"]
        assert all(o.failure.attempts == 3 for o in outcomes)
        assert all(o.failure.error_type == "InjectedWorkerError" for o in outcomes)

    def test_map_raises_the_original_exception_type(self):
        supervisor = SupervisedExecutor(
            SerialExecutor(), RetryPolicy(retries=0, backoff=0.0)
        )
        plan = FaultPlan(seed=0, task_error_rate=1.0, persistent=True)
        with inject_faults(plan):
            with pytest.raises(InjectedWorkerError):
                list(supervisor.map(lambda x: x, [1]))

    def test_injected_hang_trips_the_watchdog_then_recovers(self):
        supervisor = SupervisedExecutor(
            SerialExecutor(),
            RetryPolicy(retries=1, task_timeout=0.1, backoff=0.0),
        )
        plan = FaultPlan(seed=0, task_timeout_rate=1.0, hang_seconds=0.4)
        with inject_faults(plan):
            values = list(supervisor.map(lambda x: x + 1, [41]))
        assert values == [42]

    def test_injected_hang_is_permanent_without_retries(self):
        supervisor = SupervisedExecutor(
            SerialExecutor(),
            RetryPolicy(retries=0, task_timeout=0.1, backoff=0.0),
        )
        plan = FaultPlan(
            seed=0, task_timeout_rate=1.0, hang_seconds=0.4, persistent=True
        )
        with inject_faults(plan):
            outcomes = list(supervisor.map_outcomes(lambda x: x, [1]))
        assert not outcomes[0].ok
        assert outcomes[0].failure.error_type == "TaskTimeoutError"
        assert isinstance(outcomes[0].exception, TaskTimeoutError)

    def test_crash_faults_downgrade_to_exceptions_in_process(self):
        supervisor = SupervisedExecutor(
            SerialExecutor(), RetryPolicy(retries=0, backoff=0.0)
        )
        plan = FaultPlan(seed=0, task_crash_rate=1.0, persistent=True)
        with inject_faults(plan):
            outcomes = list(supervisor.map_outcomes(lambda x: x, [1]))
        assert not outcomes[0].ok
        assert outcomes[0].failure.error_type == "InjectedCrashError"
        assert isinstance(outcomes[0].exception, InjectedCrashError)


# --------------------------------------------------------------------------- #
# LP solver: transient failures recovered by the method-fallback chain
# --------------------------------------------------------------------------- #
class TestSolverFallback:
    def _job(self):
        recipe = PlatformRecipe.of("random", num_nodes=6, density=0.4, seed=3)
        return Job(
            recipe,
            CollectiveSpec("broadcast", 0),
            heuristic="grow-tree",
            model="one-port",
        )

    def test_method_chain_starts_with_the_request_without_duplicates(self):
        from repro.lp.solver import _method_chain

        assert _method_chain("highs") == ("highs", "highs-ds", "highs-ipm")
        chain = _method_chain("highs-ds")
        assert chain[0] == "highs-ds"
        assert len(chain) == len(set(chain))

    def test_every_solve_recovers_through_the_alternate_method(self):
        baseline = Session().solve(self._job()).lp_bound
        plan = FaultPlan(seed=0, solver_error_rate=1.0)
        with inject_faults(plan):
            recovered = Session().solve(self._job()).lp_bound
        assert recovered == pytest.approx(baseline, abs=1e-9)


# --------------------------------------------------------------------------- #
# Facade: failure as data
# --------------------------------------------------------------------------- #
class TestFailedResult:
    def _failure(self):
        return TaskFailure(
            label="job-x",
            error_type="InjectedWorkerError",
            message="boom",
            attempts=2,
        )

    def _job(self):
        recipe = PlatformRecipe.of("random", num_nodes=5, density=0.4, seed=11)
        return Job(
            recipe,
            CollectiveSpec("broadcast", 0),
            heuristic="binomial",
            model="one-port",
        )

    def test_failure_is_data_until_a_metric_is_touched(self):
        result = FailedResult(self._job(), Session(), self._failure())
        assert result.ok is False
        assert result.error == self._failure()
        assert result.metrics() == {}
        assert result.is_materialized() is False
        with pytest.raises(JobFailedError):
            result.throughput
        with pytest.raises(JobFailedError):
            result.materialize()
        with pytest.raises(ReproError):  # the library-wide contract
            result.lp_bound

    def test_serialization_round_trip(self):
        session = Session()
        result = FailedResult(self._job(), session, self._failure())
        restored = Result.from_json(result.to_json(), session=session)
        assert isinstance(restored, FailedResult)
        assert restored.ok is False
        assert restored.error == self._failure()
        assert restored.job.cache_key() == self._job().cache_key()

    def _two_jobs_and_plan(self):
        """Two jobs on one platform plus a plan failing exactly the first."""
        recipe = PlatformRecipe.of("random", num_nodes=5, density=0.4, seed=11)
        jobs = [
            Job(
                recipe,
                CollectiveSpec("broadcast", 0),
                heuristic=heuristic,
                model="one-port",
            )
            for heuristic in ("binomial", "grow-tree")
        ]
        keys = [job.cache_key() for job in jobs]
        for seed in range(500):
            plan = FaultPlan(seed=seed, task_error_rate=0.4, persistent=True)
            kinds = [classify_task(plan, key) for key in keys]
            if kinds == ["error", "ok"]:
                return jobs, plan
        raise AssertionError("no seed fails exactly the first job")

    def test_collect_mode_substitutes_failed_results(self):
        jobs, plan = self._two_jobs_and_plan()
        baseline = Session().solve_many(jobs)
        session = Session(retry_policy=RetryPolicy(retries=0, backoff=0.0))
        with inject_faults(plan):
            results = session.solve_many(jobs, on_error="collect")
        assert [r.ok for r in results] == [False, True]
        assert isinstance(results[0], FailedResult)
        assert results[0].error.error_type == "InjectedWorkerError"
        assert results[0].error.label == jobs[0].cache_key()
        # The surviving batch-mate is untouched by its neighbour's failure.
        assert results[1].deterministic_metrics() == baseline[1].deterministic_metrics()

    def test_raise_mode_propagates_the_original_exception(self):
        jobs, plan = self._two_jobs_and_plan()
        session = Session(retry_policy=RetryPolicy(retries=0, backoff=0.0))
        with inject_faults(plan):
            with pytest.raises(InjectedWorkerError):
                session.solve_many(jobs, on_error="raise")

    def test_unknown_on_error_mode_rejected(self):
        with pytest.raises(ConfigError):
            Session().solve_many([], on_error="ignore")

    def test_failed_results_are_never_persisted(self, tmp_path):
        jobs, plan = self._two_jobs_and_plan()
        session = Session(
            cache_dir=tmp_path, retry_policy=RetryPolicy(retries=0, backoff=0.0)
        )
        with inject_faults(plan):
            session.solve_many(jobs, on_error="collect")
        # A fresh session sees only the survivor on disk: the failed job is
        # recomputed (and now succeeds) instead of replaying its failure.
        fresh = Session(cache_dir=tmp_path)
        results = fresh.solve_many(jobs)
        assert all(r.ok for r in results)


# --------------------------------------------------------------------------- #
# Cache corruption faults
# --------------------------------------------------------------------------- #
class TestCacheCorruptionFaults:
    def test_corrupted_reads_are_quarantined_and_recomputed(self, tmp_path):
        RuntimeResultCache(tmp_path, version="v").put("k", [{"value": 1}])
        entry = tmp_path / "ensemble-k.json"
        assert entry.exists()
        fresh = RuntimeResultCache(tmp_path, version="v")
        with inject_faults(seed=0, cache_corrupt_rate=1.0):
            assert fresh.get("k") is None  # truncated payload: a miss
        assert not entry.exists()
        assert entry.with_suffix(".corrupt").exists()
        # Recompute-and-rewrite restores normal service.
        fresh.put("k", [{"value": 2}])
        assert RuntimeResultCache(tmp_path, version="v").get("k") == [{"value": 2}]


# --------------------------------------------------------------------------- #
# The acceptance campaign: 200 tasks, ~20% faults, keep_going + resume
# --------------------------------------------------------------------------- #
CAMPAIGN_TASKS = 200

_CAMPAIGN_POLICY = RetryPolicy(retries=0, task_timeout=1.0, backoff=0.001)


def _pick_campaign_plan(task_keys, job_keys):
    """First seed failing 25-55 tasks in all three ways, few timeout waits.

    Each predicted ``timeout`` costs one full ``task_timeout`` wait, so the
    scan bounds them to keep the suite fast; the bounds also pin the
    "roughly 20% of tasks fail" shape of the acceptance scenario.
    """
    for seed in range(300):
        plan = FaultPlan(
            seed=seed,
            task_error_rate=0.015,
            task_timeout_rate=0.0025,
            task_crash_rate=0.010,
            persistent=True,
            hang_seconds=2.5,
        )
        predicted = _predict_failures(plan, task_keys, job_keys)
        kinds = set(predicted.values())
        timeouts = sum(1 for kind in predicted.values() if kind == "timeout")
        if 25 <= len(predicted) <= 55 and timeouts <= 2 and kinds == {
            "error",
            "timeout",
            "crash",
        }:
            return plan, predicted
    raise AssertionError("no campaign seed matches the scenario shape")


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """Run the whole scenario once; the tests below assert its pieces."""
    parameters = _campaign_parameters(CAMPAIGN_TASKS, seed=77)
    tasks = random_ensemble_tasks(parameters, include_multi_port=False)
    assert len(tasks) == CAMPAIGN_TASKS
    task_keys, job_keys = _task_labels_and_job_keys(tasks)
    plan, predicted = _pick_campaign_plan(task_keys, job_keys)

    # Fault-free reference, through the same supervised per-task path.
    baseline_pipe = EvaluationPipeline(
        cache=ResultCache(tmp_path_factory.mktemp("baseline")),
        keep_going=True,
        retry_policy=RetryPolicy(retries=0),
    )
    baseline = baseline_pipe.evaluate("random", parameters, include_multi_port=False)
    assert not baseline_pipe.failures
    per_task = [baseline_pipe.cache.get(key) for key in task_keys]
    assert all(records for records in per_task)

    # The faulted campaign.
    cache_dir = tmp_path_factory.mktemp("campaign")
    pipe = EvaluationPipeline(
        cache=ResultCache(cache_dir),
        keep_going=True,
        retry_policy=_CAMPAIGN_POLICY,
    )
    with inject_faults(plan):
        survivors = pipe.evaluate("random", parameters, include_multi_port=False)

    return SimpleNamespace(
        parameters=parameters,
        tasks=tasks,
        task_keys=task_keys,
        plan=plan,
        predicted=predicted,
        baseline=baseline,
        per_task=per_task,
        survivors=survivors,
        failures=list(pipe.failures),
        cache_dir=cache_dir,
    )


class TestCampaignUnderFaults:
    def test_scenario_shape(self, campaign):
        fraction = len(campaign.predicted) / CAMPAIGN_TASKS
        assert 0.1 <= fraction <= 0.3  # "roughly 20% of tasks fail"

    def test_campaign_completes_with_every_failure_accounted(self, campaign):
        assert len(campaign.failures) == len(campaign.predicted)
        failed_keys = {
            ensemble_task_key(record.task) for record in campaign.failures
        }
        assert failed_keys == {
            campaign.task_keys[i] for i in campaign.predicted
        }
        by_key = {
            ensemble_task_key(record.task): record for record in campaign.failures
        }
        for index, kind in campaign.predicted.items():
            record = by_key[campaign.task_keys[index]]
            assert record.failure.error_type == _SERIAL_ERROR_TYPES[kind]
            assert record.failure.attempts == 1  # retries=0: one attempt
            assert record.failure.label == campaign.task_keys[index]
            assert record.describe()  # human-readable line renders

    def test_error_records_survive_serialization(self, campaign):
        from repro.experiments import TaskErrorRecord

        for record in campaign.failures:
            assert TaskErrorRecord.from_dict(record.to_dict()) == record

    def test_survivors_bit_identical_to_fault_free_run(self, campaign):
        expected = [
            payload
            for i, records in enumerate(campaign.per_task)
            if i not in campaign.predicted
            for payload in _payloads(records)
        ]
        assert _payloads(campaign.survivors) == expected

    def test_resume_recomputes_only_the_failed_tasks(self, campaign):
        counting = CountingSerial()
        resume = EvaluationPipeline(
            cache=ResultCache(campaign.cache_dir),
            executor=counting,
            keep_going=True,
            retry_policy=_CAMPAIGN_POLICY,
        )
        records = resume.evaluate(
            "random", campaign.parameters, include_multi_port=False
        )
        assert counting.calls == len(campaign.predicted)
        assert not resume.failures
        assert _payloads(records) == _payloads(campaign.baseline)

        # The completed campaign wrote its campaign-level entry: a third
        # invocation replays it without executing a single task.
        replay_counting = CountingSerial()
        replay = EvaluationPipeline(
            cache=ResultCache(campaign.cache_dir),
            executor=replay_counting,
            keep_going=True,
            retry_policy=_CAMPAIGN_POLICY,
        )
        replayed = replay.evaluate(
            "random", campaign.parameters, include_multi_port=False
        )
        assert replay_counting.calls == 0
        assert _payloads(replayed) == _payloads(campaign.baseline)

    def test_partial_campaign_is_never_replayed_as_complete(self, campaign):
        # The faulted run must not have written the campaign-level entry:
        # a fresh pipeline over the same disk cache still sees per-task
        # entries only (it would recompute the failed tasks).
        from repro.experiments.pipeline import ensemble_cache_key

        key = ensemble_cache_key(
            "random", campaign.parameters, include_multi_port=False
        )
        probe = ResultCache(campaign.cache_dir)
        # Reading straight from disk (fresh memory): per-task entries hit,
        # the campaign entry was deferred until the resume run above.
        assert probe.get(campaign.task_keys[0]) is not None


class TestCampaignOverProcessPool:
    def test_worker_crashes_break_and_recover_the_pool(self, tmp_path):
        parameters = _campaign_parameters(12, seed=99)
        tasks = random_ensemble_tasks(parameters, include_multi_port=False)
        task_keys, job_keys = _task_labels_and_job_keys(tasks)
        plan = predicted = None
        for seed in range(200):
            candidate = FaultPlan(seed=seed, task_crash_rate=0.04, persistent=True)
            hits = _predict_failures(candidate, task_keys, job_keys)
            if 2 <= len(hits) <= 3:
                plan, predicted = candidate, hits
                break
        assert plan is not None, "no crash-plan seed matches"

        baseline_pipe = EvaluationPipeline(
            cache=ResultCache(tmp_path / "baseline"),
            keep_going=True,
            retry_policy=RetryPolicy(retries=0),
        )
        baseline = baseline_pipe.evaluate(
            "random", parameters, include_multi_port=False
        )
        per_task = [baseline_pipe.cache.get(key) for key in task_keys]

        pipe = EvaluationPipeline(
            executor=ProcessExecutor(2),
            cache=ResultCache(tmp_path / "campaign"),
            keep_going=True,
            retry_policy=RetryPolicy(retries=0, backoff=0.001),
        )
        with inject_faults(plan):
            survivors = pipe.evaluate("random", parameters, include_multi_port=False)

        assert len(pipe.failures) == len(predicted)
        assert {ensemble_task_key(r.task) for r in pipe.failures} == {
            task_keys[i] for i in predicted
        }
        # Crashes surface as the pool break (WorkerCrashError) or, after
        # the pool has degraded to in-process execution, as the downgraded
        # InjectedCrashError — both structured, both accounted.
        assert all(
            record.failure.error_type in ("WorkerCrashError", "InjectedCrashError")
            for record in pipe.failures
        )
        expected = [
            payload
            for i, records in enumerate(per_task)
            if i not in predicted
            for payload in _payloads(records)
        ]
        assert _payloads(survivors) == expected
        assert not baseline_pipe.failures
        assert _payloads(baseline) == [
            payload for records in per_task for payload in _payloads(records)
        ]


# --------------------------------------------------------------------------- #
# Concurrent same-session access under injection
# --------------------------------------------------------------------------- #
class TestConcurrentSessionUnderFaults:
    """Threaded ``solve_many`` calls racing on one shared ``Session``.

    The solve service assumes a session's caches tolerate concurrent
    requests; here several threads push overlapping batches — with
    persistent injected faults — through one session and every thread must
    observe the exact fate ``classify_task`` predicts, with survivor
    metrics bit-identical to a fresh fault-free serial session.
    """

    def _threaded_jobs(self):
        return [
            Job.broadcast(
                PlatformRecipe.of(
                    "random", num_nodes=7, density=0.35, seed=200 + seed
                ),
                source=0,
            )
            for seed in range(6)
        ]

    def _mixed_plan(self, jobs):
        keys = [job.cache_key() for job in jobs]
        for seed in range(300):
            plan = FaultPlan(seed=seed, task_error_rate=0.35, persistent=True)
            fates = [classify_task(plan, key) for key in keys]
            if "error" in fates and fates.count("ok") >= 2:
                return plan
        raise AssertionError("no seed produced a mixed-fate plan")

    def test_threads_racing_one_session_agree_with_prediction(self):
        import threading

        jobs = self._threaded_jobs()
        plan = self._mixed_plan(jobs)
        expected = {
            job.cache_key(): classify_task(plan, job.cache_key())
            for job in jobs
        }
        session = Session(retry_policy=RetryPolicy(retries=0, backoff=0.001))
        # Overlapping batches: every thread shares some jobs with its
        # neighbours, so the memo caches are hit from several threads at
        # once for the same keys.
        batches = [jobs[0:4], jobs[2:6], jobs[::2], jobs[1::2], list(jobs)]
        outcomes: dict[int, list] = {}
        errors: list = []

        def run(index, batch):
            try:
                outcomes[index] = session.solve_many(batch, on_error="collect")
            except BaseException as error:  # pragma: no cover - fail loudly
                errors.append(error)

        threads = [
            threading.Thread(target=run, args=(i, batch))
            for i, batch in enumerate(batches)
        ]
        # One plan activation around all threads: the plan travels in a
        # process-wide environment variable, so per-thread contexts would
        # race on it.
        with inject_faults(plan):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        assert not errors
        assert sorted(outcomes) == list(range(len(batches)))

        reference = Session()
        reference_metrics = {
            job.cache_key(): reference.solve(job)
            .materialize()
            .deterministic_metrics()
            for job in jobs
            if expected[job.cache_key()] == "ok"
        }
        for index, batch in enumerate(batches):
            for job, result in zip(batch, outcomes[index]):
                fate = expected[job.cache_key()]
                if fate == "error":
                    assert isinstance(result, FailedResult), (index, fate)
                    assert result.error.error_type == "InjectedWorkerError"
                else:
                    assert result.ok, (index, job.describe())
                    assert (
                        result.deterministic_metrics()
                        == reference_metrics[job.cache_key()]
                    )


# --------------------------------------------------------------------------- #
# Campaign interruption (SIGTERM/SIGINT)
# --------------------------------------------------------------------------- #
class TestCampaignInterrupt:
    def test_sigterm_flushes_cache_and_writes_manifest(self, tmp_path):
        import json
        import signal as _signal

        from repro.experiments.pipeline import INTERRUPT_MANIFEST

        parameters = _campaign_parameters(configurations=4, seed=11)
        tasks = random_ensemble_tasks(parameters, include_multi_port=False)
        labels = [ensemble_task_key(task) for task in tasks]
        cache = ResultCache(tmp_path / "campaign")
        pipe = EvaluationPipeline(
            cache=cache, retry_policy=RetryPolicy(retries=0, backoff=0.001)
        )
        # SIGTERM the process right after the first task's write-through;
        # the campaign guard must convert it to a clean SystemExit *after*
        # finishing the write and leaving a manifest behind.
        original_put = cache.put
        fired = []

        def put_then_sigterm(key, rows):
            original_put(key, rows)
            if not fired:
                fired.append(True)
                os.kill(os.getpid(), _signal.SIGTERM)

        cache.put = put_then_sigterm
        before = _signal.getsignal(_signal.SIGTERM)
        with pytest.raises(SystemExit) as excinfo:
            pipe.evaluate("random", parameters, include_multi_port=False)
        assert excinfo.value.code == 128 + _signal.SIGTERM
        # The handler is restored after the guarded region.
        assert _signal.getsignal(_signal.SIGTERM) == before

        manifest_path = tmp_path / "campaign" / INTERRUPT_MANIFEST
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["reason"] == "SystemExit"
        assert manifest["exit_code"] == 128 + _signal.SIGTERM
        assert manifest["tasks_total"] == len(tasks)
        assert manifest["tasks_completed"] == 1
        assert set(manifest["pending_labels"]) == set(labels[1:])
        assert manifest["failures"] == []

        # The completed task survived the interrupt on disk ...
        cache.put = original_put
        assert cache.get(labels[0]) is not None
        # ... so a re-run resumes: only the pending tasks are recomputed.
        resumed = EvaluationPipeline(
            cache=ResultCache(tmp_path / "campaign"),
            retry_policy=RetryPolicy(retries=0, backoff=0.001),
        )
        records = resumed.evaluate("random", parameters, include_multi_port=False)
        fresh = EvaluationPipeline(
            cache=ResultCache(tmp_path / "fresh")
        ).evaluate("random", parameters, include_multi_port=False)
        assert _payloads(records) == _payloads(fresh)

    def test_keyboard_interrupt_also_writes_manifest(self, tmp_path):
        import json

        from repro.experiments.pipeline import INTERRUPT_MANIFEST

        parameters = _campaign_parameters(configurations=3, seed=12)
        cache = ResultCache(tmp_path / "campaign")
        pipe = EvaluationPipeline(
            cache=cache, retry_policy=RetryPolicy(retries=0, backoff=0.001)
        )
        original_put = cache.put
        fired = []

        def put_then_interrupt(key, rows):
            original_put(key, rows)
            if not fired:
                fired.append(True)
                raise KeyboardInterrupt

        cache.put = put_then_interrupt
        with pytest.raises(KeyboardInterrupt):
            pipe.evaluate("random", parameters, include_multi_port=False)
        manifest = json.loads(
            (tmp_path / "campaign" / INTERRUPT_MANIFEST).read_text()
        )
        assert manifest["reason"] == "KeyboardInterrupt"
        assert manifest["exit_code"] is None
        assert manifest["tasks_completed"] == 1
