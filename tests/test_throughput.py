"""Tests for the steady-state throughput analysis."""

from __future__ import annotations

import pytest

from repro import (
    BroadcastTree,
    MultiPortModel,
    OnePortModel,
    analyze_bottleneck,
    node_periods,
    tree_throughput,
)


@pytest.fixture
def star_tree(star_platform):
    return BroadcastTree.from_edges(
        star_platform, 0, [(0, leaf) for leaf in range(1, 5)], name="star"
    )


@pytest.fixture
def chain_tree(line_platform):
    return BroadcastTree.from_edges(line_platform, 0, [(0, 1), (1, 2), (2, 3)])


class TestOnePortThroughput:
    def test_star_throughput_is_inverse_out_degree(self, star_tree):
        # Hub sends 4 slices of time 2 per period -> period 8.
        report = tree_throughput(star_tree)
        assert report.period == pytest.approx(8.0)
        assert report.throughput == pytest.approx(1 / 8.0)
        assert report.bottleneck == 0
        assert report.model == "one-port"

    def test_chain_throughput_is_inverse_max_edge(self, chain_tree):
        report = tree_throughput(chain_tree)
        assert report.period == pytest.approx(3.0)
        # Both the sender (2) and the receiver (3) of the slowest link are
        # saturated; either is a valid bottleneck report.
        assert report.bottleneck in (2, 3)

    def test_node_periods_chain(self, chain_tree):
        periods = node_periods(chain_tree)
        assert periods[0] == pytest.approx(1.0)
        assert periods[1] == pytest.approx(2.0)
        assert periods[2] == pytest.approx(3.0)
        # The last node only receives; its period is its incoming time.
        assert periods[3] == pytest.approx(3.0)

    def test_routed_tree_counts_multiplicities(self, line_platform):
        tree = BroadcastTree.from_logical_transfers(
            line_platform, 0, [(0, 1), (0, 2), (0, 3)]
        )
        report = tree_throughput(tree)
        # Edge (1, 2) carries two copies of every slice (for nodes 2 and 3):
        # node 1's outgoing occupation is 2 * 2.0 = 4; node 2 sends one copy
        # on (2, 3): 3.0; node 0 sends three copies on (0, 1): 3.0.
        assert report.periods[1] == pytest.approx(4.0)
        assert report.period == pytest.approx(4.0)
        # Node 1 (two copies out) and node 2 (two copies in) are both
        # saturated at period 4.
        assert report.bottleneck in (1, 2)

    def test_relative_to(self, chain_tree):
        report = tree_throughput(chain_tree)
        assert report.relative_to(report.throughput) == pytest.approx(1.0)
        assert report.relative_to(2 * report.throughput) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            report.relative_to(0.0)


class TestMultiPortThroughput:
    def test_star_multi_port_uses_send_overhead(self, star_platform):
        tree = BroadcastTree.from_edges(
            star_platform, 0, [(0, leaf) for leaf in range(1, 5)]
        )
        model = MultiPortModel(send_fraction=0.8)
        report = tree_throughput(tree, model)
        # send_0 = 0.8 * 2.0 = 1.6 -> period = max(4 * 1.6, 2.0) = 6.4.
        assert report.period == pytest.approx(6.4)
        assert report.model == "multi-port"

    def test_multi_port_never_slower_than_one_port(self, small_random_platform):
        from repro import build_broadcast_tree

        tree = build_broadcast_tree(small_random_platform, 0, "grow-tree")
        one = tree_throughput(tree, OnePortModel()).throughput
        multi = tree_throughput(tree, MultiPortModel()).throughput
        assert multi >= one - 1e-12


class TestBottleneck:
    def test_bottleneck_report(self, star_tree):
        report = analyze_bottleneck(star_tree)
        assert report.node == 0
        assert report.period == pytest.approx(8.0)
        assert report.num_children == 4
        assert set(report.children) == {1, 2, 3, 4}
        assert report.most_relieving_child() in {1, 2, 3, 4}
        # Leaves have full slack.
        assert report.slack[1] == pytest.approx(8.0 - 2.0)

    def test_bottleneck_slack_nonnegative(self, chain_tree):
        report = analyze_bottleneck(chain_tree)
        assert all(slack >= -1e-12 for slack in report.slack.values())
        assert report.slack[report.node] == pytest.approx(0.0)

    def test_leaf_bottleneck_has_no_child(self, line_platform):
        tree = BroadcastTree.from_edges(line_platform, 0, [(0, 1), (1, 2), (2, 3)])
        report = analyze_bottleneck(tree)
        # The deterministic tie-break reports the receiving leaf (node 3) of
        # the slowest link; a pure receiver has no child to shed.
        assert report.node == 3
        assert report.most_relieving_child() is None
        assert report.period == pytest.approx(3.0)
