"""Tests for the experiment harness (config, runner, figures, tables, checks)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import generate_random_platform
from repro.exceptions import ExperimentError
from repro.experiments import (
    PaperParameters,
    check_figure4_shape,
    check_figure5_shape,
    check_table3_shape,
    clear_ensemble_cache,
    evaluate_platform,
    figure_4a,
    figure_4b,
    figure_5,
    filter_records,
    parameters_from_environment,
    random_ensemble_records,
    render_report,
    scaled_parameters,
    table_3,
    tiers_ensemble_records,
)
from repro.experiments.config import SCALE_ENV_VAR


@pytest.fixture(scope="module")
def tiny_parameters() -> PaperParameters:
    """A drastically reduced parameter set keeping tests fast (few LP solves)."""
    return replace(
        scaled_parameters(0.1),
        node_counts=(8, 12),
        densities=(0.15, 0.3),
        configurations_per_point=1,
        tiers_sizes=(30,),
        tiers_platforms_per_size=2,
        seed=7,
    )


@pytest.fixture(scope="module")
def tiny_random_records(tiny_parameters):
    return random_ensemble_records(tiny_parameters)


@pytest.fixture(scope="module")
def tiny_tiers_records(tiny_parameters):
    return tiers_ensemble_records(tiny_parameters)


class TestConfig:
    def test_paper_defaults_match_table2(self):
        params = PaperParameters()
        assert params.node_counts == (10, 20, 30, 40, 50)
        assert params.densities == (0.04, 0.08, 0.12, 0.16, 0.20)
        assert params.configurations_per_point == 10
        assert params.tiers_sizes == (30, 65)
        assert params.tiers_platforms_per_size == 100
        assert params.total_random_platforms == 250
        assert params.total_tiers_platforms == 200
        assert "seed" in params.describe()

    def test_scaled_parameters(self):
        small = scaled_parameters(0.1)
        assert small.configurations_per_point == 1
        assert small.tiers_platforms_per_size == 10
        assert small.node_counts == PaperParameters().node_counts
        with pytest.raises(ExperimentError):
            scaled_parameters(0.0)

    def test_parameters_from_environment(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        default = parameters_from_environment(default_scale=0.2)
        assert default.configurations_per_point == 2
        monkeypatch.setenv(SCALE_ENV_VAR, "1.0")
        full = parameters_from_environment()
        assert full.configurations_per_point == 10
        monkeypatch.setenv(SCALE_ENV_VAR, "not-a-float")
        with pytest.raises(ExperimentError):
            parameters_from_environment()

    def test_invalid_parameters(self):
        with pytest.raises(ExperimentError):
            PaperParameters(node_counts=())
        with pytest.raises(ExperimentError):
            PaperParameters(densities=(0.0,))
        with pytest.raises(ExperimentError):
            PaperParameters(configurations_per_point=0)


class TestRunner:
    def test_evaluate_platform_records(self):
        platform = generate_random_platform(num_nodes=10, density=0.3, seed=1)
        evaluation = evaluate_platform(platform, 0)
        assert evaluation.optimal_throughput > 0
        heuristics = {r.heuristic for r in evaluation.records}
        assert "grow-tree" in heuristics and "multiport-grow-tree" in heuristics
        for record in evaluation.records:
            assert record.throughput > 0
            assert record.optimal_throughput == pytest.approx(evaluation.optimal_throughput)
            if record.model == "one-port":
                assert record.relative_performance <= 1.0 + 1e-6
            assert record.lp_seconds >= 0 and record.build_seconds >= 0

    def test_random_ensemble_shape_and_cache(self, tiny_parameters, tiny_random_records):
        expected_platforms = (
            len(tiny_parameters.node_counts)
            * len(tiny_parameters.densities)
            * tiny_parameters.configurations_per_point
        )
        heuristic_count = 6 + 5  # one-port + multi-port sets
        assert len(tiny_random_records) == expected_platforms * heuristic_count
        # Cached: a second call returns the same object.
        assert random_ensemble_records(tiny_parameters) is tiny_random_records

    def test_tiers_ensemble(self, tiny_parameters, tiny_tiers_records):
        assert all(r.generator == "tiers" for r in tiny_tiers_records)
        assert all(r.model == "one-port" for r in tiny_tiers_records)
        sizes = {r.num_nodes for r in tiny_tiers_records}
        assert sizes == {30}

    def test_filter_records(self, tiny_random_records):
        one_port = filter_records(tiny_random_records, model="one-port")
        assert all(r.model == "one-port" for r in one_port)
        grow = filter_records(tiny_random_records, heuristic="grow-tree", num_nodes=8)
        assert all(r.heuristic == "grow-tree" and r.num_nodes == 8 for r in grow)
        with pytest.raises(ExperimentError):
            filter_records(tiny_random_records, heuristic="no-such-heuristic")

    def test_clear_cache(self, tiny_parameters, tiny_random_records):
        clear_ensemble_cache()
        # After clearing, a fresh (but equal) evaluation is produced.
        fresh = random_ensemble_records(tiny_parameters)
        assert fresh is not tiny_random_records
        assert len(fresh) == len(tiny_random_records)


class TestFiguresAndTables:
    def test_figure_4a(self, tiny_parameters, tiny_random_records):
        figure = figure_4a(tiny_parameters, records=tiny_random_records)
        assert figure.x_values == (8, 12)
        assert set(figure.series) == {
            "Prune Platform Simple",
            "Prune Platform Degree",
            "Grow Tree",
            "LP Grow Tree",
            "LP Prune",
            "Binomial Tree",
        }
        for values in figure.series.values():
            assert len(values) == 2
            assert all(0 < v <= 1.0 + 1e-9 for v in values)
        assert "nodes" in figure.to_table()
        assert "legend" in figure.to_chart()
        assert "Figure 4(a)" in figure.render()

    def test_figure_4b_buckets_densities(self, tiny_parameters, tiny_random_records):
        figure = figure_4b(tiny_parameters, records=tiny_random_records)
        assert figure.x_values == (0.15, 0.3)

    def test_figure_5_allows_ratios_above_one(self, tiny_parameters, tiny_random_records):
        figure = figure_5(tiny_parameters, records=tiny_random_records)
        assert set(figure.series) == {
            "Multi Port Prune Degree",
            "Multi Port Grow Tree",
            "LP Grow Tree",
            "LP Prune",
            "Binomial Tree",
        }
        assert max(max(v) for v in figure.series.values()) > 0.8

    def test_figure_series_lookup_error(self, tiny_parameters, tiny_random_records):
        figure = figure_4a(tiny_parameters, records=tiny_random_records)
        with pytest.raises(ExperimentError):
            figure.series_for("No Such Heuristic")

    def test_table_3(self, tiny_parameters, tiny_tiers_records):
        table = table_3(tiny_parameters, records=tiny_tiers_records)
        assert table.rows == (30,)
        assert "Grow Tree" in table.columns
        cell = table.cell(30, "Grow Tree")
        assert 0 < cell.mean <= 1.0 + 1e-9
        assert "+/-" in table.to_text()
        with pytest.raises(ExperimentError):
            table.cell(30, "No Such Heuristic")

    def test_shape_checks_and_report(self, tiny_parameters, tiny_random_records, tiny_tiers_records):
        figure4a = figure_4a(tiny_parameters, records=tiny_random_records)
        figure5 = figure_5(tiny_parameters, records=tiny_random_records)
        table = table_3(tiny_parameters, records=tiny_tiers_records)
        checks = [
            check_figure4_shape(figure4a),
            check_figure5_shape(figure5),
            check_table3_shape(table),
        ]
        # The tiny ensemble is small but the qualitative ordering must hold.
        for check in checks:
            assert check.ok, check.render()
            check.raise_on_failure()
        report = render_report([figure4a, figure5], [table], checks)
        assert "Figure 4(a)" in report and "Table 3" in report and "[ok]" in report

    def test_empty_records_rejected(self, tiny_parameters):
        with pytest.raises(ExperimentError):
            figure_4a(tiny_parameters, records=[])
        with pytest.raises(ExperimentError):
            table_3(tiny_parameters, records=[])
