"""Tests for the steady-state LP formulation, solver and LP-based heuristics."""

from __future__ import annotations

import pytest

from repro import (
    LPCommunicationGraphPruning,
    LPGrowTree,
    LPSolutionCache,
    build_broadcast_tree,
    build_steady_state_lp,
    optimal_throughput,
    solve_steady_state_lp,
    tree_throughput,
)
from repro.exceptions import HeuristicError, LPError
from tests.conftest import assert_spanning_tree


class TestFormulation:
    def test_dimensions(self, small_random_platform):
        data = build_steady_state_lp(small_random_platform, 0)
        edges = small_random_platform.num_links
        destinations = small_random_platform.num_nodes - 1
        assert data.index.num_edges == edges
        assert data.index.num_destinations == destinations
        assert data.index.num_variables == edges * destinations + edges + 1
        assert data.a_eq.shape[1] == data.index.num_variables
        assert data.a_ub.shape[1] == data.index.num_variables
        assert data.num_constraints == data.a_eq.shape[0] + data.a_ub.shape[0]

    def test_column_layout(self, line_platform):
        data = build_steady_state_lp(line_platform, 0)
        index = data.index
        assert index.flow(0, 0) == 0
        assert index.messages(0) == index.num_edges * index.num_destinations
        assert index.throughput == index.num_variables - 1

    def test_objective_maximises_throughput(self, line_platform):
        data = build_steady_state_lp(line_platform, 0)
        assert data.objective[data.index.throughput] == -1.0
        assert (data.objective[: data.index.throughput] == 0).all()

    def test_rejects_bad_source(self, line_platform):
        with pytest.raises(LPError):
            build_steady_state_lp(line_platform, 99)

    def test_rejects_single_node(self):
        from repro import Platform

        platform = Platform()
        platform.add_node(0)
        with pytest.raises(LPError):
            build_steady_state_lp(platform, 0)


class TestSolver:
    def test_star_optimum_known(self, star_platform):
        # The hub must send every slice to each of the 4 leaves; all sends
        # serialise on its output port: TP* = 1 / (4 * 2).
        solution = solve_steady_state_lp(star_platform, 0)
        assert solution.throughput == pytest.approx(1 / 8.0, rel=1e-6)

    def test_chain_optimum_known(self, line_platform):
        # The slowest link (time 3) limits the chain: TP* = 1/3.
        solution = solve_steady_state_lp(line_platform, 0)
        assert solution.throughput == pytest.approx(1 / 3.0, rel=1e-6)

    def test_complete_uniform_optimum(self, complete_uniform_platform):
        # A Hamiltonian chain achieves throughput 1 and the source cannot
        # inject faster than one slice per time unit on a unit-time link...
        solution = solve_steady_state_lp(complete_uniform_platform, 0)
        assert solution.throughput >= 1.0 - 1e-6

    def test_lp_upper_bounds_every_single_tree(self, medium_random_platform):
        optimum = optimal_throughput(medium_random_platform, 0)
        for heuristic in ("prune-simple", "prune-degree", "grow-tree", "binomial"):
            tree = build_broadcast_tree(medium_random_platform, 0, heuristic)
            assert tree_throughput(tree).throughput <= optimum + 1e-6

    def test_edge_occupation_constraints_hold(self, small_random_platform):
        solution = solve_steady_state_lp(small_random_platform, 0)
        for (u, v), messages in solution.edge_messages.items():
            occupation = messages * small_random_platform.transfer_time(u, v)
            assert occupation <= 1.0 + 1e-6

    def test_node_occupation_constraints_hold(self, small_random_platform):
        solution = solve_steady_state_lp(small_random_platform, 0)
        for node, (t_in, t_out) in solution.objective_per_node.items():
            assert t_in <= 1.0 + 1e-6
            assert t_out <= 1.0 + 1e-6

    def test_source_out_occupation_saturated(self, small_random_platform):
        # At the optimum the source's output port is the canonical bottleneck
        # candidate; it must at least carry TP slices on its fastest link.
        solution = solve_steady_state_lp(small_random_platform, 0)
        fastest = small_random_platform.min_out_transfer_time(0)
        assert solution.throughput <= 1.0 / fastest + 1e-6

    def test_solution_helpers(self, small_random_platform):
        solution = solve_steady_state_lp(small_random_platform, 0)
        busiest = solution.busiest_edges(3)
        assert len(busiest) == 3
        assert busiest[0][1] >= busiest[1][1] >= busiest[2][1]
        assert set(solution.used_edges()).issubset(set(small_random_platform.edges))
        assert "TP=" in solution.summary()
        assert solution.edge_weight(0, 99) == 0.0

    def test_cache_solves_once(self, small_random_platform):
        cache = LPSolutionCache()
        first = cache.solve(small_random_platform, 0)
        second = cache.solve(small_random_platform, 0)
        assert first is second
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_flows_respect_tolerance(self, line_platform):
        solution = solve_steady_state_lp(line_platform, 0)
        assert all(value > 0 for value in solution.flows.values())


@pytest.mark.parametrize("heuristic_cls", [LPCommunicationGraphPruning, LPGrowTree])
class TestLPHeuristics:
    def test_produces_spanning_tree(self, heuristic_cls, small_random_platform):
        tree = heuristic_cls().build(small_random_platform, 0)
        assert_spanning_tree(tree, small_random_platform, 0)

    def test_accepts_precomputed_solution(self, heuristic_cls, small_random_platform):
        solution = solve_steady_state_lp(small_random_platform, 0)
        tree = heuristic_cls().build(small_random_platform, 0, lp_solution=solution)
        assert_spanning_tree(tree, small_random_platform, 0)

    def test_rejects_solution_for_other_source(self, heuristic_cls, small_random_platform):
        solution = solve_steady_state_lp(small_random_platform, 1)
        with pytest.raises(HeuristicError):
            heuristic_cls().build(small_random_platform, 0, lp_solution=solution)

    def test_close_to_optimum_on_small_platform(self, heuristic_cls, small_random_platform):
        optimum = optimal_throughput(small_random_platform, 0)
        tree = heuristic_cls().build(small_random_platform, 0)
        ratio = tree_throughput(tree).throughput / optimum
        assert 0.4 <= ratio <= 1.0 + 1e-9

    def test_deterministic(self, heuristic_cls, small_random_platform):
        solution = solve_steady_state_lp(small_random_platform, 0)
        a = heuristic_cls().build(small_random_platform, 0, lp_solution=solution)
        b = heuristic_cls().build(small_random_platform, 0, lp_solution=solution)
        assert a.same_structure_as(b)
