"""Tests for the BroadcastTree structure."""

from __future__ import annotations

import pytest

from repro import BroadcastTree
from repro.exceptions import NotASpanningTreeError, TreeError


@pytest.fixture
def line_tree(line_platform):
    return BroadcastTree.from_edges(line_platform, 0, [(0, 1), (1, 2), (2, 3)], name="chain")


@pytest.fixture
def star_tree(star_platform):
    return BroadcastTree.from_edges(
        star_platform, 0, [(0, leaf) for leaf in range(1, 5)], name="star"
    )


class TestConstruction:
    def test_from_edges_builds_parent_map(self, line_tree):
        assert line_tree.parent(0) is None
        assert line_tree.parent(1) == 0
        assert line_tree.parent(3) == 2
        assert line_tree.children(1) == [2]
        assert line_tree.children(3) == []

    def test_from_edges_rejects_double_parent(self, line_platform):
        with pytest.raises(NotASpanningTreeError):
            BroadcastTree.from_edges(line_platform, 0, [(0, 1), (1, 2), (2, 3), (1, 3)])

    def test_from_edges_rejects_edge_into_source(self, line_platform):
        with pytest.raises(NotASpanningTreeError):
            BroadcastTree.from_edges(line_platform, 0, [(0, 1), (1, 2), (2, 3), (1, 0)])

    def test_missing_node_detected(self, line_platform):
        with pytest.raises(NotASpanningTreeError):
            BroadcastTree.from_edges(line_platform, 0, [(0, 1), (1, 2)])

    def test_unknown_node_detected(self, line_platform):
        with pytest.raises(NotASpanningTreeError):
            BroadcastTree(platform=line_platform, source=0, parents={1: 0, 2: 1, 3: 2, 9: 0})

    def test_cycle_detected(self, line_platform):
        with pytest.raises(NotASpanningTreeError):
            BroadcastTree(platform=line_platform, source=0, parents={1: 2, 2: 1, 3: 2})

    def test_missing_platform_edge_detected(self, line_platform):
        with pytest.raises(TreeError):
            BroadcastTree(platform=line_platform, source=0, parents={1: 0, 2: 1, 3: 1})

    def test_source_with_parent_rejected(self, line_platform):
        with pytest.raises(NotASpanningTreeError):
            BroadcastTree(
                platform=line_platform, source=0, parents={0: 1, 1: 0, 2: 1, 3: 2}
            )

    def test_unknown_source_rejected(self, line_platform):
        with pytest.raises(TreeError):
            BroadcastTree(platform=line_platform, source=99, parents={})


class TestRoutes:
    def test_default_route_is_direct(self, line_tree):
        assert line_tree.route(0, 1) == ((0, 1),)
        assert line_tree.is_direct

    def test_route_of_non_edge_rejected(self, line_tree):
        with pytest.raises(TreeError):
            line_tree.route(0, 3)

    def test_from_logical_transfers_routes_missing_edges(self, line_platform):
        # (0, 3) is not a platform edge: it must be routed along the chain.
        tree = BroadcastTree.from_logical_transfers(
            line_platform, 0, [(0, 1), (0, 2), (0, 3)]
        )
        assert tree.route(0, 1) == ((0, 1),)
        assert tree.route(0, 2) == ((0, 1), (1, 2))
        assert tree.route(0, 3) == ((0, 1), (1, 2), (2, 3))
        assert not tree.is_direct

    def test_invalid_route_rejected(self, line_platform):
        with pytest.raises(TreeError):
            BroadcastTree(
                platform=line_platform,
                source=0,
                parents={1: 0, 2: 1, 3: 2},
                routes={(0, 1): ((0, 2), (2, 1))},  # not a platform path from 0 to 1
            )

    def test_non_contiguous_route_rejected(self, line_platform):
        with pytest.raises(TreeError):
            BroadcastTree(
                platform=line_platform,
                source=0,
                parents={1: 0, 2: 1, 3: 2},
                routes={(2, 3): ((2, 1), (2, 3))},
            )

    def test_physical_multiplicities(self, line_platform):
        tree = BroadcastTree.from_logical_transfers(
            line_platform, 0, [(0, 1), (0, 2), (0, 3)]
        )
        counts = tree.physical_edge_multiplicities()
        assert counts[(0, 1)] == 3
        assert counts[(1, 2)] == 2
        assert counts[(2, 3)] == 1


class TestStructureQueries:
    def test_depth_and_height(self, line_tree, star_tree):
        assert line_tree.depth(0) == 0
        assert line_tree.depth(3) == 3
        assert line_tree.height == 3
        assert star_tree.height == 1

    def test_leaves(self, line_tree, star_tree):
        assert line_tree.leaves() == [3]
        assert sorted(star_tree.leaves()) == [1, 2, 3, 4]

    def test_bfs_order_starts_at_source(self, line_tree):
        order = line_tree.bfs_order()
        assert order[0] == 0
        assert set(order) == {0, 1, 2, 3}
        assert len(order) == 4

    def test_subtree_nodes(self, line_tree):
        assert line_tree.subtree_nodes(2) == {2, 3}
        assert line_tree.subtree_nodes(0) == {0, 1, 2, 3}

    def test_iteration_and_len(self, line_tree):
        assert len(line_tree) == 4
        assert list(line_tree) == line_tree.bfs_order()

    def test_outgoing_and_incoming_transfers(self, line_tree):
        out = line_tree.outgoing_transfers(1)
        assert out == [(2, 2.0, 1)]
        incoming = line_tree.incoming_transfers(1)
        assert incoming == [(0, 1.0, 1)]
        assert line_tree.weighted_out_degree(1) == pytest.approx(2.0)

    def test_to_networkx_weights_sum_routes(self, line_platform):
        tree = BroadcastTree.from_logical_transfers(line_platform, 0, [(0, 1), (1, 2), (1, 3)])
        graph = tree.to_networkx()
        assert graph.edges[1, 3]["weight"] == pytest.approx(2.0 + 3.0)

    def test_describe_and_repr(self, line_tree):
        text = line_tree.describe()
        assert "chain" in text
        assert "3" in text
        assert "BroadcastTree" in repr(line_tree)

    def test_same_structure_as(self, line_platform):
        a = BroadcastTree.from_edges(line_platform, 0, [(0, 1), (1, 2), (2, 3)])
        b = BroadcastTree.from_edges(line_platform, 0, [(0, 1), (1, 2), (2, 3)])
        assert a.same_structure_as(b)
        c = BroadcastTree.from_logical_transfers(line_platform, 0, [(0, 1), (1, 2), (1, 3)])
        assert not a.same_structure_as(c)

    def test_unknown_node_queries(self, line_tree):
        with pytest.raises(TreeError):
            line_tree.parent(99)
        with pytest.raises(TreeError):
            line_tree.children(99)
