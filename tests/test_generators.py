"""Tests for all platform generators (random, Tiers, structured, clusters)."""

from __future__ import annotations

import pytest

from repro import (
    RandomPlatformConfig,
    TiersConfig,
    generate_cluster_platform,
    generate_complete_platform,
    generate_grid_platform,
    generate_hypercube_platform,
    generate_random_platform,
    generate_ring_platform,
    generate_star_platform,
    generate_tiers_platform,
)
from repro.exceptions import PlatformError
from repro.platform.generators.clusters import ClusterConfig
from repro.platform.generators.tiers import TIERS_PRESETS


class TestRandomGenerator:
    def test_node_count_and_feasibility(self):
        platform = generate_random_platform(num_nodes=25, density=0.1, seed=3)
        assert platform.num_nodes == 25
        for node in platform.nodes:
            assert platform.is_broadcast_feasible(node)

    def test_density_is_respected_when_feasible(self):
        platform = generate_random_platform(num_nodes=30, density=0.2, seed=4)
        # Achieved density may exceed the request slightly because of the
        # connectivity floor, but for 0.2 on 30 nodes it should be close.
        assert platform.density == pytest.approx(0.2, abs=0.02)

    def test_low_density_clamped_to_connectivity(self):
        platform = generate_random_platform(num_nodes=10, density=0.04, seed=5)
        # 10 nodes need at least 9 undirected links to stay connected.
        assert platform.num_links >= 2 * 9

    def test_determinism(self):
        a = generate_random_platform(num_nodes=15, density=0.15, seed=77)
        b = generate_random_platform(num_nodes=15, density=0.15, seed=77)
        assert a.edges == b.edges
        assert a.edge_weights() == b.edge_weights()

    def test_different_seeds_differ(self):
        a = generate_random_platform(num_nodes=15, density=0.15, seed=1)
        b = generate_random_platform(num_nodes=15, density=0.15, seed=2)
        assert a.edge_weights() != b.edge_weights()

    def test_symmetric_links(self):
        platform = generate_random_platform(num_nodes=12, density=0.3, seed=8)
        for u, v in platform.edges:
            assert platform.has_link(v, u)
            assert platform.transfer_time(u, v) == pytest.approx(
                platform.transfer_time(v, u)
            )

    def test_send_overhead_stamped(self):
        config = RandomPlatformConfig(num_nodes=10, density=0.2, send_fraction=0.8)
        platform = generate_random_platform(config=config, seed=6)
        for node in platform.nodes:
            record = platform.node(node)
            assert record.send_overhead == pytest.approx(
                0.8 * platform.min_out_transfer_time(node)
            )

    def test_transfer_times_positive_and_reasonable(self):
        platform = generate_random_platform(num_nodes=20, density=0.2, seed=9)
        times = list(platform.edge_weights().values())
        assert all(t > 0 for t in times)
        # Mean rate 100 MB/s, slice 100 MB -> times around 1 time unit.
        assert 0.3 < sum(times) / len(times) < 3.0

    def test_config_and_kwargs_conflict(self):
        with pytest.raises(PlatformError):
            generate_random_platform(
                num_nodes=5, config=RandomPlatformConfig(num_nodes=5)
            )

    def test_invalid_parameters(self):
        with pytest.raises(PlatformError):
            RandomPlatformConfig(num_nodes=1)
        with pytest.raises(PlatformError):
            RandomPlatformConfig(density=0.0)
        with pytest.raises(PlatformError):
            RandomPlatformConfig(density=1.5)
        with pytest.raises(PlatformError):
            RandomPlatformConfig(send_fraction=0.0)


class TestTiersGenerator:
    @pytest.mark.parametrize("size", sorted(TIERS_PRESETS))
    def test_presets_have_exact_size(self, size):
        platform = generate_tiers_platform(size, seed=0)
        assert platform.num_nodes == size
        assert platform.is_broadcast_feasible(0)

    @pytest.mark.parametrize("size", sorted(TIERS_PRESETS))
    def test_preset_density_in_paper_range(self, size):
        platform = generate_tiers_platform(size, seed=1)
        assert 0.03 <= platform.density <= 0.2

    def test_levels_are_labelled(self):
        platform = generate_tiers_platform(30, seed=2)
        levels = {platform.node(n).level for n in platform.nodes}
        assert levels == {"wan", "man", "lan"}

    def test_determinism(self):
        a = generate_tiers_platform(30, seed=3)
        b = generate_tiers_platform(30, seed=3)
        assert a.edges == b.edges
        assert a.edge_weights() == b.edge_weights()

    def test_custom_config(self):
        config = TiersConfig(num_wan=2, mans_per_wan=1, man_size=2, lans_per_man=1, lan_size=2)
        platform = generate_tiers_platform(config=config, seed=4)
        assert platform.num_nodes == config.total_nodes
        assert platform.is_broadcast_feasible(0)

    def test_unknown_preset_rejected(self):
        with pytest.raises(PlatformError):
            generate_tiers_platform(42)

    def test_config_and_size_conflict(self):
        with pytest.raises(PlatformError):
            generate_tiers_platform(30, config=TiersConfig())

    def test_invalid_config(self):
        with pytest.raises(PlatformError):
            TiersConfig(num_wan=0)
        with pytest.raises(PlatformError):
            TiersConfig(wan_redundancy=-1)


class TestStructuredGenerators:
    def test_star(self):
        platform = generate_star_platform(6, uniform_time=2.0)
        assert platform.num_nodes == 6
        assert platform.num_links == 2 * 5
        assert platform.out_degree(0) == 5
        assert all(platform.out_degree(leaf) == 1 for leaf in range(1, 6))

    def test_ring(self):
        platform = generate_ring_platform(5, uniform_time=1.0)
        assert platform.num_links == 2 * 5
        assert all(platform.out_degree(n) == 2 for n in platform.nodes)

    def test_grid(self):
        platform = generate_grid_platform(3, 4, uniform_time=1.0)
        assert platform.num_nodes == 12
        # 2 * (3*3 + 2*4) undirected links, times two directions.
        assert platform.num_links == 2 * (3 * 3 + 2 * 4)

    def test_hypercube(self):
        platform = generate_hypercube_platform(3, uniform_time=1.0)
        assert platform.num_nodes == 8
        assert all(platform.out_degree(n) == 3 for n in platform.nodes)

    def test_complete(self):
        platform = generate_complete_platform(5, uniform_time=1.0)
        assert platform.num_links == 5 * 4

    def test_invalid_sizes(self):
        with pytest.raises(PlatformError):
            generate_star_platform(1)
        with pytest.raises(PlatformError):
            generate_grid_platform(1, 1)
        with pytest.raises(PlatformError):
            generate_hypercube_platform(0)

    def test_heterogeneous_sampling_is_deterministic(self):
        a = generate_ring_platform(6, seed=5)
        b = generate_ring_platform(6, seed=5)
        assert a.edge_weights() == b.edge_weights()


class TestClusterGenerator:
    def test_structure(self):
        platform = generate_cluster_platform(num_clusters=3, cluster_size=4, seed=1)
        assert platform.num_nodes == 12
        assert platform.is_broadcast_feasible(0)
        clusters = {platform.node(n).cluster for n in platform.nodes}
        assert clusters == {0, 1, 2}

    def test_intra_links_faster_than_backbone(self):
        platform = generate_cluster_platform(
            num_clusters=2,
            cluster_size=3,
            intra_time_mean=1.0,
            intra_deviation=0.0,
            inter_time_mean=20.0,
            inter_deviation=0.0,
            seed=2,
        )
        intra = platform.transfer_time(0, 1)
        backbone = platform.transfer_time(0, 3)
        assert backbone > 5 * intra

    def test_backbone_complete_option(self):
        ring = generate_cluster_platform(num_clusters=4, cluster_size=2, seed=3)
        full = generate_cluster_platform(
            num_clusters=4, cluster_size=2, backbone_complete=True, seed=3
        )
        assert full.num_links > ring.num_links

    def test_invalid_config(self):
        with pytest.raises(PlatformError):
            ClusterConfig(num_clusters=0)
        with pytest.raises(PlatformError):
            ClusterConfig(num_clusters=1, cluster_size=1)
        with pytest.raises(PlatformError):
            generate_cluster_platform(ClusterConfig(), num_clusters=3)
