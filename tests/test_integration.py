"""End-to-end integration tests across the whole library.

These tests exercise the complete pipeline the paper describes: generate a
platform, compute the LP reference, build trees with every heuristic,
analyse them, simulate them and check the qualitative conclusions of the
paper hold on the reproduced stack.
"""

from __future__ import annotations

import pytest

from repro import (
    MultiPortModel,
    PAPER_MULTI_PORT_HEURISTICS,
    PAPER_ONE_PORT_HEURISTICS,
    build_broadcast_tree,
    generate_cluster_platform,
    generate_random_platform,
    generate_tiers_platform,
    improve_tree,
    pipelined_makespan,
    solve_steady_state_lp,
    tree_throughput,
)
from repro.simulation import simulate_broadcast
from repro.sta import atomic_makespan
from tests.conftest import assert_spanning_tree


@pytest.fixture(scope="module")
def platform():
    return generate_random_platform(num_nodes=18, density=0.18, seed=2024)


@pytest.fixture(scope="module")
def lp_solution(platform):
    return solve_steady_state_lp(platform, 0)


class TestFullPipelineOnePort:
    def test_all_heuristics_bounded_by_lp(self, platform, lp_solution):
        for name in PAPER_ONE_PORT_HEURISTICS:
            tree = build_broadcast_tree(platform, 0, name, lp_solution=lp_solution)  \
                if name.startswith("lp-") else build_broadcast_tree(platform, 0, name)
            assert_spanning_tree(tree, platform, 0)
            ratio = tree_throughput(tree).throughput / lp_solution.throughput
            assert 0.0 < ratio <= 1.0 + 1e-9

    def test_advanced_heuristics_beat_binomial(self, platform, lp_solution):
        binomial = tree_throughput(build_broadcast_tree(platform, 0, "binomial")).throughput
        for name in ("prune-degree", "grow-tree", "lp-prune", "lp-grow-tree"):
            kwargs = {"lp_solution": lp_solution} if name.startswith("lp-") else {}
            throughput = tree_throughput(
                build_broadcast_tree(platform, 0, name, **kwargs)
            ).throughput
            assert throughput > binomial

    def test_analysis_simulation_and_makespan_agree(self, platform):
        tree = build_broadcast_tree(platform, 0, "grow-tree")
        analysis = tree_throughput(tree)
        simulation = simulate_broadcast(tree, num_slices=50, record_trace=False)
        makespan = pipelined_makespan(tree, 50)
        assert simulation.relative_error() < 0.02
        assert simulation.makespan == pytest.approx(makespan.makespan, rel=1e-6)
        assert makespan.steady_state_period == pytest.approx(analysis.period)

    def test_local_search_stays_within_lp_bound(self, platform, lp_solution):
        tree = build_broadcast_tree(platform, 0, "grow-tree")
        improved = improve_tree(tree)
        assert (
            tree_throughput(improved).throughput
            <= lp_solution.throughput * (1 + 1e-9)
        )


class TestFullPipelineMultiPort:
    def test_multi_port_heuristics_run_and_rank(self, platform, lp_solution):
        model = MultiPortModel()
        throughputs = {}
        for name in PAPER_MULTI_PORT_HEURISTICS:
            kwargs = {"lp_solution": lp_solution} if name.startswith("lp-") else {}
            tree = build_broadcast_tree(
                platform, 0, name, model=model, strict_model=False, **kwargs
            )
            throughputs[name] = tree_throughput(tree, model).throughput
        assert throughputs["multiport-grow-tree"] >= throughputs["binomial"]
        assert throughputs["multiport-prune-degree"] >= throughputs["binomial"]
        # The multi-port model can beat the one-port LP optimum.
        assert max(throughputs.values()) > 0


class TestRealisticScenarios:
    def test_tiers_platform_end_to_end(self):
        platform = generate_tiers_platform(30, seed=5)
        solution = solve_steady_state_lp(platform, 0)
        advanced = tree_throughput(
            build_broadcast_tree(platform, 0, "grow-tree")
        ).throughput
        binomial = tree_throughput(
            build_broadcast_tree(platform, 0, "binomial")
        ).throughput
        assert advanced / solution.throughput > 0.5
        assert binomial / solution.throughput < 0.5

    def test_cluster_platform_crosses_backbone_once_per_cluster(self):
        platform = generate_cluster_platform(
            num_clusters=3, cluster_size=5, inter_time_mean=15.0, seed=9
        )
        tree = build_broadcast_tree(platform, 0, "grow-tree")
        # Count tree edges whose endpoints live in different clusters.
        cross = [
            (u, v)
            for u, v in tree.logical_edges
            if platform.node(u).cluster != platform.node(v).cluster
        ]
        # A good tree uses exactly num_clusters - 1 inter-cluster edges.
        assert len(cross) == 2

    def test_sta_and_stp_objectives_differ(self):
        platform = generate_random_platform(num_nodes=16, density=0.25, seed=31)
        stp_tree = build_broadcast_tree(platform, 0, "grow-tree")
        from repro.sta import FastestEdgeFirst

        sta_tree = FastestEdgeFirst().build(platform, 0)
        # The STA tree targets a single-message makespan, the STP tree
        # targets throughput; each should (weakly) win on its own metric.
        assert atomic_makespan(sta_tree, 1.0) <= atomic_makespan(stp_tree, 1.0) + 1e-9
        assert (
            tree_throughput(stp_tree).throughput
            >= tree_throughput(sta_tree).throughput - 1e-9
        )

    def test_source_choice_does_not_break_anything(self):
        platform = generate_random_platform(num_nodes=14, density=0.2, seed=77)
        for source in platform.nodes[:5]:
            solution = solve_steady_state_lp(platform, source)
            tree = build_broadcast_tree(platform, source, "prune-degree")
            ratio = tree_throughput(tree).throughput / solution.throughput
            assert 0.3 < ratio <= 1.0 + 1e-9
