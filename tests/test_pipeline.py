"""Tests of the batched ensemble-evaluation pipeline (executors + cache)."""

from __future__ import annotations

import json
import threading
import warnings
from dataclasses import fields, replace

import pytest

from repro import _version
from repro.runtime import ResultCache as RuntimeResultCache
from repro.exceptions import ExperimentError
from repro.experiments import (
    EvaluationPipeline,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    ensemble_cache_key,
    random_ensemble_tasks,
    run_ensemble_task,
    scaled_parameters,
    tiers_ensemble_tasks,
)
from repro.experiments.evaluation import EvaluationRecord
from repro.experiments.figures import figure_4a
from repro.cli import build_parser


@pytest.fixture(scope="module")
def tiny_parameters():
    return replace(
        scaled_parameters(0.1),
        node_counts=(6, 9),
        densities=(0.25, 0.4),
        configurations_per_point=1,
        tiers_sizes=(30,),
        tiers_platforms_per_size=2,
        seed=13,
    )


@pytest.fixture(scope="module")
def serial_records(tiny_parameters):
    return EvaluationPipeline(jobs=1).evaluate("random", tiny_parameters)


class TestTasks:
    def test_task_fanout_shape(self, tiny_parameters):
        tasks = random_ensemble_tasks(tiny_parameters)
        assert len(tasks) == tiny_parameters.total_random_platforms
        assert len({t.seed for t in tasks}) == len(tasks)  # independent streams
        tiers = tiers_ensemble_tasks(tiny_parameters)
        assert len(tiers) == tiny_parameters.total_tiers_platforms
        assert all(not t.include_multi_port for t in tiers)

    def test_task_seeds_are_order_free(self, tiny_parameters):
        # Rebuilding the task list must reproduce identical tasks.
        assert random_ensemble_tasks(tiny_parameters) == random_ensemble_tasks(
            tiny_parameters
        )

    def test_run_single_task(self, tiny_parameters):
        task = random_ensemble_tasks(tiny_parameters)[0]
        records = run_ensemble_task(task)
        assert records and all(r.generator == "random" for r in records)

    def test_unknown_kind_rejected(self, tiny_parameters):
        with pytest.raises(ExperimentError):
            EvaluationPipeline().evaluate("no-such-kind", tiny_parameters)


class TestExecutorDeterminism:
    def test_serial_and_parallel_records_identical(self, tiny_parameters, serial_records):
        parallel = EvaluationPipeline(jobs=2).evaluate("random", tiny_parameters)
        assert [r.deterministic_payload() for r in serial_records] == [
            r.deterministic_payload() for r in parallel
        ]

    def test_figure_render_bit_identical(self, tiny_parameters, serial_records):
        parallel = EvaluationPipeline(executor=ProcessExecutor(2)).evaluate(
            "random", tiny_parameters
        )
        serial_render = figure_4a(tiny_parameters, records=serial_records).render()
        parallel_render = figure_4a(tiny_parameters, records=parallel).render()
        assert serial_render == parallel_render

    def test_warm_pool_records_identical(self, tiny_parameters, serial_records):
        with EvaluationPipeline(jobs=2, backend="warm-pool") as pipeline:
            warm = pipeline.evaluate("random", tiny_parameters)
        assert [r.deterministic_payload() for r in serial_records] == [
            r.deterministic_payload() for r in warm
        ]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            EvaluationPipeline(jobs=0)
        with pytest.raises(ExperimentError):
            ProcessExecutor(0)

    def test_executor_and_backend_are_mutually_exclusive(self):
        with pytest.raises(ExperimentError, match="not both"):
            EvaluationPipeline(executor=SerialExecutor(), backend="serial")

    def test_serial_executor_preserves_order(self):
        executor = SerialExecutor()
        assert list(executor.map(lambda x: [x], [3, 1, 2])) == [[3], [1], [2]]

    def test_serial_executor_is_lazy(self):
        seen: list[int] = []

        def record(x):
            seen.append(x)
            return [x]

        stream = SerialExecutor().map(record, [1, 2, 3])
        assert seen == []  # nothing ran yet: progress can interleave
        next(stream)
        assert seen == [1]


class TestCacheKey:
    def test_every_parameter_field_changes_the_key(self, tiny_parameters):
        base = ensemble_cache_key("random", tiny_parameters)
        overrides = {
            "node_counts": (5, 9),
            "densities": (0.3, 0.4),
            "configurations_per_point": 2,
            "rate_mean": 99.0,
            "rate_deviation": 21.0,
            "slice_size_mb": 50.0,
            "send_fraction": 0.7,
            "tiers_sizes": (30, 40),
            "tiers_platforms_per_size": 3,
            "source": 0,
            "seed": 14,
            "collective_nodes": 25,
            "collective_density": 0.25,
            "collective_target_counts": (3, 9),
            "collective_instances": 2,
            "dynamic_nodes": 12,
            "dynamic_density": 0.35,
            "dynamic_seeds": 3,
            "dynamic_horizon": 6,
            "dynamic_drift": 0.25,
            "dynamic_congestion": 0.3,
            "dynamic_churn": 0.1,
            "dynamic_threshold": 0.2,
            "dynamic_replan_cost": 0.1,
            "extra": {"note": "changed"},
        }
        assert set(overrides) == {f.name for f in fields(tiny_parameters)}
        for name, value in overrides.items():
            if getattr(tiny_parameters, name) == value:
                continue
            changed = replace(tiny_parameters, **{name: value})
            assert ensemble_cache_key("random", changed) != base, name

    def test_kind_and_model_change_the_key(self, tiny_parameters):
        base = ensemble_cache_key("random", tiny_parameters)
        assert ensemble_cache_key("tiers", tiny_parameters) != base
        assert (
            ensemble_cache_key("random", tiny_parameters, include_multi_port=False)
            != base
        )

    def test_library_version_changes_the_key(self, tiny_parameters, monkeypatch):
        base = ensemble_cache_key("random", tiny_parameters)
        monkeypatch.setattr(_version, "__version__", "999.0.0")
        assert ensemble_cache_key("random", tiny_parameters) != base


class TestResultCache:
    def _record(self) -> EvaluationRecord:
        return EvaluationRecord(
            generator="random",
            platform_name="p",
            num_nodes=6,
            density=0.25,
            instance_index=0,
            heuristic="grow-tree",
            model="one-port",
            throughput=0.5,
            optimal_throughput=1.0,
            relative_performance=0.5,
            build_seconds=0.0,
            lp_seconds=0.0,
        )

    def test_memory_level_returns_same_object(self, tmp_path):
        cache = ResultCache(tmp_path)
        records = [self._record()]
        cache.put("k", records)
        assert cache.get("k") is records

    def test_disk_roundtrip_across_instances(self, tmp_path):
        ResultCache(tmp_path).put("k", [self._record()])
        replayed = ResultCache(tmp_path).get("k")
        assert replayed is not None
        assert replayed[0] == self._record()

    def test_corrupted_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", [self._record()])
        entry = next(tmp_path.glob("ensemble-*.json"))
        entry.write_text("{ not json at all", encoding="utf-8")
        assert ResultCache(tmp_path).get("k") is None

    def test_entry_with_missing_fields_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", [self._record()])
        entry = next(tmp_path.glob("ensemble-*.json"))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        del payload["records"][0]["throughput"]
        entry.write_text(json.dumps(payload), encoding="utf-8")
        assert ResultCache(tmp_path).get("k") is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", [self._record()])
        entry = next(tmp_path.glob("ensemble-*.json"))
        other = tmp_path / "ensemble-other.json"
        entry.rename(other)
        assert ResultCache(tmp_path).get("other") is None

    def test_memory_hit_writes_through_to_empty_disk(self, tmp_path):
        shared: dict = {}
        ResultCache(memory=shared).put("k", [self._record()])
        # Same memory, disk level added later: the hit must persist the entry.
        with_disk = ResultCache(tmp_path, memory=shared)
        assert with_disk.get("k") is not None
        assert ResultCache(tmp_path).get("k") == [self._record()]

    def test_cache_dir_must_not_be_a_file(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("occupied", encoding="utf-8")
        with pytest.raises(ExperimentError):
            ResultCache(target)

    def test_memoryless_without_disk(self):
        cache = ResultCache()
        assert cache.get("missing") is None
        cache.put("k", [self._record()])
        cache.clear_memory()
        assert cache.get("k") is None


class TestCacheRobustness:
    """Failure modes of the two-level cache: corruption, bad dirs, races."""

    def _rows(self, value: int = 1) -> list[dict]:
        return [{"value": value}]

    def test_truncated_entry_is_quarantined(self, tmp_path):
        RuntimeResultCache(tmp_path, version="v").put("k", self._rows())
        entry = tmp_path / "ensemble-k.json"
        entry.write_text(entry.read_text(encoding="utf-8")[:10], encoding="utf-8")
        assert RuntimeResultCache(tmp_path, version="v").get("k") is None
        # The corrupted file is moved aside, never re-parsed on later runs.
        assert not entry.exists()
        assert entry.with_suffix(".corrupt").exists()
        assert RuntimeResultCache(tmp_path, version="v").get("k") is None

    def test_key_mismatch_is_quarantined(self, tmp_path):
        RuntimeResultCache(tmp_path, version="v").put("k", self._rows())
        entry = tmp_path / "ensemble-k.json"
        imposter = tmp_path / "ensemble-other.json"
        entry.rename(imposter)
        assert RuntimeResultCache(tmp_path, version="v").get("other") is None
        assert not imposter.exists()
        assert imposter.with_suffix(".corrupt").exists()

    def test_other_version_entry_is_a_miss_not_corruption(self, tmp_path):
        RuntimeResultCache(tmp_path, version="1.0").put("k", self._rows(1))
        entry = tmp_path / "ensemble-k.json"
        newer = RuntimeResultCache(tmp_path, version="2.0")
        assert newer.get("k") is None
        assert entry.exists()  # valid entry, just stale: not quarantined
        newer.put("k", self._rows(2))
        assert RuntimeResultCache(tmp_path, version="2.0").get("k") == self._rows(2)

    def test_unwritable_cache_dir_degrades_to_memory_with_one_warning(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("occupied", encoding="utf-8")
        # The directory cannot be created (its parent is a file), which is
        # only discovered on first write.
        cache = RuntimeResultCache(blocker / "cache", version="v")
        assert cache.disk_active
        with pytest.warns(RuntimeWarning, match="in-memory level only"):
            cache.put("k", self._rows())
        assert not cache.disk_active
        assert cache.get("k") == self._rows()  # memory level still serves
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # degraded exactly once: no rewarn
            cache.put("k2", self._rows(2))
        assert cache.get("k2") == self._rows(2)

    def test_concurrent_same_key_writers_leave_a_parsable_entry(self, tmp_path):
        written = [self._rows(i) for i in range(8)]
        barrier = threading.Barrier(len(written))

        def writer(rows: list[dict]) -> None:
            cache = RuntimeResultCache(tmp_path, version="v")
            barrier.wait()
            for _ in range(25):
                cache.put("k", rows)

        threads = [
            threading.Thread(target=writer, args=(rows,)) for rows in written
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = RuntimeResultCache(tmp_path, version="v").get("k")
        assert final in written  # atomic replace: one writer's rows, intact
        assert not list(tmp_path.glob("*.corrupt"))


class TestPipelineCacheIntegration:
    def test_disk_cache_replay_is_deterministic(self, tiny_parameters, tmp_path):
        first = EvaluationPipeline(cache_dir=tmp_path).evaluate("tiers", tiny_parameters)
        # A fresh pipeline (empty memory) replays the exact records from disk.
        replayed = EvaluationPipeline(cache_dir=tmp_path).evaluate(
            "tiers", tiny_parameters
        )
        assert [r.to_dict() for r in first] == [r.to_dict() for r in replayed]

    def test_version_bump_misses_disk_cache(self, tiny_parameters, tmp_path, monkeypatch):
        EvaluationPipeline(cache_dir=tmp_path).evaluate("tiers", tiny_parameters)
        assert len(list(tmp_path.glob("ensemble-*.json"))) == 1
        monkeypatch.setattr(_version, "__version__", "999.0.0")
        EvaluationPipeline(cache_dir=tmp_path).evaluate("tiers", tiny_parameters)
        assert len(list(tmp_path.glob("ensemble-*.json"))) == 2

    def test_parameter_change_misses_disk_cache(self, tiny_parameters, tmp_path):
        EvaluationPipeline(cache_dir=tmp_path).evaluate("tiers", tiny_parameters)
        changed = replace(tiny_parameters, seed=tiny_parameters.seed + 1)
        EvaluationPipeline(cache_dir=tmp_path).evaluate("tiers", changed)
        assert len(list(tmp_path.glob("ensemble-*.json"))) == 2

    def test_corrupted_pipeline_entry_recomputes(self, tiny_parameters, tmp_path):
        pipeline = EvaluationPipeline(cache_dir=tmp_path)
        first = pipeline.evaluate("tiers", tiny_parameters)
        entry = next(tmp_path.glob("ensemble-*.json"))
        entry.write_text("garbage", encoding="utf-8")
        fresh = EvaluationPipeline(cache_dir=tmp_path)
        recomputed = fresh.evaluate("tiers", tiny_parameters)
        assert [r.deterministic_payload() for r in recomputed] == [
            r.deterministic_payload() for r in first
        ]


class TestCLIFlags:
    def test_experiment_accepts_jobs_and_cache_dir(self):
        args = build_parser().parse_args(
            ["experiment", "--artefact", "table3", "--jobs", "4", "--cache-dir", "/tmp/c"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"

    def test_experiment_defaults_to_serial_no_cache(self):
        args = build_parser().parse_args(["experiment"])
        assert args.jobs == 1
        assert args.cache_dir is None
