"""Warm worker pool: shared-memory platforms, backends, lifecycle hygiene.

The contract under test (ROADMAP item 3):

* the pluggable backend registry (:func:`repro.runtime.make_executor`)
  selects the warm pool for ``jobs > 1`` — except on single-CPU hosts,
  where it warns and falls back to the batched serial path;
* :class:`repro.pool.WarmPoolExecutor` keeps long-lived workers, survives
  crashes by respawning within a budget, and carries fault plans per task;
* ``Session.solve_many`` over the pool is bit-identical to the serial
  batched path, with compiled platform arrays published once into
  ``multiprocessing.shared_memory`` and attached read-only by workers;
* **no shared segment ever outlives its owner** — clean shutdown, worker
  crashes, respawns and whole fault campaigns all leave ``/dev/shm``
  empty of this process's segments.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.api import FailedResult, Job, PlatformRecipe, RetryPolicy, Session
from repro.exceptions import ExperimentError, WorkerCrashError
from repro.faults import inject_faults
from repro.pool import WarmPoolExecutor, _crash_probe, _echo_probe, _sleep_probe
from repro.runtime import (
    SerialExecutor,
    SupervisedExecutor,
    available_backends,
    make_executor,
)
from repro.shm import (
    SEGMENT_PREFIX,
    SharedSegmentRegistry,
    attach_arrays,
    pack_arrays,
)

_SHM_DIR = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not _SHM_DIR.is_dir(), reason="needs a POSIX /dev/shm to observe segments"
)


def _own_segments() -> set[str]:
    """Names of this process's shared segments currently linked on disk."""
    prefix = f"{SEGMENT_PREFIX}_{os.getpid()}_"
    return {p.name for p in _SHM_DIR.glob(f"{SEGMENT_PREFIX}_*") if p.name.startswith(prefix)}


def _job(seed: int, *, num_nodes: int = 7, size: float | None = None) -> Job:
    return Job.broadcast(
        PlatformRecipe.of("random", num_nodes=num_nodes, density=0.35, seed=seed),
        source=0,
        size=size,
    )


def _deterministic(results) -> list:
    return [r.deterministic_metrics() for r in results]


# --------------------------------------------------------------------------- #
# Shared-memory primitives and the registry
# --------------------------------------------------------------------------- #
class TestSharedMemory:
    def test_pack_attach_round_trip_is_exact_and_read_only(self):
        arrays = {
            "a": np.arange(17, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 5),
            "c": np.array([[1, 2], [3, 4]], dtype=np.int32),
        }
        segment, layout = pack_arrays(arrays)
        try:
            for spec in layout["arrays"].values():
                assert spec["offset"] % 64 == 0  # cache-line aligned
            mapped, views = attach_arrays(segment.name, layout)
            try:
                for name, original in arrays.items():
                    np.testing.assert_array_equal(views[name], original)
                    assert not views[name].flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    views["a"][0] = 99
            finally:
                del views
                mapped.close()
        finally:
            segment.unlink()
            segment.close()

    def test_pack_rejects_empty_bundle(self):
        with pytest.raises(ExperimentError):
            pack_arrays({})

    def test_registry_memoizes_by_key(self):
        registry = SharedSegmentRegistry()
        arrays = {"x": np.arange(4.0)}
        name1, _ = registry.publish("k", arrays)
        name2, _ = registry.publish("k", arrays)
        assert name1 == name2
        assert registry.stats()["published"] == 1
        assert registry.stats()["hits"] == 1
        registry.close()

    def test_registry_refcount_pins_across_eviction(self):
        registry = SharedSegmentRegistry(max_segments=1)
        name_a, _ = registry.publish("a", {"x": np.arange(3.0)})
        registry.acquire("a")
        registry.publish("b", {"x": np.arange(3.0)})
        # "a" is pinned: the bound is exceeded rather than unlinking it.
        assert "a" in registry
        assert (_SHM_DIR / name_a).exists()
        registry.release("a")
        registry.publish("c", {"x": np.arange(3.0)})
        # Unpinned now: LRU eviction reclaims down toward the bound.
        assert "a" not in registry
        assert not (_SHM_DIR / name_a).exists()
        assert registry.stats()["evictions"] >= 1
        registry.close()

    def test_registry_close_unlinks_everything_and_is_final(self):
        registry = SharedSegmentRegistry()
        names = [
            registry.publish(key, {"x": np.arange(8.0)})[0] for key in ("a", "b")
        ]
        assert all((_SHM_DIR / name).exists() for name in names)
        registry.close()
        registry.close()  # idempotent
        assert not any((_SHM_DIR / name).exists() for name in names)
        with pytest.raises(ExperimentError):
            registry.publish("c", {"x": np.arange(2.0)})


# --------------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------------- #
class TestMakeExecutor:
    def test_registered_backends(self):
        assert {"serial", "process", "warm-pool"} <= set(available_backends())

    def test_jobs_one_defaults_to_serial(self):
        assert isinstance(make_executor(None, 1), SerialExecutor)

    def test_single_cpu_downgrades_with_warning(self, monkeypatch):
        import repro.runtime as runtime

        monkeypatch.setattr(runtime.os, "cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning, match="single CPU"):
            executor = make_executor(None, 4)
        assert isinstance(executor, SerialExecutor)

    def test_explicit_backend_bypasses_the_downgrade(self, monkeypatch):
        import repro.runtime as runtime

        monkeypatch.setattr(runtime.os, "cpu_count", lambda: 1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            executor = make_executor("warm-pool", 2)
        try:
            assert isinstance(executor, WarmPoolExecutor)
        finally:
            executor.close()

    def test_multi_cpu_auto_selects_the_warm_pool(self, monkeypatch):
        import repro.runtime as runtime

        monkeypatch.setattr(runtime.os, "cpu_count", lambda: 4)
        executor = make_executor(None, 2)
        try:
            assert isinstance(executor, WarmPoolExecutor)
        finally:
            executor.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExperimentError, match="warm-pool"):
            make_executor("no-such-backend", 2)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ExperimentError):
            make_executor(None, 0)


# --------------------------------------------------------------------------- #
# The executor itself
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def pool():
    executor = WarmPoolExecutor(2)
    yield executor
    executor.close()


class TestWarmPoolExecutor:
    def test_map_preserves_order(self, pool):
        assert list(pool.map(_echo_probe, list(range(8)))) == list(range(8))

    def test_workers_persist_across_maps(self, pool):
        list(pool.map(_echo_probe, [1, 2]))
        spawns = pool.spawns
        list(pool.map(_echo_probe, [3, 4]))
        assert pool.spawns == spawns  # no new processes for the second map

    def test_crash_surfaces_as_worker_crash_error_and_pool_recovers(self, pool):
        future = pool.submit(_crash_probe, 7, label="boom", fault_hook=False)
        with pytest.raises(WorkerCrashError, match="boom"):
            future.result(timeout=60)
        assert pool.crashes >= 1
        # Keep both slots fed until the crashed one picks up a task and
        # respawns transparently (which thread grabs which task is racy).
        deadline = time.monotonic() + 30
        while pool.respawns == 0 and time.monotonic() < deadline:
            assert list(pool.map(_echo_probe, [5, 6])) == [5, 6]
        assert pool.respawns >= 1

    def test_abandon_terminates_a_hung_worker(self, pool):
        future = pool.submit(_sleep_probe, 60.0, label="hang", fault_hook=False)
        deadline = time.monotonic() + 30
        while not future.running() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pool.abandon(future)
        with pytest.raises(WorkerCrashError):
            future.result(timeout=60)
        assert list(pool.map(_echo_probe, [6])) == [6]

    def test_fault_plan_travels_with_the_task(self, pool):
        # Warm workers pre-date this context, so env inheritance cannot
        # deliver the plan; submission must snapshot it per task.
        with inject_faults(seed=1, task_error_rate=1.0, persistent=True):
            future = pool.submit(_echo_probe, 1, label="faulted")
        with pytest.raises(Exception, match="injected worker fault"):
            future.result(timeout=60)
        # Outside the context the same submission is clean again.
        assert pool.submit(_echo_probe, 2, label="faulted").result(timeout=60) == 2

    def test_stats_shape(self, pool):
        stats = pool.stats()
        assert stats["pool_size"] == 2
        for key in ("alive", "spawns", "respawns", "crashes", "completed", "failed"):
            assert key in stats
        assert set(stats["shared_segments"]) == {
            "segments", "bytes", "published", "hits", "evictions",
        }

    def test_supervised_map_outcomes_over_the_pool(self, pool):
        supervisor = SupervisedExecutor(
            pool, RetryPolicy(retries=0, backoff=0.001), fault_hook=False
        )
        outcomes = list(supervisor.map_outcomes(_echo_probe, [10, 11, 12]))
        assert [o.value for o in outcomes] == [10, 11, 12]
        assert all(o.ok for o in outcomes)

    def test_respawn_budget_exhaustion_fails_closed(self):
        executor = WarmPoolExecutor(1, max_respawns=0)
        try:
            with pytest.raises(WorkerCrashError):
                executor.submit(_crash_probe, 1, fault_hook=False).result(timeout=60)
            # Budget 0: the dead slot cannot respawn, tasks fail closed.
            with pytest.raises(WorkerCrashError, match="respawn budget"):
                executor.submit(_echo_probe, 1, fault_hook=False).result(timeout=60)
            assert not executor.healthy
        finally:
            executor.close()


# --------------------------------------------------------------------------- #
# Session over the warm pool: identity, stats, async
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def serial_results():
    jobs = [_job(seed) for seed in range(4)] + [_job(0)]  # one dedupe twin
    with Session() as session:
        return jobs, _deterministic(session.solve_many(jobs))


class TestSessionOverWarmPool:
    def test_solve_many_bit_identical_to_serial(self, serial_results):
        jobs, expected = serial_results
        with Session(jobs=2, backend="warm-pool") as session:
            results = session.solve_many(jobs)
            assert _deterministic(results) == expected
            workers = session.cache_stats()["workers"]
        assert workers["backend"] == "warm-pool"
        assert workers["jobs"] == 2
        assert workers["groups_dispatched"] == 4  # one per distinct platform
        assert workers["jobs_shipped"] == 4  # the twin deduplicates away
        assert workers["pool"]["shared_segments"]["published"] == 4

    def test_executor_and_backend_are_mutually_exclusive(self):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError, match="not both"):
            Session(executor=SerialExecutor(), backend="warm-pool")

    def test_warm_workers_reuse_platform_state_across_batches(self):
        # One worker makes the reuse deterministic: every group of the
        # second batch lands on the worker that already holds the platform.
        with Session(jobs=1, backend="warm-pool") as session:
            session.solve_many([_job(seed) for seed in range(2)])
            assert session.cache_stats()["workers"]["warm_reuse_hits"] == 0
            session.solve_many([_job(seed, size=2.0) for seed in range(2)])
            workers = session.cache_stats()["workers"]
        assert workers["warm_reuse_hits"] == 2
        assert workers["shm_attached"] >= 2

    def test_collect_mode_turns_injected_failures_into_data(self):
        jobs = [_job(seed) for seed in range(2)]
        with Session(
            jobs=2,
            backend="warm-pool",
            retry_policy=RetryPolicy(retries=0, backoff=0.001),
        ) as session:
            with inject_faults(seed=3, task_error_rate=1.0, persistent=True):
                results = session.solve_many(jobs, on_error="collect")
            assert all(isinstance(r, FailedResult) for r in results)
            assert all(
                r.failure.error_type == "InjectedWorkerError" for r in results
            )

    def test_solve_many_async_matches_sync(self, serial_results):
        jobs, expected = serial_results
        with Session(jobs=2, backend="warm-pool") as session:
            handle = session.solve_many_async(jobs)
            assert handle.wait(timeout=120)
            assert handle.done()
            results = handle.result()
            assert results is handle.result()  # memoized
        assert _deterministic(results) == expected

    def test_async_handle_is_complete_on_non_pool_sessions(self, serial_results):
        jobs, expected = serial_results
        with Session() as session:
            handle = session.solve_many_async(jobs)
            assert handle.done()
            assert _deterministic(handle.result()) == expected


# --------------------------------------------------------------------------- #
# Shared-memory lifecycle: nothing leaks, ever
# --------------------------------------------------------------------------- #
class TestShmLifecycle:
    def test_clean_shutdown_unlinks_every_segment(self):
        before = _own_segments()
        session = Session(jobs=2, backend="warm-pool")
        session.solve_many([_job(seed) for seed in range(3)])
        assert len(session.executor.registry) == 3
        assert len(_own_segments() - before) == 3
        session.close()
        assert _own_segments() <= before

    def test_worker_crash_and_respawn_leak_nothing(self):
        before = _own_segments()
        session = Session(jobs=2, backend="warm-pool")
        session.solve_many([_job(0)])
        pool = session.executor
        with pytest.raises(WorkerCrashError):
            pool.submit(_crash_probe, 1, fault_hook=False).result(timeout=60)
        # The SIGKILLed worker dropped its mappings with the process; the
        # segment names live in the parent registry, untouched.
        assert len(pool.registry) == 1
        session.solve_many([_job(1)])  # respawned worker keeps working
        session.close()
        assert _own_segments() <= before

    def test_crash_fault_campaign_leaves_dev_shm_empty(self):
        """Persistent crash faults: failures land as data, segments do not leak."""
        before = _own_segments()
        jobs = [_job(seed) for seed in range(2)]
        session = Session(
            jobs=2,
            backend="warm-pool",
            retry_policy=RetryPolicy(retries=1, backoff=0.001),
        )
        with inject_faults(seed=5, task_crash_rate=1.0, persistent=True):
            results = session.solve_many(jobs, on_error="collect")
        assert all(isinstance(r, FailedResult) for r in results)
        # Every failure is structured: the group either died with its
        # worker (WorkerCrashError) or, once the pool degraded to an
        # in-process run, as the downgraded InjectedCrashError.
        assert all(
            r.failure.error_type in ("WorkerCrashError", "InjectedCrashError")
            for r in results
        )
        stats = session.cache_stats()["workers"]["pool"]
        assert stats["crashes"] >= 1
        session.close()
        assert _own_segments() <= before

    def test_abandoned_pool_is_finalized_by_gc(self):
        import gc

        before = _own_segments()
        executor = WarmPoolExecutor(1)
        name, _ = executor.registry.publish("k", {"x": np.arange(4.0)})
        assert (_SHM_DIR / name).exists()
        del executor  # no close(): the weakref finalizer must clean up
        gc.collect()
        assert _own_segments() <= before


# --------------------------------------------------------------------------- #
# Service surfacing
# --------------------------------------------------------------------------- #
class TestServiceWorkersBlock:
    def test_statz_surfaces_pool_stats_and_overlap(self):
        from repro.service import ServiceConfig, SolveService

        before = _own_segments()
        service = SolveService(
            ServiceConfig(jobs=2, backend="warm-pool", max_inflight_batches=2)
        ).start()
        try:
            service.pause()  # queue several requests into one loop round
            outcomes: dict[int, list] = {}

            def submit(i: int) -> None:
                outcomes[i] = service.submit([_job(i)], deadline_seconds=120)

            threads = [
                threading.Thread(target=submit, args=(i,)) for i in range(3)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.3)
            service.resume()
            for thread in threads:
                thread.join(timeout=120)
            assert all(not t.is_alive() for t in threads)
            assert all(result.ok for i in outcomes for result in outcomes[i])

            stats = service.stats()
            assert stats["counters"]["batches_overlapped"] >= 1
            workers = stats["caches"]["workers"]
            assert workers["backend"] == "warm-pool"
            assert workers["groups_dispatched"] >= 1
            assert workers["pool"]["pool_size"] == 2
        finally:
            service.stop()
        assert _own_segments() <= before
