"""Tests for the ``repro.api`` facade: Jobs, Sessions, lazy Results."""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.api import (
    JOB_FORMAT_VERSION,
    Job,
    PlatformRecipe,
    Result,
    Session,
)
from repro.collectives import CollectiveKind, CollectiveSpec
from repro.exceptions import (
    ConfigError,
    ExperimentError,
    PlatformError,
    ReproError,
)
from repro.lp.solver import solve_collective_lp
from repro.platform.generators.random_graph import generate_random_platform

RECIPE = PlatformRecipe.of("random", num_nodes=10, density=0.3, seed=3)


@pytest.fixture
def count_lp_solves(monkeypatch):
    """Count every actual LP solve (cache hits do not reach the solver)."""
    calls: list[tuple] = []

    def counting(*args, **kwargs):
        calls.append(args)
        return solve_collective_lp(*args, **kwargs)

    monkeypatch.setattr("repro.lp.solver.solve_collective_lp", counting)
    return calls


class TestJob:
    def test_json_round_trip_recipe(self):
        job = Job.broadcast(RECIPE, source=0, heuristic="lp-prune", simulate=True)
        restored = Job.from_json(job.to_json())
        assert restored == job
        assert restored.cache_key() == job.cache_key()
        assert isinstance(restored.platform, PlatformRecipe)
        assert restored.platform.params == RECIPE.params

    def test_json_round_trip_inline_platform(self):
        platform = generate_random_platform(num_nodes=8, density=0.4, seed=1)
        job = Job.broadcast(platform, source=0)
        restored = Job.from_json(job.to_json())
        assert restored == job
        assert restored.platform.name == platform.name
        assert restored.platform.num_nodes == platform.num_nodes

    @pytest.mark.parametrize(
        "kind", ["broadcast", "multicast", "scatter", "reduce", "gather"]
    )
    def test_json_round_trip_every_collective_kind(self, kind):
        targets = (1, 3, 5) if kind == "multicast" else None
        job = Job.of_collective(RECIPE, kind, source=0, targets=targets)
        restored = Job.from_json(job.to_json())
        assert restored == job
        assert restored.collective.kind is CollectiveKind(kind)
        assert restored.collective.targets == targets

    def test_payload_is_version_stamped(self):
        payload = Job.broadcast(RECIPE).canonical_payload()
        assert payload["format_version"] == JOB_FORMAT_VERSION
        with pytest.raises(ConfigError):
            Job.from_dict({**payload, "format_version": 999})

    def test_identity_ignores_platform_representation(self):
        # Equal descriptions are equal jobs whichever process built them.
        a = Job.broadcast(RECIPE, heuristic="binomial")
        b = Job.broadcast(
            PlatformRecipe.of("random", num_nodes=10, density=0.3, seed=3),
            heuristic="binomial",
        )
        assert a == b and hash(a) == hash(b)
        assert a != a.but(heuristic="grow-tree")
        assert a.tree_key() == a.but(num_slices=99, simulate=True).tree_key()

    def test_canonical_payload_copy_is_independent(self):
        """Mutating a returned payload must not corrupt the job's identity."""
        platform = generate_random_platform(num_nodes=8, density=0.4, seed=1)
        job = Job.broadcast(platform)
        key = job.cache_key()
        derived = job.canonical_payload()
        derived["collective"]["source"] = 5
        derived["platform"]["inline"]["name"] = "tampered"
        assert job.cache_key() == key
        assert Job.from_json(job.to_json()) == job

    def test_recipe_is_hashable_and_immutable(self):
        import pickle

        twin = PlatformRecipe.of("random", num_nodes=10, density=0.3, seed=3)
        assert hash(RECIPE) == hash(twin)
        assert {RECIPE, twin} == {RECIPE}
        with pytest.raises(TypeError):
            RECIPE.params["seed"] = 99
        assert pickle.loads(pickle.dumps(RECIPE)) == RECIPE

    def test_validation(self):
        with pytest.raises(ConfigError):
            Job.broadcast(RECIPE, model="two-port")
        with pytest.raises(ConfigError):
            Job.broadcast(RECIPE, num_slices=0)
        with pytest.raises(ConfigError):
            Job.broadcast(RECIPE, send_fraction=0.0)
        with pytest.raises(ConfigError):
            Job("not-a-platform", CollectiveSpec.broadcast(0))
        with pytest.raises(ConfigError):
            Job(RECIPE, "not-a-spec")
        with pytest.raises(ConfigError):
            PlatformRecipe.of("no-such-generator", num_nodes=4)


class TestSession:
    def test_second_solve_does_no_lp_resolve(self, count_lp_solves):
        session = Session()
        job = Job.broadcast(RECIPE, heuristic="lp-grow-tree")
        first = session.solve(job)
        assert first.relative_performance <= 1.0 + 1e-9
        assert len(count_lp_solves) == 1
        # Same job again (fresh object): nothing reaches the solver.
        again = session.solve(Job.from_json(job.to_json()))
        assert again.materialize().lp_bound == first.lp_bound
        assert len(count_lp_solves) == 1

    def test_lp_shared_across_solve_solve_many_and_cli(self, count_lp_solves, capsys):
        """One LP solve serves solve(), solve_many() and the CLI path."""
        session = Session()
        args = cli.build_parser().parse_args(
            ["tree", "--nodes", "10", "--density", "0.3", "--seed", "3", "--compare-lp"]
        )
        job = cli.job_from_args(args)
        session.solve(job).materialize()
        assert len(count_lp_solves) == 1
        session.solve_many([job, job.but(heuristic="binomial")])
        assert len(count_lp_solves) == 1
        code = cli.main(
            ["tree", "--nodes", "10", "--density", "0.3", "--seed", "3", "--compare-lp"],
            session=session,
        )
        assert code == 0
        assert "relative performance" in capsys.readouterr().out
        assert len(count_lp_solves) == 1

    def test_solve_many_matches_sequential_solve(self):
        jobs = [
            Job.broadcast(RECIPE, heuristic=name, simulate=True, num_slices=20)
            for name in ("grow-tree", "prune-degree", "binomial", "lp-prune")
        ]
        batched = Session().solve_many(jobs)
        sequential = [Session().solve(job).materialize() for job in jobs]
        assert [r.deterministic_metrics() for r in batched] == [
            r.deterministic_metrics() for r in sequential
        ]

    def test_solve_many_process_executor_matches_serial(self):
        jobs = [
            Job.broadcast(RECIPE, heuristic=name)
            for name in ("grow-tree", "binomial")
        ]
        parallel = Session(jobs=2).solve_many(jobs)
        serial = Session().solve_many(jobs)
        assert [r.deterministic_metrics() for r in parallel] == [
            r.deterministic_metrics() for r in serial
        ]

    def test_solve_many_warm_pool_matches_serial(self):
        jobs = [
            Job.broadcast(RECIPE, heuristic=name)
            for name in ("grow-tree", "binomial")
        ]
        with Session(jobs=2, backend="warm-pool") as session:
            warm = session.solve_many(jobs)
        serial = Session().solve_many(jobs)
        assert [r.deterministic_metrics() for r in warm] == [
            r.deterministic_metrics() for r in serial
        ]

    def test_solve_many_dispatches_duplicate_jobs_once(self):
        """Equal jobs in one batch ship to the executor exactly once."""

        class RecordingExecutor:
            jobs = 2

            def __init__(self):
                self.batches = []

            def map(self, function, tasks):
                self.batches.append(list(tasks))
                return [function(task) for task in tasks]

        executor = RecordingExecutor()
        session = Session(executor=executor)
        job = Job.broadcast(RECIPE)
        results = session.solve_many([job, Job.from_json(job.to_json()), job])
        assert len(executor.batches) == 1 and len(executor.batches[0]) == 1
        assert all(r.is_materialized() for r in results)
        metrics = [r.deterministic_metrics() for r in results]
        assert metrics[0] == metrics[1] == metrics[2]

    def test_process_dispatch_groups_jobs_by_platform(self):
        """One platform's jobs ship as one task: its LP solves in one worker."""
        from repro.runtime import ProcessExecutor

        class RecordingPool(ProcessExecutor):
            def __init__(self):
                super().__init__(2)
                self.tasks = []

            def map(self, function, tasks):
                # Supervision wraps tasks as (index, payload) pairs; the
                # payload dict carries each group's jobs plus the policy.
                self.tasks.append([len(payload["jobs"]) for _, payload in tasks])
                return [function(task) for task in tasks]

        pool = RecordingPool()
        session = Session(executor=pool)
        other = PlatformRecipe.of("random", num_nodes=8, density=0.4, seed=5)
        jobs = [
            Job.broadcast(recipe, heuristic=name)
            for recipe in (RECIPE, other)
            for name in ("grow-tree", "binomial")
        ]
        results = session.solve_many(jobs)
        assert pool.tasks == [[2, 2]]
        assert all(r.is_materialized() for r in results)
        session = Session()
        a = session.solve(Job.broadcast(RECIPE))
        b = session.solve(Job.broadcast(RECIPE, heuristic="binomial"))
        assert a.platform is b.platform
        inline = generate_random_platform(num_nodes=8, density=0.4, seed=2)
        c = session.solve(Job.broadcast(inline))
        assert c.platform is inline

    def test_solve_many_returns_results_in_input_job_order(self):
        """Fan-out order survives dedupe, platform grouping and batching.

        The batch mixes platforms, models, duplicates and simulate flags in
        a deliberately shuffled order; ``results[i]`` must still answer
        ``jobs[i]`` exactly, and each must match its own sequential solve.
        """
        other = PlatformRecipe.of("random", num_nodes=8, density=0.4, seed=11)
        jobs = [
            Job.broadcast(other, heuristic="binomial"),
            Job.broadcast(RECIPE, heuristic="grow-tree", simulate=True, num_slices=20),
            Job.broadcast(RECIPE, heuristic="multiport-grow-tree", model="multi-port"),
            Job.broadcast(other, heuristic="grow-tree", simulate=True, num_slices=20),
            Job.broadcast(RECIPE, heuristic="grow-tree", simulate=True, num_slices=20),
            Job.broadcast(RECIPE, heuristic="prune-degree"),
            Job.broadcast(other, heuristic="binomial"),
        ]
        results = Session().solve_many(jobs)
        assert len(results) == len(jobs)
        assert [r.job for r in results] == jobs
        sequential = [Session().solve(job).materialize() for job in jobs]
        assert [r.deterministic_metrics() for r in results] == [
            r.deterministic_metrics() for r in sequential
        ]

    def test_solve_many_ensemble_batches_match_sequential(self):
        """Jobs batched into one ensemble sweep == fresh per-job sessions."""
        recipes = [
            PlatformRecipe.of("random", num_nodes=n, density=0.4, seed=seed)
            for n, seed in ((8, 21), (12, 22), (10, 23))
        ]
        jobs = [
            Job.broadcast(recipe, heuristic=heuristic, model=model, simulate=True,
                          num_slices=25)
            for recipe in recipes
            for heuristic, model in (
                ("grow-tree", "one-port"),
                ("binomial", "one-port"),
                ("multiport-grow-tree", "multi-port"),
            )
        ]
        batched = Session().solve_many(jobs)
        sequential = [Session().solve(job).materialize() for job in jobs]
        assert [r.deterministic_metrics() for r in batched] == [
            r.deterministic_metrics() for r in sequential
        ]

    def test_cache_stats_accounts_entries_and_bytes(self):
        session = Session()
        empty = session.cache_stats()
        assert empty["platforms"]["entries"] == 0
        assert empty["results"]["entries"] == 0
        jobs = [
            Job.broadcast(RECIPE, heuristic=name, simulate=True, num_slices=15)
            for name in ("grow-tree", "binomial")
        ]
        session.solve_many(jobs)
        stats = session.cache_stats()
        assert stats["platforms"]["entries"] == 1
        assert stats["platforms"]["compiled_bytes"] > 0
        assert stats["trees"]["entries"] == 2
        assert stats["trees"]["compiled_bytes"] > 0
        assert stats["lp_solutions"]["entries"] >= 1
        assert stats["results"]["entries"] == 2
        assert stats["results"]["approx_bytes"] > 0
        assert stats["makespans"]["entries"] == 2
        assert stats["simulations"]["entries"] == 2
        session.clear()
        cleared = session.cache_stats()
        assert cleared["platforms"]["entries"] == 0
        assert cleared["results"]["entries"] == 0

    def test_disk_cache_replays_without_computing(self, tmp_path, count_lp_solves):
        job = Job.broadcast(RECIPE, simulate=True, num_slices=15)
        warm = Session(cache_dir=tmp_path).solve_many([job])[0]
        solves = len(count_lp_solves)
        assert solves == 1
        replayed = Session(cache_dir=tmp_path).solve(job)
        assert replayed.is_materialized()
        assert replayed.deterministic_metrics() == warm.deterministic_metrics()
        assert len(count_lp_solves) == solves

    def test_collective_jobs_end_to_end(self):
        session = Session()
        job = Job.of_collective(
            RECIPE, "multicast", source=0, targets=(1, 3, 5), simulate=True, num_slices=20
        )
        result = session.solve(job)
        assert result.throughput <= result.lp_bound + 1e-9
        assert {1, 3, 5} <= set(result.tree.nodes)
        assert result.simulated_throughput == pytest.approx(
            result.throughput, rel=1e-6
        )

    def test_invalid_jobs_parameter(self):
        with pytest.raises(ConfigError):
            Session(jobs=0)

    def test_mutating_inline_platform_invalidates_session_caches(self, count_lp_solves):
        """A mutated platform must re-solve, not replay the stale LP bound."""
        from repro.platform.generators.structured import generate_complete_platform

        platform = generate_complete_platform(6, seed=11)
        session = Session()
        job = Job.broadcast(platform)
        key_before = job.cache_key()
        session.solve(job).materialize()
        assert len(count_lp_solves) == 1
        platform.remove_link(1, 2)
        # Mutation bumps the platform epoch: job identity and every session
        # cache key change, so nothing stale can be replayed.
        assert job.cache_key() != key_before
        second = session.solve(job).materialize()
        assert len(count_lp_solves) == 2
        reference = solve_collective_lp(platform, job.collective)
        assert second.lp_bound == reference.throughput

    def test_restored_premutation_job_gets_faithful_platform(self):
        """A saved job must not resolve to an instance mutated after saving."""
        platform = generate_random_platform(num_nodes=8, density=0.4, seed=9)
        session = Session()
        job = Job.broadcast(platform)
        saved = job.to_json()
        session.solve(job).materialize()
        link = next(l for l in platform.links if 0 not in (l.source, l.target))
        platform.remove_link(link.source, link.target)
        restored = session.solve(Job.from_json(saved))
        assert restored.platform is not platform
        assert len(restored.platform.links) == len(platform.links) + 1

    def test_makespan_shared_across_simulate_twins(self, monkeypatch):
        """The simulate flag must not split the makespan/simulation caches."""
        from repro.analysis.makespan import pipelined_makespan as real

        calls = []

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr("repro.api.session.pipelined_makespan", counting)
        session = Session()
        job = Job.broadcast(RECIPE, num_slices=20)
        first = session.solve(job).makespan
        second = session.solve(job.but(simulate=True)).makespan
        assert first == second
        assert len(calls) == 1

    def test_replay_does_not_rewrite_disk_entries(self, tmp_path, monkeypatch):
        """Replaying cached work must not churn the on-disk entries."""
        session = Session(cache_dir=tmp_path)
        job = Job.broadcast(RECIPE)
        session.solve_many([job])
        writes = []
        monkeypatch.setattr(
            session.results,
            "_write_disk",
            lambda *args, **kwargs: writes.append(args),
        )
        session.solve_many([job])
        session.solve(job).materialize()
        assert writes == []
        # A fresh session attaching the entry from disk must not rewrite it.
        fresh = Session(cache_dir=tmp_path)
        monkeypatch.setattr(
            fresh.results,
            "_write_disk",
            lambda *args, **kwargs: writes.append(args),
        )
        fresh.solve_many([job])
        fresh.solve(job).materialize()
        assert writes == []

    def test_lp_seconds_shared_across_jobs_on_one_platform(self):
        """Every record of a platform reports the real LP solve time."""
        session = Session()
        first = session.solve(Job.broadcast(RECIPE, heuristic="grow-tree")).materialize()
        second = session.solve(Job.broadcast(RECIPE, heuristic="binomial")).materialize()
        assert first.lp_seconds > 0
        assert second.lp_seconds == first.lp_seconds

    def test_single_solve_persists_to_disk_cache(self, tmp_path, count_lp_solves):
        """solve().materialize() must honour cache_dir like solve_many does."""
        job = Job.broadcast(RECIPE, num_slices=15)
        warm = Session(cache_dir=tmp_path).solve(job).materialize()
        assert len(count_lp_solves) == 1
        replayed = Session(cache_dir=tmp_path).solve(job)
        assert replayed.is_materialized()
        assert replayed.deterministic_metrics() == warm.deterministic_metrics()
        assert len(count_lp_solves) == 1


class TestResult:
    def test_json_round_trip_lossless_and_version_stamped(self):
        session = Session()
        job = Job.broadcast(RECIPE, simulate=True, num_slices=20)
        result = session.solve(job)
        data = result.to_dict()
        assert data["format_version"] == 1
        assert data["version"]
        restored = Result.from_json(result.to_json(), session=Session())
        assert restored.job == job
        assert restored.is_materialized()
        assert restored.metrics() == result.metrics()
        with pytest.raises(ConfigError):
            Result.from_dict({**data, "format_version": 999}, session=Session())
        with pytest.raises(ConfigError):
            # Metrics from another library version must not be adopted.
            Result.from_dict({**data, "version": "0.0.1"}, session=Session())

    def test_lazy_no_work_until_access(self, count_lp_solves):
        session = Session()
        result = session.solve(Job.broadcast(RECIPE))
        assert len(count_lp_solves) == 0
        assert result.metrics() == {}
        _ = result.lp_bound
        assert len(count_lp_solves) == 1

    def test_report_and_makespan_views(self):
        session = Session()
        result = session.solve(Job.broadcast(RECIPE, num_slices=25))
        assert result.report.bottleneck in result.platform.nodes
        assert result.makespan == pytest.approx(result.makespan_report.makespan)
        assert result.makespan >= 25 / result.throughput - 1e-9


class TestExceptionHierarchy:
    def test_platform_value_errors_are_repro_errors(self):
        from repro.platform.costs import AffineCost
        from repro.platform.link import Link
        from repro.platform.node import ProcessorNode

        for trigger in (
            lambda: AffineCost(startup=-1.0),
            lambda: AffineCost.from_bandwidth(0.0),
            lambda: Link.with_transfer_time(0, 0, 1.0),
            lambda: ProcessorNode(name=0, send_overhead=-1.0),
        ):
            with pytest.raises(ReproError):
                trigger()
            with pytest.raises(PlatformError):
                trigger()

    def test_config_error_is_experiment_error(self):
        from repro.experiments.config import scaled_parameters

        with pytest.raises(ConfigError):
            scaled_parameters(0.0)
        with pytest.raises(ExperimentError):
            scaled_parameters(-1.0)
        assert issubclass(ConfigError, ExperimentError)
        assert issubclass(ConfigError, ReproError)
