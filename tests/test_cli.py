"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tree_defaults(self):
        args = build_parser().parse_args(["tree"])
        assert args.heuristic == "grow-tree"
        assert args.nodes == 20
        assert args.model == "one-port"

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tree", "--heuristic", "nope"])

    def test_experiment_artefact_choices(self):
        args = build_parser().parse_args(["experiment", "--artefact", "table3"])
        assert args.artefact == "table3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--artefact", "fig9"])


class TestCommands:
    def test_tree_command(self, capsys):
        code = main(
            ["tree", "--nodes", "10", "--density", "0.3", "--seed", "1",
             "--compare-lp", "--show-tree"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "relative performance" in out
        assert "grow-tree" in out

    def test_tree_command_multiport(self, capsys):
        code = main(
            ["tree", "--nodes", "10", "--density", "0.3", "--seed", "1",
             "--heuristic", "multiport-grow-tree", "--model", "multi-port"]
        )
        assert code == 0
        assert "multi-port" in capsys.readouterr().out

    def test_lp_command(self, capsys):
        code = main(["lp", "--nodes", "10", "--density", "0.3", "--seed", "2", "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SSB optimum" in out
        assert "n_uv" in out

    def test_simulate_command(self, capsys):
        code = main(
            ["simulate", "--nodes", "10", "--density", "0.3", "--seed", "3", "--slices", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated throughput" in out

    def test_tiers_platform_option(self, capsys):
        code = main(["tree", "--tiers", "30", "--seed", "4"])
        assert code == 0
        assert "tiers-30" in capsys.readouterr().out

    def test_experiment_command_tiny_scale(self, capsys):
        # Keep the ensemble tiny: scale 0.1 -> 1 configuration per point, but
        # the grid still spans 5 sizes x 5 densities; use table3 with the
        # smaller Tiers ensemble instead? table3 at scale 0.1 solves 20 LPs.
        # fig4a at scale 0.1 solves 25 LPs of up to 50 nodes - too slow for a
        # unit test, so only exercise the parser-to-handler wiring here via
        # a monkeypatched ensemble in test_experiments.py.  This test checks
        # the command exists and rejects invalid scales quickly.
        with pytest.raises(Exception):
            main(["experiment", "--artefact", "fig4a", "--scale", "0"])
