"""Unit tests for the affine cost model (repro.platform.costs)."""

from __future__ import annotations

import pytest

from repro.exceptions import PlatformError
from repro.platform.costs import AffineCost, LinkCostModel


class TestAffineCost:
    def test_evaluation_is_affine(self):
        cost = AffineCost(startup=2.0, per_unit=0.5)
        assert cost(0) == pytest.approx(2.0)
        assert cost(10) == pytest.approx(7.0)
        assert cost(4) - cost(2) == pytest.approx(1.0)

    def test_constant_ignores_size(self):
        cost = AffineCost.constant(3.5)
        assert cost(0) == cost(1000) == pytest.approx(3.5)

    def test_linear_has_no_startup(self):
        cost = AffineCost.linear(0.25)
        assert cost(0) == 0.0
        assert cost(8) == pytest.approx(2.0)

    def test_from_bandwidth(self):
        cost = AffineCost.from_bandwidth(100.0, startup=1.0)
        assert cost(200.0) == pytest.approx(3.0)

    def test_from_bandwidth_rejects_non_positive(self):
        with pytest.raises(PlatformError):
            AffineCost.from_bandwidth(0.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(PlatformError):
            AffineCost(startup=-1.0)
        with pytest.raises(PlatformError):
            AffineCost(per_unit=-0.1)

    def test_negative_size_rejected(self):
        with pytest.raises(PlatformError):
            AffineCost(1.0, 1.0)(-1.0)

    def test_dominates(self):
        big = AffineCost(2.0, 1.0)
        small = AffineCost(1.0, 0.5)
        assert big.dominates(small)
        assert not small.dominates(big)
        assert big.dominates(big)

    def test_scaled(self):
        cost = AffineCost(2.0, 4.0).scaled(0.5)
        assert cost.startup == pytest.approx(1.0)
        assert cost.per_unit == pytest.approx(2.0)
        with pytest.raises(PlatformError):
            cost.scaled(-1.0)

    def test_round_trip_dict(self):
        cost = AffineCost(1.25, 0.75)
        assert AffineCost.from_dict(cost.to_dict()) == cost

    def test_ordering_is_total(self):
        costs = sorted([AffineCost(2, 0), AffineCost(1, 5), AffineCost(1, 2)])
        assert costs[0] == AffineCost(1, 2)
        assert costs[-1] == AffineCost(2, 0)


class TestLinkCostModel:
    def test_one_port_defaults_collapse(self):
        model = LinkCostModel.one_port(5.0)
        assert model.link_time(1) == 5.0
        assert model.send_time(1) == 5.0
        assert model.recv_time(1) == 5.0

    def test_multi_port_distinct_occupations(self):
        model = LinkCostModel.multi_port(5.0, send_time=1.0, recv_time=0.5)
        assert model.link_time(1) == 5.0
        assert model.send_time(1) == 1.0
        assert model.recv_time(1) == 0.5

    def test_send_cannot_exceed_link(self):
        with pytest.raises(PlatformError):
            LinkCostModel(
                link=AffineCost.constant(1.0), send=AffineCost.constant(2.0)
            )

    def test_recv_cannot_exceed_link(self):
        with pytest.raises(PlatformError):
            LinkCostModel(
                link=AffineCost.constant(1.0), recv=AffineCost.constant(2.0)
            )

    def test_round_trip_dict(self):
        model = LinkCostModel.multi_port(4.0, send_time=2.0)
        rebuilt = LinkCostModel.from_dict(model.to_dict())
        assert rebuilt.link_time(3) == model.link_time(3)
        assert rebuilt.send_time(3) == model.send_time(3)
        assert rebuilt.recv_time(3) == model.recv_time(3)
        assert rebuilt.recv is None
