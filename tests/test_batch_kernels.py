"""Ensemble-batched kernels vs their per-item reference twins.

Adversarial batch *shapes* are the point here (``test_kernels.py`` covers
the per-item kernels themselves): singleton batches, batches of identical
platforms, maximally ragged batches (an ``n = 2`` line item next to an
``n = 200`` star), minimal-coverage multicast trees, routed fallback items
mixed with vector items, and both port models.  Every comparison against
the per-item kernels is **bit-identical** (``np.array_equal``, no
tolerance): the batched sweep pads with ``busy = 0.0`` / ``ready = -inf``,
which leaves IEEE prefix sums and running maxima untouched.

"Empty-target" multicast items cannot reach :class:`EnsembleBatch` at all:
a multicast spec with no target besides the source is rejected when the
tree is built (asserted below), so the smallest collective item a batch can
hold is a single-target multicast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MultiPortModel,
    OnePortModel,
    build_broadcast_tree,
    build_collective_tree,
    generate_star_platform,
    pipelined_makespan,
)
from repro.collectives import CollectiveSpec
from repro.exceptions import PlatformError
from repro.kernels import (
    EnsembleBatch,
    arrival_matrix,
    batch_arrival_matrices,
    batch_inorder_simulation,
    batch_lp_assembly,
    batch_pipelined_makespan,
    inorder_direct_run,
)
from repro.lp.formulation import build_collective_lp, build_collective_lp_reference
from test_kernels import integer_platform

BOTH_MODELS = (OnePortModel(), MultiPortModel())


def compiled_trees(platforms, *, heuristic="grow-tree"):
    """Grow a broadcast tree from node 0 on every platform and compile it."""
    trees = [build_broadcast_tree(p, 0, heuristic=heuristic) for p in platforms]
    return trees, [tree.compiled() for tree in trees]


def assert_batch_matches_per_item(trees, ctrees, model, num_slices=23):
    """Batched sweep == per-item kernels, bit for bit, item by item."""
    batch = EnsembleBatch.from_trees(ctrees, model)
    arrivals, _ = batch_arrival_matrices(batch, num_slices)
    makespans, fills = batch_pipelined_makespan(batch, num_slices)
    assert arrivals.shape == (batch.total_nodes, num_slices)
    for item, (tree, ctree) in enumerate(zip(trees, ctrees)):
        expected = arrival_matrix(ctree, num_slices, model)
        assert np.array_equal(arrivals[batch.item_rows(item)], expected)
        report = pipelined_makespan(tree, num_slices, model)
        assert makespans[item] == report.makespan
        assert fills[item] == report.fill_time
    return batch


# --------------------------------------------------------------------------- #
# Adversarial batch shapes
# --------------------------------------------------------------------------- #
class TestEnsembleBatchShapes:
    def test_empty_batch_rejected(self):
        for model in BOTH_MODELS:
            with pytest.raises(ValueError):
                EnsembleBatch.from_trees([], model)

    @pytest.mark.parametrize("model", BOTH_MODELS, ids=["one-port", "multi-port"])
    def test_singleton_batch(self, model):
        trees, ctrees = compiled_trees([integer_platform(9, 12, seed=3)])
        batch = assert_batch_matches_per_item(trees, ctrees, model)
        assert batch.num_items == 1
        assert batch.vector_items == (0,)

    @pytest.mark.parametrize("model", BOTH_MODELS, ids=["one-port", "multi-port"])
    def test_all_identical_platforms(self, model):
        platform = integer_platform(11, 20, seed=7)
        trees, ctrees = compiled_trees([platform] * 6)
        assert_batch_matches_per_item(trees, ctrees, model)

    @pytest.mark.parametrize("model", BOTH_MODELS, ids=["one-port", "multi-port"])
    def test_maximally_ragged_sizes(self, model):
        """An n=2 item and an n=200 star in the same batch, plus mid sizes."""
        platforms = [
            integer_platform(2, 0, seed=1),
            generate_star_platform(200, uniform_time=2.0),
            integer_platform(50, 120, seed=5),
            integer_platform(2, 0, seed=9),
        ]
        trees, ctrees = compiled_trees(platforms)
        batch = assert_batch_matches_per_item(trees, ctrees, model)
        assert batch.total_nodes == 2 + 200 + 50 + 2

    def test_minimal_multicast_items(self):
        """Single-target multicast trees batch next to full broadcasts."""
        platform = integer_platform(10, 15, seed=11)
        broadcast_tree = build_broadcast_tree(platform, 0, heuristic="grow-tree")
        nodes = sorted(n for n in platform.nodes if n != 0)
        multicast_trees = [
            build_collective_tree(platform, CollectiveSpec.multicast(0, [target]))
            for target in nodes[:2]
        ]
        trees = [broadcast_tree, *multicast_trees]
        ctrees = [tree.compiled() for tree in trees]
        assert_batch_matches_per_item(trees, ctrees, OnePortModel())

    def test_empty_target_multicast_rejected_upstream(self):
        """No-target multicast never produces a tree to batch."""
        platform = integer_platform(6, 4, seed=2)
        with pytest.raises(PlatformError):
            build_collective_tree(platform, CollectiveSpec.multicast(0, []))

    def test_routed_items_fall_back_inside_the_batch(self):
        """Binomial (routed) items fall back per item; the rest stay vector."""
        model = OnePortModel()
        platforms = [
            integer_platform(12, 18, seed=21),
            integer_platform(12, 18, seed=22),
            integer_platform(12, 18, seed=23),
        ]
        trees = [
            build_broadcast_tree(platforms[0], 0, heuristic="grow-tree"),
            build_broadcast_tree(platforms[1], 0, heuristic="binomial"),
            build_broadcast_tree(platforms[2], 0, heuristic="grow-tree"),
        ]
        ctrees = [tree.compiled() for tree in trees]
        batch = assert_batch_matches_per_item(trees, ctrees, model)
        assert 1 in batch.fallback_items
        assert set(batch.vector_items) | set(batch.fallback_items) == {0, 1, 2}

    @pytest.mark.parametrize("model", BOTH_MODELS, ids=["one-port", "multi-port"])
    def test_simulation_runs_match_per_item(self, model):
        """Batched in-order runs == per-item runs, dict key order included."""
        platforms = [
            integer_platform(2, 0, seed=31),
            integer_platform(20, 40, seed=32, recv_overheads=True),
            integer_platform(9, 10, seed=33),
        ]
        trees, ctrees = compiled_trees(platforms)
        batch = EnsembleBatch.from_trees(ctrees, model)
        runs = batch_inorder_simulation(batch, 17)
        for ctree, run in zip(ctrees, runs):
            arrivals, send_busy, recv_busy, link_busy = inorder_direct_run(
                ctree, 17, model
            )
            assert np.array_equal(run[0], arrivals)
            for got, expected in zip(run[1:], (send_busy, recv_busy, link_busy)):
                assert list(got) == list(expected)  # same keys, same order
                assert got == expected

    def test_simulation_rejects_routed_items(self):
        platform = integer_platform(8, 8, seed=41)
        tree = build_broadcast_tree(platform, 0, heuristic="binomial")
        batch = EnsembleBatch.from_trees([tree.compiled()], OnePortModel())
        if batch.fallback_items:
            with pytest.raises(ValueError):
                batch_inorder_simulation(batch, 9)

    def test_nbytes_accounting(self):
        trees, ctrees = compiled_trees([integer_platform(10, 12, seed=51)])
        ctree = ctrees[0]
        assert ctree.nbytes == sum(
            a.nbytes
            for a in (
                ctree.parents,
                ctree.bfs,
                ctree.child_indptr,
                ctree.child_nodes,
                ctree.route_indptr,
                ctree.route_edge_ids,
            )
        )
        view = ctree.view
        assert view.nbytes > 0
        batch = EnsembleBatch.from_trees(ctrees, OnePortModel())
        assert batch.nbytes > 0


# --------------------------------------------------------------------------- #
# Batched LP assembly
# --------------------------------------------------------------------------- #
class TestBatchLPAssembly:
    @staticmethod
    def _problems():
        problems = []
        for seed in (61, 62):
            platform = integer_platform(9, 14, seed=seed)
            nodes = sorted(n for n in platform.nodes if n != 0)
            problems.append((platform, CollectiveSpec.broadcast(0)))
            problems.append((platform, CollectiveSpec.multicast(0, nodes[:3])))
            problems.append((platform, CollectiveSpec.scatter(0, nodes[:4])))
        return problems

    def test_entries_identical_to_per_item_builders(self):
        problems = self._problems()
        batch = batch_lp_assembly(problems)
        assert batch.num_items == len(problems)
        for item, (platform, spec) in enumerate(problems):
            split = batch.data_for(item)
            for reference in (
                build_collective_lp(platform, spec),
                build_collective_lp_reference(platform, spec),
            ):
                assert split.a_eq.shape == reference.a_eq.shape
                assert (split.a_eq != reference.a_eq).nnz == 0
                assert (split.a_ub != reference.a_ub).nnz == 0
                assert np.array_equal(split.b_eq, reference.b_eq)
                assert np.array_equal(split.b_ub, reference.b_ub)
                assert np.array_equal(split.objective, reference.objective)
                assert split.bounds == reference.bounds

    def test_block_matrices_are_block_diagonal(self):
        problems = self._problems()[:3]
        batch = batch_lp_assembly(problems)
        a_eq, a_ub = batch.block_matrices()
        splits = [batch.data_for(i) for i in range(batch.num_items)]
        assert a_eq.shape == (
            sum(s.a_eq.shape[0] for s in splits),
            sum(s.a_eq.shape[1] for s in splits),
        )
        assert a_ub.shape[0] == sum(s.a_ub.shape[0] for s in splits)
        # Off-diagonal blocks are empty: every entry lands in its item's box.
        row = 0
        col = 0
        for split in splits:
            rows, cols = split.a_eq.shape
            block = a_eq[row : row + rows, col : col + cols]
            assert (block != split.a_eq).nnz == 0
            row += rows
            col += cols
        assert a_eq.nnz == sum(s.a_eq.nnz for s in splits)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            batch_lp_assembly([])
