"""Tests of the collective-operations subsystem (spec, LP, trees, simulation).

The consistency laws asserted here are the contract of the refactor:

* multicast with targets = all nodes is *bit-identical* to broadcast at
  every layer (LP matrices, heuristic trees);
* scatter never beats broadcast (its nesting equality dominates);
* reduce / gather equal their dual on the independently reversed platform;
* the vectorized LP builders match their reference twins for every kind;
* the distinct-message simulation fast path matches its reference replay
  and both converge to the closed-form throughput.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    CollectiveSpec,
    Platform,
    build_broadcast_tree,
    build_collective_tree,
    collective_throughput,
    generate_random_platform,
    generate_tiers_platform,
    register_heuristic,
    solve_collective_lp,
    solve_steady_state_lp,
)
from repro.collectives import CollectiveKind, effective_problem, require_feasible
from repro.core.grow_tree import GrowingMinimumOutDegreeTree
from repro.core.tree import BroadcastTree, steiner_prune
from repro.exceptions import (
    DisconnectedPlatformError,
    HeuristicError,
    NotASpanningTreeError,
    PlatformError,
    SimulationError,
)
from repro.lp.formulation import build_collective_lp, build_collective_lp_reference
from repro.lp.solver import LPSolutionCache
from repro.models.port_models import MultiPortModel
from repro.platform.serialization import platform_from_dict, platform_to_dict
from repro.simulation.collective import (
    scatter_arrivals_reference,
    simulate_collective,
)


@pytest.fixture(scope="module")
def platform():
    return generate_random_platform(num_nodes=14, density=0.25, seed=3)


@pytest.fixture(scope="module")
def tiers():
    return generate_tiers_platform(30, seed=1)


def assert_same_lp(a, b):
    assert (a.a_eq != b.a_eq).nnz == 0
    assert (a.a_ub != b.a_ub).nnz == 0
    assert np.array_equal(a.b_eq, b.b_eq)
    assert np.array_equal(a.b_ub, b.b_ub)
    assert np.array_equal(a.objective, b.objective)
    assert a.bounds == b.bounds
    assert a.index == b.index


# --------------------------------------------------------------------------- #
# CollectiveSpec
# --------------------------------------------------------------------------- #
class TestSpec:
    def test_kind_coercion_and_classification(self):
        spec = CollectiveSpec("scatter", 0, (1, 2))
        assert spec.kind is CollectiveKind.SCATTER
        assert spec.distinct_messages and not spec.is_reversed
        assert CollectiveSpec.reduce(0).is_reversed
        assert CollectiveSpec.gather(0).distinct_messages

    def test_dual_round_trips(self):
        for spec in (CollectiveSpec.broadcast(0), CollectiveSpec.scatter(0, (1,))):
            assert spec.dual().dual().kind is spec.kind
        assert CollectiveSpec.reduce(0).dual().kind is CollectiveKind.BROADCAST
        assert CollectiveSpec.gather(0).dual().kind is CollectiveKind.SCATTER

    def test_resolve_targets_orders_and_dedupes(self, platform):
        spec = CollectiveSpec.multicast(0, (5, 3, 3, 0, 1))
        assert spec.resolve_targets(platform) == (1, 3, 5)
        assert not spec.is_total(platform)
        full = CollectiveSpec.scatter(0)
        assert full.is_total(platform)

    def test_validation_errors(self, platform):
        with pytest.raises(PlatformError):
            CollectiveSpec.broadcast(99).validate(platform)
        with pytest.raises(PlatformError):
            CollectiveSpec.multicast(0, (77,)).validate(platform)
        with pytest.raises(PlatformError):
            CollectiveSpec.multicast(0, (0,)).validate(platform)

    def test_effective_problem_reverses(self, platform):
        eff_platform, eff_spec = effective_problem(platform, CollectiveSpec.reduce(0))
        assert eff_spec.kind is CollectiveKind.BROADCAST
        assert set(eff_platform.edges) == {(v, u) for u, v in platform.edges}
        same_platform, same_spec = effective_problem(platform, CollectiveSpec.broadcast(0))
        assert same_platform is platform and same_spec.kind is CollectiveKind.BROADCAST


# --------------------------------------------------------------------------- #
# Platform.reversed + feasibility (satellites)
# --------------------------------------------------------------------------- #
class TestReversedPlatform:
    def test_double_reverse_is_identity(self, platform):
        twice = platform.reversed().reversed()
        assert twice.name == platform.name
        assert twice.nodes == platform.nodes
        assert twice.edges == platform.edges
        for (u, v) in platform.edges:
            assert twice.transfer_time(u, v) == platform.transfer_time(u, v)

    def test_reverse_flips_costs_and_overheads(self):
        platform = Platform("asym")
        platform.add_node(0, send_overhead=0.25)
        platform.add_node(1, recv_overhead=0.75)
        platform.connect(0, 1, 2.0, send_time=0.5, recv_time=1.5)
        rev = platform.reversed()
        assert rev.edges == [(1, 0)]
        assert rev.transfer_time(1, 0) == 2.0
        # send/recv occupations swap sides with the direction.
        assert rev.link(1, 0).send_time(1.0) == 1.5
        assert rev.link(1, 0).recv_time(1.0) == 0.5
        assert rev.node(0).recv_overhead == 0.25
        assert rev.node(1).send_overhead == 0.75

    def test_reversed_is_cached_and_invalidated(self, platform):
        rev = platform.reversed()
        assert platform.reversed() is rev
        copy = platform.copy()
        copy.connect(copy.nodes[0], copy.nodes[-1], 9.0)
        first = copy.reversed()
        copy.connect(copy.nodes[-1], copy.nodes[0], 9.0)
        assert copy.reversed() is not first

    def test_mutating_the_reversed_view_detaches_it_from_the_cache(self):
        plat = generate_random_platform(num_nodes=8, density=0.4, seed=4)
        before = solve_collective_lp(plat, CollectiveSpec.reduce(0)).throughput
        rev = plat.reversed()
        u, v = rev.edges[0]
        rev.remove_link(u, v)
        # The untouched original must not see the mutated view.
        assert plat.reversed() is not rev
        after = solve_collective_lp(plat, CollectiveSpec.reduce(0)).throughput
        assert math.isclose(before, after, rel_tol=1e-12)

    def test_reversed_round_trips_through_serialization(self, platform):
        rev = platform.reversed()
        loaded = platform_from_dict(platform_to_dict(rev))
        assert loaded.nodes == rev.nodes
        assert loaded.edges == rev.edges
        for (u, v) in rev.edges:
            assert loaded.transfer_time(u, v) == rev.transfer_time(u, v)
        # ...and reversing the loaded platform recovers the original edges.
        assert loaded.reversed().edges == platform.edges

    def test_unreachable_error_lists_the_nodes(self):
        platform = Platform("broken")
        for name in (0, 1, 2, 3):
            platform.add_node(name)
        platform.connect(0, 1, 1.0)
        with pytest.raises(DisconnectedPlatformError) as excinfo:
            platform.require_broadcast_feasible(0)
        assert "[2, 3]" in str(excinfo.value)

    def test_target_variant_only_checks_targets(self):
        platform = Platform("partial")
        for name in (0, 1, 2, 3):
            platform.add_node(name)
        platform.connect(0, 1, 1.0)
        platform.require_targets_reachable(0, [1])  # node 2, 3 may be dark
        with pytest.raises(DisconnectedPlatformError) as excinfo:
            platform.require_targets_reachable(0, [1, 3])
        assert "[3]" in str(excinfo.value)
        with pytest.raises(DisconnectedPlatformError):
            require_feasible(platform, CollectiveSpec.multicast(0, (3,)))


# --------------------------------------------------------------------------- #
# Registry guard (satellite)
# --------------------------------------------------------------------------- #
class TestRegistryGuard:
    def test_collision_raises_without_overwrite(self):
        register_heuristic("collectives-test-guard", GrowingMinimumOutDegreeTree)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_heuristic("collectives-test-guard", GrowingMinimumOutDegreeTree)
            # Explicit overwrite replaces the factory without raising.
            register_heuristic(
                "collectives-test-guard",
                lambda: GrowingMinimumOutDegreeTree(fast=False),
                overwrite=True,
            )
        finally:
            from repro.core.registry import HEURISTICS

            HEURISTICS.pop("collectives-test-guard", None)


# --------------------------------------------------------------------------- #
# LP consistency laws
# --------------------------------------------------------------------------- #
class TestCollectiveLP:
    def test_multicast_full_targets_bit_identical_to_broadcast(self, platform):
        broadcast = build_collective_lp(platform, CollectiveSpec.broadcast(0))
        full = CollectiveSpec.multicast(0, [n for n in platform.nodes if n != 0])
        assert_same_lp(broadcast, build_collective_lp(platform, full))

    @pytest.mark.parametrize(
        "spec",
        [
            CollectiveSpec.broadcast(0),
            CollectiveSpec.multicast(0, (1, 4, 7, 9)),
            CollectiveSpec.scatter(0),
            CollectiveSpec.scatter(0, (2, 5, 8)),
            CollectiveSpec.reduce(0),
            CollectiveSpec.gather(0, (1, 2, 3)),
        ],
        ids=lambda s: f"{s.kind.value}-{'sub' if s.targets else 'all'}",
    )
    def test_vectorized_builder_matches_reference(self, platform, spec):
        assert_same_lp(
            build_collective_lp(platform, spec),
            build_collective_lp_reference(platform, spec),
        )

    def test_multicast_strict_subset_is_smaller(self, platform):
        broadcast = build_collective_lp(platform, CollectiveSpec.broadcast(0))
        subset = build_collective_lp(platform, CollectiveSpec.multicast(0, (1, 2, 3)))
        assert subset.index.num_variables < broadcast.index.num_variables
        assert subset.num_constraints < broadcast.num_constraints

    def test_optima_ordering_laws(self, platform):
        broadcast = solve_steady_state_lp(platform, 0).throughput
        targets = (1, 3, 5, 7)
        multicast = solve_collective_lp(platform, CollectiveSpec.multicast(0, targets))
        scatter_sub = solve_collective_lp(platform, CollectiveSpec.scatter(0, targets))
        scatter_all = solve_collective_lp(platform, CollectiveSpec.scatter(0))
        # Fewer commodities can only help; distinct messages can only hurt.
        assert multicast.throughput >= broadcast - 1e-9
        assert scatter_all.throughput <= broadcast + 1e-9
        assert scatter_sub.throughput <= multicast.throughput + 1e-9

    def test_reduce_equals_dual_on_reversed(self, platform):
        reduce_solution = solve_collective_lp(platform, CollectiveSpec.reduce(0))
        dual = solve_steady_state_lp(platform.reversed(), 0)
        assert math.isclose(
            reduce_solution.throughput, dual.throughput, rel_tol=1e-9
        )
        gather = solve_collective_lp(platform, CollectiveSpec.gather(0))
        dual_scatter = solve_collective_lp(
            platform.reversed(), CollectiveSpec.scatter(0)
        )
        assert math.isclose(gather.throughput, dual_scatter.throughput, rel_tol=1e-9)

    def test_reversed_solution_reports_original_orientation(self, platform):
        solution = solve_collective_lp(platform, CollectiveSpec.reduce(0))
        assert solution.spec.kind is CollectiveKind.REDUCE
        for (u, v) in solution.used_edges():
            assert platform.has_link(u, v)

    def test_cache_distinguishes_specs(self, platform):
        cache = LPSolutionCache()
        a = cache.solve_collective(platform, CollectiveSpec.multicast(0, (1, 2)))
        b = cache.solve_collective(platform, CollectiveSpec.multicast(0, (1, 3)))
        again = cache.solve_collective(platform, CollectiveSpec.multicast(0, (1, 2)))
        assert a is again and a is not b
        assert len(cache) == 2
        # Plain broadcast entry is shared between both call styles.
        c = cache.solve(platform, 0)
        assert cache.solve_collective(platform, CollectiveSpec.broadcast(0)) is c


# --------------------------------------------------------------------------- #
# Partial (Steiner) trees
# --------------------------------------------------------------------------- #
class TestSteinerTrees:
    def test_partial_tree_validation(self, platform):
        tree = build_collective_tree(platform, CollectiveSpec.multicast(0, (1, 3)))
        assert {0, 1, 3} <= set(tree.nodes)
        assert tree.num_nodes == len(tree.nodes) <= platform.num_nodes
        with pytest.raises(NotASpanningTreeError):
            BroadcastTree(
                platform=platform, source=0, parents={1: 0}, targets=(1, 3)
            )

    def test_parent_chain_must_stay_inside_tree(self, platform):
        # 3 hangs from 2, which has no parent entry itself.
        with pytest.raises(NotASpanningTreeError):
            BroadcastTree(platform=platform, source=0, parents={3: 2}, targets=(3,))

    def test_steiner_prune_drops_dead_relays(self):
        parents = {1: 0, 2: 1, 3: 1, 4: 3}
        kept = steiner_prune(parents, 0, targets=(2,))
        assert kept == {1: 0, 2: 1}

    def test_full_targets_reproduce_broadcast_trees(self, platform):
        full = CollectiveSpec.multicast(0, [n for n in platform.nodes if n != 0])
        for name in ("grow-tree", "prune-simple", "prune-degree", "lp-prune",
                     "lp-grow-tree", "binomial"):
            broadcast_tree = build_broadcast_tree(platform, 0, heuristic=name)
            spec_tree = build_collective_tree(platform, full, heuristic=name)
            assert spec_tree.same_structure_as(broadcast_tree), name
        model = MultiPortModel()
        for name in ("multiport-grow-tree", "multiport-prune-degree"):
            broadcast_tree = build_broadcast_tree(platform, 0, heuristic=name, model=model)
            spec_tree = build_collective_tree(platform, full, heuristic=name, model=model)
            assert spec_tree.same_structure_as(broadcast_tree), name

    @pytest.mark.parametrize(
        "heuristic", ["grow-tree", "prune-simple", "prune-degree", "lp-prune",
                      "lp-grow-tree", "grow-tree+local-search"]
    )
    def test_multicast_trees_cover_targets_with_target_leaves(self, platform, heuristic):
        targets = (1, 4, 6, 9, 11)
        spec = CollectiveSpec.multicast(0, targets)
        tree = build_collective_tree(platform, spec, heuristic=heuristic)
        assert set(targets) <= set(tree.nodes)
        assert all(leaf in targets for leaf in tree.leaves()), heuristic
        report = collective_throughput(tree, spec)
        assert report.throughput > 0

    def test_fast_and_reference_prunes_agree_on_targets(self, platform):
        from repro.core.lp_prune import LPCommunicationGraphPruning
        from repro.core.prune_refined import RefinedPlatformPruning

        spec = CollectiveSpec.multicast(0, (2, 5, 8, 11))
        for fast_cls in (RefinedPlatformPruning, LPCommunicationGraphPruning):
            fast_tree = build_collective_tree(platform, spec, heuristic=fast_cls(fast=True))
            ref_tree = build_collective_tree(platform, spec, heuristic=fast_cls(fast=False))
            assert fast_tree.same_structure_as(ref_tree), fast_cls.__name__

    def test_reversed_spec_rejected_by_direct_build(self, platform):
        with pytest.raises(HeuristicError, match="build_collective_tree"):
            GrowingMinimumOutDegreeTree().build(
                platform, spec=CollectiveSpec.reduce(0)
            )

    def test_source_spec_mismatch_rejected(self, platform):
        with pytest.raises(HeuristicError, match="conflicts"):
            GrowingMinimumOutDegreeTree().build(
                platform, 1, spec=CollectiveSpec.multicast(0, (2,))
            )


# --------------------------------------------------------------------------- #
# End-to-end: LP -> heuristic -> analysis -> simulation, all five kinds
# --------------------------------------------------------------------------- #
ALL_SPECS = [
    CollectiveSpec.broadcast(0),
    CollectiveSpec.multicast(0, (1, 3, 5, 7)),
    CollectiveSpec.scatter(0),
    CollectiveSpec.scatter(0, (2, 4, 6)),
    CollectiveSpec.reduce(0),
    CollectiveSpec.gather(0, (1, 2, 3)),
]


class TestEndToEnd:
    @pytest.mark.parametrize(
        "spec", ALL_SPECS, ids=lambda s: f"{s.kind.value}-{'sub' if s.targets else 'all'}"
    )
    @pytest.mark.parametrize("platform_fixture", ["platform", "tiers"])
    def test_all_kinds_solve_end_to_end(self, request, platform_fixture, spec):
        plat = request.getfixturevalue(platform_fixture)
        optimum = solve_collective_lp(plat, spec).throughput
        tree = build_collective_tree(plat, spec)
        report = collective_throughput(tree, spec)
        assert 0 < report.throughput <= optimum + 1e-9
        result = simulate_collective(tree, spec, num_slices=60, record_trace=False)
        assert result.relative_error() < 1e-6
        assert math.isclose(
            result.analytical_throughput, report.throughput, rel_tol=1e-12
        )

    def test_multicast_simulation_restricted_to_covered_nodes(self, platform):
        spec = CollectiveSpec.multicast(0, (1, 3, 5))
        tree = build_collective_tree(platform, spec)
        result = simulate_collective(tree, spec, num_slices=40, record_trace=False)
        assert set(result.arrival_times) == set(tree.nodes)
        # The event engine agrees with the fast path on covered arrivals.
        event = simulate_collective(tree, spec, num_slices=40, record_trace=True)
        assert set(event.arrival_times) == set(tree.nodes)
        for node in tree.nodes:
            assert np.allclose(
                result.arrival_times[node], event.arrival_times[node]
            ), node

    @pytest.mark.parametrize("model", [None, MultiPortModel(send_fraction=0.8)])
    def test_scatter_fast_path_matches_reference(self, platform, model):
        spec = CollectiveSpec.scatter(0, (1, 2, 4, 6, 8))
        tree = build_collective_tree(platform, spec, model=model, strict_model=False)
        fast = simulate_collective(tree, spec, num_slices=50, model=model)
        ref = simulate_collective(tree, spec, num_slices=50, model=model, fast=False)
        assert fast.arrival_times == ref.arrival_times
        assert fast.relative_error() < 1e-6

    def test_scatter_reference_exposed(self, platform):
        spec = CollectiveSpec.scatter(0, (1, 2))
        tree = build_collective_tree(platform, spec)
        arrivals = scatter_arrivals_reference(tree, 10)
        assert set(arrivals) == {1, 2}
        assert all(len(times) == 10 for times in arrivals.values())

    def test_scatter_rejects_routed_trees_and_greedy(self, platform):
        spec = CollectiveSpec.scatter(0, (1, 2, 3))
        routed = build_collective_tree(platform, spec, heuristic="binomial")
        if not routed.is_direct:
            with pytest.raises(SimulationError, match="direct"):
                simulate_collective(routed, spec, num_slices=10)
        direct = build_collective_tree(platform, spec)
        with pytest.raises(SimulationError, match="in-order"):
            simulate_collective(direct, spec, num_slices=10, policy="greedy")

    def test_routed_multicast_tree_accounts_for_relays(self):
        # A binomial multicast routes through relays outside tree.nodes;
        # their port occupation must enter the period analysis instead of
        # crashing it (and they must bound the throughput).
        plat = generate_random_platform(num_nodes=15, density=0.12, seed=0)
        spec = CollectiveSpec.multicast(0, (3, 7, 11))
        tree = build_collective_tree(plat, spec, heuristic="binomial")
        report = collective_throughput(tree, spec)
        relays = {
            n
            for (u, v) in tree.physical_edge_multiplicities()
            for n in (u, v)
        } - set(tree.nodes)
        assert report.throughput > 0
        for relay in relays:
            assert relay in report.periods
        # Routed trees never promised a tight steady-state match (the
        # in-order schedule stalls on relay chains, exactly like the
        # pre-existing spanning binomial simulation); just drive the event
        # engine end to end.
        result = simulate_collective(tree, spec, num_slices=50, record_trace=False)
        assert result.measured_throughput > 0
        assert set(result.arrival_times) == set(tree.nodes)

    def test_spec_targets_drive_the_analysis_not_tree_targets(self, platform):
        # A spanning tree asked to scatter to two targets only pays for two
        # targets' messages.
        tree = build_broadcast_tree(platform, 0, heuristic="grow-tree")
        narrow = CollectiveSpec.scatter(0, (1, 2))
        wide = CollectiveSpec.scatter(0)
        narrow_tp = collective_throughput(tree, narrow).throughput
        wide_tp = collective_throughput(tree, wide).throughput
        assert narrow_tp > wide_tp
        result = simulate_collective(tree, narrow, num_slices=50)
        assert set(result.arrival_times) == {0, 1, 2}
        assert result.relative_error() < 1e-6
        # Spec targets outside the tree's coverage are rejected.
        partial = build_collective_tree(platform, CollectiveSpec.multicast(0, (1, 3)))
        missing = next(n for n in platform.nodes if n not in partial.nodes)
        from repro.exceptions import TreeError

        with pytest.raises(TreeError, match="does not cover"):
            collective_throughput(partial, CollectiveSpec.multicast(0, (missing,)))

    def test_lp_heuristics_are_guided_by_the_spec_kind_lp(self, platform):
        from repro.core.lp_grow import LPGrowTree

        captured = {}

        class Spy(LPGrowTree):
            def _build(self, platform, source, model, size, lp_solution=None, **kw):
                captured["solution"] = lp_solution
                return super()._build(
                    platform, source, model, size, lp_solution=lp_solution, **kw
                )

        spec = CollectiveSpec.scatter(0, (1, 3, 5))
        tree = Spy().build(platform, spec=spec)
        assert captured["solution"] is not None
        assert captured["solution"].spec.kind is CollectiveKind.SCATTER
        assert {1, 3, 5} <= set(tree.nodes)

    def test_user_supplied_lp_solution_reoriented_for_reversed_kinds(self, platform):
        # A reduce solution reports flows on the original orientation; the
        # heuristic runs on the reversed platform, so build_collective_tree
        # must flip the guide back — the result equals letting the heuristic
        # solve the LP itself.
        spec = CollectiveSpec.reduce(0)
        solution = solve_collective_lp(platform, spec)
        supplied = build_collective_tree(
            platform, spec, heuristic="lp-grow-tree", lp_solution=solution
        )
        internal = build_collective_tree(platform, spec, heuristic="lp-grow-tree")
        assert supplied.same_structure_as(internal)

    def test_reduce_throughput_equals_broadcast_on_reversed(self, platform):
        spec = CollectiveSpec.reduce(0)
        tree = build_collective_tree(platform, spec)
        report = collective_throughput(tree, spec)
        from repro.analysis.throughput import tree_throughput

        assert math.isclose(
            report.throughput, tree_throughput(tree).throughput, rel_tol=1e-12
        )


# --------------------------------------------------------------------------- #
# Property-based consistency laws (hypothesis)
# --------------------------------------------------------------------------- #
from hypothesis import HealthCheck, Phase, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

# Same rationale as tests/test_properties.py: LP solves per example are not
# free, keep the count moderate and skip shrinking.
MODERATE = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    phases=(Phase.explicit, Phase.reuse, Phase.generate),
)

collective_cases = st.tuples(
    st.integers(min_value=5, max_value=13),      # nodes
    st.floats(min_value=0.15, max_value=0.5),    # density
    st.integers(min_value=0, max_value=10_000),  # platform seed
    st.data(),
)


def _random_case(nodes, density, seed, data):
    plat = generate_random_platform(num_nodes=nodes, density=density, seed=seed)
    others = [n for n in plat.nodes if n != 0]
    targets = tuple(
        data.draw(
            st.lists(
                st.sampled_from(others), min_size=1, max_size=len(others), unique=True
            ),
            label="targets",
        )
    )
    return plat, targets


class TestConsistencyLaws:
    @MODERATE
    @given(collective_cases)
    def test_multicast_full_is_broadcast_and_subset_matches_reference(self, case):
        nodes, density, seed, data = case
        plat, targets = _random_case(nodes, density, seed, data)
        full = CollectiveSpec.multicast(0, [n for n in plat.nodes if n != 0])
        assert_same_lp(
            build_collective_lp(plat, CollectiveSpec.broadcast(0)),
            build_collective_lp(plat, full),
        )
        sub = CollectiveSpec.multicast(0, targets)
        assert_same_lp(
            build_collective_lp(plat, sub),
            build_collective_lp_reference(plat, sub),
        )

    @MODERATE
    @given(collective_cases)
    def test_optima_ordering_and_duality(self, case):
        nodes, density, seed, data = case
        plat, targets = _random_case(nodes, density, seed, data)
        broadcast = solve_steady_state_lp(plat, 0).throughput
        multicast = solve_collective_lp(plat, CollectiveSpec.multicast(0, targets))
        scatter = solve_collective_lp(plat, CollectiveSpec.scatter(0, targets))
        assert multicast.throughput >= broadcast - 1e-7
        assert scatter.throughput <= multicast.throughput + 1e-7
        reduce_tp = solve_collective_lp(plat, CollectiveSpec.reduce(0)).throughput
        dual_tp = solve_steady_state_lp(plat.reversed(), 0).throughput
        assert math.isclose(reduce_tp, dual_tp, rel_tol=1e-7)
        gather_tp = solve_collective_lp(
            plat, CollectiveSpec.gather(0, targets)
        ).throughput
        dual_scatter = solve_collective_lp(
            plat.reversed(), CollectiveSpec.scatter(0, targets)
        ).throughput
        assert math.isclose(gather_tp, dual_scatter, rel_tol=1e-7)

    @MODERATE
    @given(collective_cases)
    def test_spec_aware_heuristics_full_targets_reproduce_broadcast(self, case):
        nodes, density, seed, data = case
        plat, _ = _random_case(nodes, density, seed, data)
        full = CollectiveSpec.multicast(0, [n for n in plat.nodes if n != 0])
        for name in ("grow-tree", "prune-degree", "prune-simple"):
            assert build_collective_tree(plat, full, heuristic=name).same_structure_as(
                build_broadcast_tree(plat, 0, heuristic=name)
            ), name

    @MODERATE
    @given(collective_cases)
    def test_multicast_trees_cover_and_simulate(self, case):
        nodes, density, seed, data = case
        plat, targets = _random_case(nodes, density, seed, data)
        spec = CollectiveSpec.multicast(0, targets)
        tree = build_collective_tree(plat, spec)
        assert set(targets) <= set(tree.nodes)
        assert all(leaf in targets for leaf in tree.leaves())
        # Deep relay chains can carry a startup transient past 40 slices;
        # 400 is comfortably inside the steady-state window for every shape
        # the strategy generates.
        result = simulate_collective(tree, spec, num_slices=400, record_trace=False)
        assert result.relative_error() < 1e-6
        # Scatter on the same tree shape: fast replay == reference replay.
        scatter = CollectiveSpec.scatter(0, targets)
        scatter_tree = build_collective_tree(plat, scatter)
        fast = simulate_collective(scatter_tree, scatter, num_slices=40)
        ref = simulate_collective(scatter_tree, scatter, num_slices=40, fast=False)
        assert fast.arrival_times == ref.arrival_times


# --------------------------------------------------------------------------- #
# Experiments artefact
# --------------------------------------------------------------------------- #
class TestCollectiveArtefact:
    def test_scaling_artefact_and_cache_replay(self, tmp_path):
        from dataclasses import replace

        from repro.experiments import (
            check_collective_scaling_shape,
            clear_ensemble_cache,
            collective_ensemble_records,
            collective_scaling,
            scaled_parameters,
        )

        params = replace(
            scaled_parameters(0.1, seed=7),
            collective_nodes=10,
            collective_target_counts=(2, 5, 9),
            collective_instances=2,
        )
        clear_ensemble_cache()
        records = collective_ensemble_records(params, cache_dir=tmp_path)
        assert len(records) == 2 * 3 * 2  # kinds x counts x instances
        figure = collective_scaling(params, records)
        check = check_collective_scaling_shape(figure)
        assert check.ok, check.render()
        # Cold replay from disk is bit-identical on the deterministic payload.
        clear_ensemble_cache()
        replayed = collective_ensemble_records(params, cache_dir=tmp_path)
        assert [r.deterministic_payload() for r in replayed] == [
            r.deterministic_payload() for r in records
        ]
        clear_ensemble_cache()


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestCollectiveCLI:
    @pytest.mark.parametrize(
        "argv",
        [
            ["collective", "--collective", "multicast", "--targets", "1,3,5"],
            ["collective", "--collective", "scatter", "--nodes", "10", "--density", "0.3"],
            ["collective", "--collective", "reduce", "--nodes", "10", "--density", "0.3"],
            ["collective", "--collective", "gather", "--targets", "1,2", "--show-tree"],
        ],
    )
    def test_collective_command_runs(self, capsys, argv):
        from repro.cli import main

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "LP optimum" in out
        assert "simulation relative error" in out

    def test_bad_targets_flag(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["collective", "--collective", "multicast", "--targets", "a,b"])
