"""Tests for the dynamic-job API surface: DynamicJob, DynamicResult, campaigns."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro import cli
from repro.api import (
    DYNAMIC_JOB_FORMAT_VERSION,
    DynamicJob,
    DynamicResult,
    PlatformRecipe,
    Session,
)
from repro.dynamics import TraceSpec
from repro.exceptions import ConfigError
from repro.experiments import (
    check_dynamic_scaling_shape,
    dynamic_ensemble_records,
    dynamic_jobs,
    dynamic_scaling,
    scaled_parameters,
)

RECIPE = PlatformRecipe.of("random", num_nodes=10, density=0.3, seed=3)
TRACE = TraceSpec(seed=5, horizon=4, drift=0.3, congestion_rate=0.3)


def tiny_parameters(**overrides):
    defaults = dict(
        dynamic_nodes=10, dynamic_density=0.3, dynamic_seeds=2, dynamic_horizon=4
    )
    defaults.update(overrides)
    return replace(scaled_parameters(0.1), **defaults)


class TestDynamicJob:
    def test_json_round_trip(self):
        job = DynamicJob(RECIPE, trace=TRACE, source=0, threshold=0.2)
        restored = DynamicJob.from_json(job.to_json())
        assert restored == job
        assert restored.cache_key() == job.cache_key()
        assert restored.trace == TRACE
        assert isinstance(restored.platform, PlatformRecipe)

    def test_payload_is_version_stamped(self):
        payload = DynamicJob(RECIPE).canonical_payload()
        assert payload["format_version"] == DYNAMIC_JOB_FORMAT_VERSION
        assert payload["kind"] == "dynamic"
        with pytest.raises(ConfigError):
            DynamicJob.from_dict({**payload, "format_version": 999})

    def test_cache_key_depends_on_trace_and_policy_knobs(self):
        job = DynamicJob(RECIPE, trace=TRACE)
        assert job.cache_key() == DynamicJob(RECIPE, trace=TRACE).cache_key()
        assert (
            job.cache_key()
            != DynamicJob(RECIPE, trace=replace(TRACE, seed=6)).cache_key()
        )
        assert job.cache_key() != job.but(threshold=0.3).cache_key()
        assert job.cache_key() != job.but(replan_cost=0.2).cache_key()

    def test_but_returns_modified_copy(self):
        job = DynamicJob(RECIPE, trace=TRACE)
        other = job.but(heuristic="lp-grow-tree")
        assert other.heuristic == "lp-grow-tree"
        assert other.trace == job.trace
        assert job.heuristic == "grow-tree"

    def test_describe_mentions_trace(self):
        text = DynamicJob(RECIPE, trace=TRACE).describe()
        assert "trace seed 5" in text
        assert "4 windows" in text

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heuristic": "nonsense"},
            {"model": "three-port"},
            {"send_fraction": 0.0},
            {"size": 0},
            {"threshold": 0.0},
            {"replan_cost": 1.0},
            {"policies": ()},
            {"policies": ("static", "wat")},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            DynamicJob(RECIPE, trace=TRACE, **kwargs)


class TestDynamicResult:
    def test_solve_dynamic_is_lazy(self):
        session = Session()
        result = session.solve_dynamic(DynamicJob(RECIPE, trace=TRACE))
        assert isinstance(result, DynamicResult)
        assert not result.is_materialized()
        assert result.ratios("adaptive")  # forces materialization
        assert result.is_materialized()

    def test_repeated_solves_are_bit_identical(self):
        session = Session()
        job = DynamicJob(RECIPE, trace=TRACE)
        first = session.solve_dynamic(job).deterministic_metrics()
        second = Session().solve_dynamic(job).deterministic_metrics()
        assert first == second

    def test_timeline_access_and_summary(self):
        session = Session()
        result = session.solve_dynamic(DynamicJob(RECIPE, trace=TRACE))
        assert result.replans("static") == 0
        assert result.replans("oracle") == TRACE.horizon
        assert 0.0 < result.mean_ratio("adaptive") <= 1.0 + 1e-9
        assert len(result.times) == TRACE.horizon + 1
        assert result.solve_seconds >= 0.0
        with pytest.raises(ConfigError, match="no timeline"):
            result.timeline("nonsense")
        summary = result.summary()
        for needle in ("static", "oracle", "adaptive", "replans"):
            assert needle in summary

    def test_json_round_trip_rejects_other_library_version(self):
        session = Session()
        result = session.solve_dynamic(DynamicJob(RECIPE, trace=TRACE))
        result.materialize()
        payload = json.loads(result.to_json())
        restored = DynamicResult.from_json(json.dumps(payload), session=Session())
        assert restored.deterministic_metrics() == result.deterministic_metrics()
        payload["version"] = "0.0.0-other"
        with pytest.raises(ConfigError, match="version"):
            DynamicResult.from_dict(payload, session=Session())

    def test_disk_cache_replay_skips_recompute(self, tmp_path, monkeypatch):
        job = DynamicJob(RECIPE, trace=TRACE)
        warm = Session(cache_dir=tmp_path)
        baseline = warm.solve_dynamic(job).deterministic_metrics()

        def boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("cache replay recomputed the campaign")

        monkeypatch.setattr("repro.dynamics.run_dynamic", boom)
        cold = Session(cache_dir=tmp_path)
        replayed = cold.solve_dynamic(job).deterministic_metrics()
        assert replayed == baseline


class TestDynamicCampaign:
    def test_jobs_share_recipe_and_differ_by_trace_seed(self):
        parameters = tiny_parameters(dynamic_seeds=3)
        jobs = dynamic_jobs(parameters)
        assert len(jobs) == 3
        assert len({job.platform_key() for job in jobs}) == 1
        assert len({job.trace.seed for job in jobs}) == 3
        assert len({job.cache_key() for job in jobs}) == 3

    def test_serial_records_deterministic(self, tmp_path):
        parameters = tiny_parameters()
        first = dynamic_ensemble_records(parameters, cache_dir=tmp_path / "a")
        second = dynamic_ensemble_records(parameters, cache_dir=tmp_path / "b")
        assert first == second
        assert all("solve_seconds" not in record for record in first)

    def test_warm_pool_matches_serial(self, tmp_path):
        parameters = tiny_parameters()
        serial = dynamic_ensemble_records(parameters, cache_dir=tmp_path / "s")
        pooled = dynamic_ensemble_records(
            parameters, jobs=2, cache_dir=tmp_path / "p"
        )
        assert pooled == serial

    def test_cache_replay_returns_stored_records(self, tmp_path, monkeypatch):
        parameters = tiny_parameters()
        first = dynamic_ensemble_records(parameters, cache_dir=tmp_path)

        def boom(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("cache replay recomputed a dynamic record")

        monkeypatch.setattr(
            "repro.experiments.dynamics._solve_dynamic_task", boom
        )
        assert dynamic_ensemble_records(parameters, cache_dir=tmp_path) == first

    def test_dynamic_scaling_shape_checks_pass(self):
        figure = dynamic_scaling(tiny_parameters())
        check = check_dynamic_scaling_shape(figure)
        assert check.ok, check.render()
        assert figure.replans["static"] == 0.0
        seeds = tiny_parameters().dynamic_seeds
        for counts in figure.samples_per_point.values():
            assert all(count == seeds for count in counts)
        rendered = figure.render()
        assert "re-plans" in rendered


class TestCliDynamic:
    def test_dynamic_subcommand_prints_policy_table(self, capsys):
        code = cli.main(
            [
                "dynamic",
                "--nodes",
                "10",
                "--density",
                "0.3",
                "--seed",
                "3",
                "--trace-seed",
                "5",
                "--horizon",
                "4",
                "--drift",
                "0.3",
                "--congestion",
                "0.3",
            ],
            session=Session(),
        )
        out = capsys.readouterr().out
        assert code == 0
        for needle in ("static", "oracle", "adaptive"):
            assert needle in out
