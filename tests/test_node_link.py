"""Unit tests for ProcessorNode and Link records."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidLinkError, PlatformError
from repro.platform.link import Link
from repro.platform.node import ProcessorNode


class TestProcessorNode:
    def test_defaults(self):
        node = ProcessorNode(name="p0")
        assert node.send_overhead is None
        assert node.recv_overhead is None
        assert node.level is None
        assert node.cluster is None

    def test_negative_overheads_rejected(self):
        with pytest.raises(PlatformError):
            ProcessorNode(name=0, send_overhead=-1.0)
        with pytest.raises(PlatformError):
            ProcessorNode(name=0, recv_overhead=-0.5)

    def test_with_send_overhead_returns_copy(self):
        node = ProcessorNode(name=0)
        updated = node.with_send_overhead(2.5)
        assert node.send_overhead is None
        assert updated.send_overhead == 2.5
        assert updated.name == node.name

    def test_with_recv_overhead_returns_copy(self):
        updated = ProcessorNode(name=0).with_recv_overhead(0.5)
        assert updated.recv_overhead == 0.5

    def test_round_trip_dict(self):
        node = ProcessorNode(
            name=3, send_overhead=1.0, level="lan", cluster=2, attributes={"rack": "A"}
        )
        rebuilt = ProcessorNode.from_dict(node.to_dict())
        assert rebuilt.name == 3
        assert rebuilt.send_overhead == 1.0
        assert rebuilt.level == "lan"
        assert rebuilt.cluster == 2
        assert rebuilt.attributes == {"rack": "A"}


class TestLink:
    def test_self_loop_rejected(self):
        with pytest.raises(InvalidLinkError):
            Link.with_transfer_time(0, 0, 1.0)

    def test_with_transfer_time(self):
        link = Link.with_transfer_time(0, 1, 2.5)
        assert link.transfer_time() == pytest.approx(2.5)
        assert link.send_time() == pytest.approx(2.5)
        assert link.recv_time() == pytest.approx(2.5)
        assert link.endpoints == (0, 1)

    def test_multi_port_occupations(self):
        link = Link.with_transfer_time(0, 1, 5.0, send_time=1.5, recv_time=0.5)
        assert link.send_time() == pytest.approx(1.5)
        assert link.recv_time() == pytest.approx(0.5)

    def test_from_bandwidth(self):
        link = Link.from_bandwidth("a", "b", bandwidth=50.0, startup=0.5)
        assert link.transfer_time(100.0) == pytest.approx(2.5)

    def test_reversed_swaps_endpoints_and_keeps_cost(self):
        link = Link.with_transfer_time(0, 1, 2.0, level="wan")
        back = link.reversed()
        assert back.endpoints == (1, 0)
        assert back.transfer_time() == pytest.approx(2.0)
        assert back.attributes == link.attributes

    def test_round_trip_dict(self):
        link = Link.with_transfer_time(2, 7, 3.25, send_time=1.0, color="blue")
        rebuilt = Link.from_dict(link.to_dict())
        assert rebuilt.endpoints == (2, 7)
        assert rebuilt.transfer_time() == pytest.approx(3.25)
        assert rebuilt.send_time() == pytest.approx(1.0)
        assert rebuilt.attributes == {"color": "blue"}
