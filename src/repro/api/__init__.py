"""Unified facade over the reproduction stack: declarative Jobs, cache-owning
Sessions, lazy Results.

Every workflow in this package — CLI commands, the experiments pipeline,
the examples, user code — reduces to the same sentence: *describe one
solve, hand it to an engine, read the metrics you need*.  The facade makes
that sentence the API:

* :class:`Job` — a frozen, declarative description of one solve: platform
  (inline or a named generator recipe), collective operation, heuristic,
  port model, message count/size, simulation on/off.  Jobs round-trip
  through versioned JSON (:meth:`Job.to_json` / :meth:`Job.from_json`).
* :class:`Session` — the engine.  It owns the LP solution cache, the
  shared platform instances (and thereby their compiled / reversed views),
  the built trees, the two-level result cache and the serial / process
  executors.  ``session.solve(job)`` returns a lazy :class:`Result`;
  ``session.solve_many(jobs)`` fans a batch out through the same caches.
* :class:`Result` — a lazy, memoized, serializable view: ``lp_bound``,
  ``tree``, ``throughput``, ``makespan``, ``simulation`` and
  ``relative_performance`` are computed on first access and cached.

Quick start
-----------
>>> from repro.api import Job, PlatformRecipe, Session
>>> session = Session()
>>> job = Job.broadcast(
...     PlatformRecipe.of("random", num_nodes=15, density=0.2, seed=42),
...     source=0, heuristic="grow-tree",
... )
>>> result = session.solve(job)
>>> 0 < result.relative_performance <= 1.0 + 1e-9
True
>>> session.solve(Job.from_json(job.to_json())).lp_bound == result.lp_bound
True
"""

from ..runtime import RetryPolicy, TaskFailure
from .dynamic import DYNAMIC_JOB_FORMAT_VERSION, DynamicJob, DynamicResult
from .job import JOB_FORMAT_VERSION, PLATFORM_GENERATORS, Job, PlatformRecipe
from .result import RESULT_FORMAT_VERSION, FailedResult, Result
from .session import Session, default_session

__all__ = [
    "JOB_FORMAT_VERSION",
    "RESULT_FORMAT_VERSION",
    "DYNAMIC_JOB_FORMAT_VERSION",
    "PLATFORM_GENERATORS",
    "Job",
    "PlatformRecipe",
    "Result",
    "FailedResult",
    "DynamicJob",
    "DynamicResult",
    "RetryPolicy",
    "TaskFailure",
    "Session",
    "default_session",
]
