"""Declarative description of one collective solve: the :class:`Job`.

A :class:`Job` freezes everything needed to reproduce one unit of work —
the platform (inline or as a named generator recipe), the collective
operation, the heuristic, the port model, the message count/size and
whether to cross-check with the discrete-event simulation — into one
immutable, JSON-round-trippable value.  Jobs are what the
:class:`~repro.api.Session` engine solves, what the CLI subcommands build,
and what the experiments pipeline fans out over worker processes.

Two jobs with the same :meth:`Job.canonical_payload` are the same work:
equality, hashing and every cache key in the facade derive from that
payload (plus the library version), so a batch solve, a repeated single
solve and a CLI invocation of the same description all share one cache
entry.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Callable, Mapping

from .._version import __version__
from ..collectives import CollectiveSpec
from ..exceptions import ConfigError
from ..models.port_models import MultiPortModel, OnePortModel, PortModel
from ..platform.generators.clusters import generate_cluster_platform
from ..platform.generators.random_graph import generate_random_platform
from ..platform.generators.structured import (
    generate_complete_platform,
    generate_grid_platform,
    generate_hypercube_platform,
    generate_ring_platform,
    generate_star_platform,
)
from ..platform.generators.tiers import generate_tiers_platform
from ..platform.graph import Platform
from ..platform.serialization import platform_from_dict, platform_to_dict
from ..runtime import stable_key

__all__ = [
    "JOB_FORMAT_VERSION",
    "PLATFORM_GENERATORS",
    "PlatformRecipe",
    "Job",
]

#: Version stamp embedded in every serialized job; bump on breaking changes
#: to the payload layout.
JOB_FORMAT_VERSION = 1

#: Named platform generators a :class:`PlatformRecipe` may reference.  All
#: are deterministic given their keyword parameters (including ``seed``).
PLATFORM_GENERATORS: dict[str, Callable[..., Platform]] = {
    "random": generate_random_platform,
    "tiers": generate_tiers_platform,
    "cluster": generate_cluster_platform,
    "star": generate_star_platform,
    "ring": generate_ring_platform,
    "grid": generate_grid_platform,
    "hypercube": generate_hypercube_platform,
    "complete": generate_complete_platform,
}

_PORT_MODELS = ("one-port", "multi-port")


@dataclass(frozen=True)
class PlatformRecipe:
    """A named, deterministic platform-generation recipe.

    ``PlatformRecipe("random", num_nodes=20, density=0.12, seed=0)`` stands
    for the platform :func:`~repro.platform.generators.random_graph.generate_random_platform`
    would return for those keywords.  Recipes keep jobs small and fully
    declarative (no graph payload), and two jobs built from the same recipe
    share one platform instance — and therefore one LP solve — inside a
    :class:`~repro.api.Session`.
    """

    generator: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.generator not in PLATFORM_GENERATORS:
            raise ConfigError(
                f"unknown platform generator {self.generator!r}; "
                f"available: {sorted(PLATFORM_GENERATORS)}"
            )
        # A read-only view: recipes are declarative values, so nobody may
        # mutate the parameters behind the memoized job payloads and keys.
        object.__setattr__(self, "params", MappingProxyType(dict(self.params)))

    def __hash__(self) -> int:
        # The generated dataclass hash would choke on the mapping field.
        return hash((self.generator, stable_key(dict(self.params))))

    def __reduce__(self):
        # MappingProxyType is not picklable; rebuild from plain data.
        return (PlatformRecipe, (self.generator, dict(self.params)))

    @classmethod
    def of(cls, generator: str, **params: Any) -> "PlatformRecipe":
        """Keyword-style constructor: ``PlatformRecipe.of("random", num_nodes=20)``."""
        return cls(generator, params)

    def build(self) -> Platform:
        """Instantiate the platform this recipe describes."""
        return PLATFORM_GENERATORS[self.generator](**self.params)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {"generator": self.generator, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformRecipe":
        """Rebuild from :meth:`to_dict` output."""
        return cls(data["generator"], dict(data.get("params", {})))


def platform_payload(platform: "Platform | PlatformRecipe") -> dict[str, Any]:
    """Canonical JSON payload of an inline platform or a recipe.

    Inline serializations are memoized *on the platform instance* per
    mutation epoch, so the many jobs an evaluation builds on one platform
    share a single ``platform_to_dict`` pass instead of each paying it.
    """
    if isinstance(platform, PlatformRecipe):
        return {"recipe": platform.to_dict()}
    if isinstance(platform, Platform):
        memo = getattr(platform, "_job_payload_memo", None)
        if memo is None or memo[0] != platform.mutation_epoch:
            memo = (platform.mutation_epoch, {"inline": platform_to_dict(platform)})
            platform._job_payload_memo = memo
        return memo[1]
    raise ConfigError(
        f"job platform must be a Platform or a PlatformRecipe, "
        f"got {type(platform).__name__}"
    )


def platform_from_payload(data: Mapping[str, Any]) -> "Platform | PlatformRecipe":
    """Inverse of :func:`platform_payload`."""
    if "recipe" in data:
        return PlatformRecipe.from_dict(data["recipe"])
    if "inline" in data:
        return platform_from_dict(data["inline"])
    raise ConfigError(
        f"platform payload must contain 'recipe' or 'inline', got {sorted(data)}"
    )


@dataclass(frozen=True, eq=False)
class Job:
    """One frozen, declarative solve description.

    Parameters
    ----------
    platform:
        The target platform, either inline (a :class:`~repro.platform.graph.Platform`)
        or as a :class:`PlatformRecipe` naming a generator and its
        parameters.
    collective:
        The collective operation to optimise (a
        :class:`~repro.collectives.CollectiveSpec`).
    heuristic:
        Registry name of the tree heuristic (see
        :func:`repro.core.registry.available_heuristics`).
    model:
        Port model name: ``"one-port"`` (paper default) or ``"multi-port"``.
    send_fraction:
        Send-overhead fraction of the multi-port model (ignored under
        one-port).
    num_slices:
        Number of message slices for the makespan analysis and the
        simulation cross-check.
    size:
        Message-slice size override; ``None`` uses the platform slice size.
    simulate:
        Whether a batch solve materialises the discrete-event simulation
        cross-check (the :attr:`Result.simulation` view is always available
        lazily).

    A job's identity (equality, hash, cache keys) *is* its canonical
    payload.  A job holding an inline :class:`Platform` therefore inherits
    the platform's mutability: mutating the platform changes the job's
    identity — by design for cache correctness, but it means such jobs are
    unreliable set/dict members across mutations.  Use a
    :class:`PlatformRecipe` (immutable) where stable hashing matters.
    """

    platform: "Platform | PlatformRecipe"
    collective: CollectiveSpec
    heuristic: str = "grow-tree"
    model: str = "one-port"
    send_fraction: float = 0.8
    num_slices: int = 50
    size: float | None = None
    simulate: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.platform, (Platform, PlatformRecipe)):
            raise ConfigError(
                f"job platform must be a Platform or a PlatformRecipe, "
                f"got {type(self.platform).__name__}"
            )
        if not isinstance(self.collective, CollectiveSpec):
            raise ConfigError(
                f"job collective must be a CollectiveSpec, "
                f"got {type(self.collective).__name__}"
            )
        if self.model not in _PORT_MODELS:
            raise ConfigError(
                f"unknown port model {self.model!r}; available: {list(_PORT_MODELS)}"
            )
        if not 0.0 < self.send_fraction <= 1.0:
            raise ConfigError(
                f"send_fraction must lie in (0, 1], got {self.send_fraction!r}"
            )
        if self.num_slices < 1:
            raise ConfigError(f"num_slices must be >= 1, got {self.num_slices!r}")
        if self.size is not None and self.size <= 0:
            raise ConfigError(f"size must be positive, got {self.size!r}")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def broadcast(
        cls, platform: "Platform | PlatformRecipe", source: Any = 0, **options: Any
    ) -> "Job":
        """A broadcast job from ``source`` (the paper's core workload)."""
        return cls(platform, CollectiveSpec.broadcast(source), **options)

    @classmethod
    def of_collective(
        cls,
        platform: "Platform | PlatformRecipe",
        kind: str,
        source: Any = 0,
        targets: Any = None,
        **options: Any,
    ) -> "Job":
        """A job for any collective kind / target set."""
        return cls(platform, CollectiveSpec(kind, source, targets), **options)

    def but(self, **changes: Any) -> "Job":
        """A copy of this job with some fields replaced (``dataclasses.replace``)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Derived configuration
    # ------------------------------------------------------------------ #
    def port_model(self) -> PortModel:
        """Instantiate the port model this job runs under."""
        if self.model == "multi-port":
            return MultiPortModel(send_fraction=self.send_fraction)
        return OnePortModel()

    # ------------------------------------------------------------------ #
    # Serialization and identity
    # ------------------------------------------------------------------ #
    def _platform_epoch(self) -> int:
        """Mutation epoch of an inline platform (-1 for immutable recipes).

        Payload/key memoization is invalidated when this changes, so a job
        holding a platform that was mutated after the first serialization
        does not keep handing out the stale snapshot.
        """
        if isinstance(self.platform, Platform):
            return self.platform.mutation_epoch
        return -1

    def _payload_view(self) -> dict[str, Any]:
        """The memoized payload — shared and read-only; internal fast path.

        Serializing an inline platform is O(nodes + links); the payload is
        memoized per platform mutation epoch so repeated key derivations
        (every cache lookup in the facade) pay it once.  Never hand this
        object out: its nested dicts are the memo itself.
        """
        epoch = self._platform_epoch()
        cached = self.__dict__.get("_payload_cache")
        if cached is None or cached[0] != epoch:
            payload = {
                "format_version": JOB_FORMAT_VERSION,
                "platform": platform_payload(self.platform),
                "collective": {
                    "kind": self.collective.kind.value,
                    "source": self.collective.source,
                    "targets": (
                        None
                        if self.collective.targets is None
                        else list(self.collective.targets)
                    ),
                },
                "heuristic": self.heuristic,
                "model": self.model,
                "send_fraction": self.send_fraction,
                "num_slices": self.num_slices,
                "size": self.size,
                "simulate": self.simulate,
            }
            object.__setattr__(self, "_payload_cache", (epoch, payload))
        else:
            payload = cached[1]
        return payload

    def canonical_payload(self) -> dict[str, Any]:
        """The versioned JSON payload that *is* this job's identity.

        Returns an independent deep copy: mutating it (e.g. to derive a
        variant description for :meth:`from_dict`) cannot corrupt the
        memoized payload behind this job's cache keys.
        """
        return copy.deepcopy(self._payload_view())

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialise to JSON; inverse of :meth:`from_json`."""
        return json.dumps(self._payload_view(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        """Rebuild a job from :meth:`canonical_payload` output."""
        version = data.get("format_version", JOB_FORMAT_VERSION)
        if version != JOB_FORMAT_VERSION:
            raise ConfigError(
                f"unsupported job format version {version!r} "
                f"(this build understands {JOB_FORMAT_VERSION})"
            )
        collective = data["collective"]
        targets = collective.get("targets")
        return cls(
            platform=platform_from_payload(data["platform"]),
            collective=CollectiveSpec(
                collective["kind"],
                collective["source"],
                None if targets is None else tuple(targets),
            ),
            heuristic=data.get("heuristic", "grow-tree"),
            model=data.get("model", "one-port"),
            send_fraction=float(data.get("send_fraction", 0.8)),
            num_slices=int(data.get("num_slices", 50)),
            size=data.get("size"),
            simulate=bool(data.get("simulate", False)),
        )

    @classmethod
    def from_json(cls, text: str) -> "Job":
        """Rebuild a job from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # -- keys ---------------------------------------------------------- #
    def _keys(self) -> dict[str, str]:
        """The three derived cache keys, memoized per platform epoch."""
        epoch = self._platform_epoch()
        cached = self.__dict__.get("_key_cache")
        if cached is None or cached[0] != epoch:
            payload = self._payload_view()
            tree_payload = dict(payload)
            for name in ("num_slices", "simulate"):
                tree_payload.pop(name)
            keys = {
                "platform": stable_key(payload["platform"]),
                "tree": stable_key(tree_payload),
                "cache": stable_key({"job": payload, "version": __version__}),
            }
            object.__setattr__(self, "_key_cache", (epoch, keys))
            return keys
        return cached[1]

    def platform_key(self) -> str:
        """Stable key of the platform alone (shared by jobs on one platform)."""
        return self._keys()["platform"]

    def tree_key(self) -> str:
        """Stable key of everything that determines the built tree."""
        return self._keys()["tree"]

    def cache_key(self) -> str:
        """Stable result-cache key: full payload plus the library version."""
        return self._keys()["cache"]

    # -- identity ------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Job):
            return NotImplemented
        return self._payload_view() == other._payload_view()

    def __hash__(self) -> int:
        return hash(self.cache_key())

    def describe(self) -> str:
        """Short human-readable label used in logs and progress output."""
        if isinstance(self.platform, PlatformRecipe):
            where = f"{self.platform.generator} recipe"
        else:
            where = self.platform.name
        return (
            f"{self.collective.describe()} on {where} "
            f"[{self.heuristic}, {self.model}]"
        )
