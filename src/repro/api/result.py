"""Lazy, memoized, serializable view of one solved :class:`~repro.api.Job`.

A :class:`Result` never computes anything in its constructor: every
property — :attr:`lp_bound`, :attr:`tree`, :attr:`throughput`,
:attr:`makespan`, :attr:`simulation`, :attr:`relative_performance` — is
computed on first access through the owning
:class:`~repro.api.Session` (which memoizes LP solutions, platforms and
trees across results) and stored in the result's *metric payload*, a plain
JSON dictionary.  :meth:`materialize` forces the job's standard metric set
(what batch solves and the on-disk cache store); :meth:`to_json` /
:meth:`from_json` round-trip the payload together with the job, so results
survive process boundaries and cache files without dragging live graph
objects along.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Mapping

from .._version import __version__
from ..exceptions import ConfigError, JobFailedError
from ..runtime import TaskFailure
from .job import Job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.makespan import MakespanReport
    from ..analysis.throughput import ThroughputReport
    from ..core.tree import BroadcastTree
    from ..lp.solution import SteadyStateSolution
    from ..platform.graph import Platform
    from ..simulation.broadcast import SimulationResult
    from .session import Session

__all__ = [
    "RESULT_FORMAT_VERSION",
    "BASE_METRICS",
    "SIMULATION_METRICS",
    "TIMING_METRICS",
    "Result",
    "FailedResult",
]

#: Version stamp embedded in every serialized result.
RESULT_FORMAT_VERSION = 1

#: Metric keys every materialized result carries.
BASE_METRICS = (
    "lp_bound",
    "throughput",
    "relative_performance",
    "lp_seconds",
    "build_seconds",
)

#: Extra metric keys materialized when the job asks for simulation.
SIMULATION_METRICS = (
    "makespan",
    "simulated_throughput",
    "simulation_error",
    "simulation_makespan",
)

#: Wall-clock metrics: vary run to run, excluded from determinism checks.
TIMING_METRICS = ("lp_seconds", "build_seconds")


class Result:
    """What one job produced; see the module docstring for the contract.

    Results are created by :meth:`Session.solve` / :meth:`Session.solve_many`
    or restored with :meth:`from_json`; they are cheap handles (job +
    session), safe to create repeatedly for the same job.
    """

    __slots__ = ("job", "_session")

    def __init__(self, job: Job, session: "Session") -> None:
        self.job = job
        self._session = session

    # ------------------------------------------------------------------ #
    # Failure-as-data surface
    # ------------------------------------------------------------------ #
    @property
    def ok(self) -> bool:
        """Whether this result carries metrics (``False`` on :class:`FailedResult`)."""
        return True

    @property
    def error(self) -> "TaskFailure | None":
        """The structured failure record, or ``None`` for a successful result."""
        return None

    # ------------------------------------------------------------------ #
    # Payload plumbing
    # ------------------------------------------------------------------ #
    @property
    def _payload(self) -> dict[str, Any]:
        return self._session._payload(self.job)

    def metrics(self) -> dict[str, Any]:
        """Snapshot of the computed metric payload (no computation)."""
        return dict(self._payload)

    def deterministic_metrics(self) -> dict[str, Any]:
        """Metric snapshot minus the timing fields.

        Two solves of the same job — single or batched, serial or across
        worker processes, fresh or replayed from cache — must agree exactly
        on this payload.
        """
        payload = self.metrics()
        for name in TIMING_METRICS:
            payload.pop(name, None)
        return payload

    def is_materialized(self) -> bool:
        """Whether the job's standard metric set has been computed."""
        required = BASE_METRICS + (SIMULATION_METRICS if self.job.simulate else ())
        payload = self._payload
        return all(name in payload for name in required)

    def materialize(self) -> "Result":
        """Compute (and memoize) the job's standard metric set.

        Always: the LP bound, the tree throughput and the relative
        performance.  When ``job.simulate`` is set: the pipelined makespan
        and the discrete-event simulation cross-check as well.
        """
        _ = self.lp_bound
        _ = self.throughput
        _ = self.relative_performance
        payload = self._payload
        payload.setdefault("lp_seconds", 0.0)
        payload.setdefault("build_seconds", 0.0)
        if self.job.simulate:
            _ = self.makespan
            if "simulated_throughput" not in payload:
                self._session.simulation_for(self.job)
        # Single solves honour the session's on-disk cache too, not just
        # solve_many batches.
        self._session._persist(self.job)
        return self

    # ------------------------------------------------------------------ #
    # Lazy views
    # ------------------------------------------------------------------ #
    @property
    def platform(self) -> "Platform":
        """The resolved platform instance (shared across the session)."""
        return self._session.platform_for(self.job)

    @property
    def lp_solution(self) -> "SteadyStateSolution":
        """The full steady-state LP solution of the job's collective."""
        return self._session.lp_solution_for(self.job)

    @property
    def lp_bound(self) -> float:
        """The multi-tree LP optimal throughput (the paper's reference)."""
        payload = self._payload
        if "lp_bound" not in payload:
            self._session.lp_solution_for(self.job)
        return payload["lp_bound"]

    @property
    def tree(self) -> "BroadcastTree":
        """The single tree the job's heuristic built."""
        return self._session.tree_for(self.job)

    @property
    def report(self) -> "ThroughputReport":
        """Full throughput report (per-node periods, bottleneck, ...)."""
        return self._session.report_for(self.job)

    @property
    def throughput(self) -> float:
        """Steady-state throughput of the built tree under the job's model."""
        payload = self._payload
        if "throughput" not in payload:
            self._session.report_for(self.job)
        return payload["throughput"]

    @property
    def relative_performance(self) -> float:
        """Tree throughput over the LP bound (the paper's headline metric)."""
        payload = self._payload
        if "relative_performance" not in payload:
            payload["relative_performance"] = self.throughput / self.lp_bound
        return payload["relative_performance"]

    @property
    def makespan(self) -> float:
        """Makespan of the canonical pipelined schedule of ``num_slices`` slices."""
        payload = self._payload
        if "makespan" not in payload:
            self._session.makespan_for(self.job)
        return payload["makespan"]

    @property
    def makespan_report(self) -> "MakespanReport":
        """Full makespan report (arrival times, critical path, ...)."""
        return self._session.makespan_for(self.job)

    @property
    def simulation(self) -> "SimulationResult":
        """Discrete-event simulation cross-check of ``num_slices`` rounds.

        The full :class:`~repro.simulation.broadcast.SimulationResult` is
        computed locally on first access; the scalar summary
        (:attr:`simulated_throughput`, :attr:`simulation_error`) travels
        with the serialized payload instead.
        """
        return self._session.simulation_for(self.job)

    @property
    def simulated_throughput(self) -> float:
        """Steady-state throughput measured by the simulation."""
        payload = self._payload
        if "simulated_throughput" not in payload:
            self._session.simulation_for(self.job)
        return payload["simulated_throughput"]

    @property
    def simulation_error(self) -> float:
        """Relative gap between simulated and analytical throughput."""
        payload = self._payload
        if "simulation_error" not in payload:
            self._session.simulation_for(self.job)
        return payload["simulation_error"]

    @property
    def lp_seconds(self) -> float:
        """Wall-clock seconds this job spent solving the LP (0 on reuse)."""
        return self._payload.get("lp_seconds", 0.0)

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds this job spent building the tree (0 on reuse)."""
        return self._payload.get("build_seconds", 0.0)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Versioned JSON payload: the job plus its materialized metrics."""
        self.materialize()
        return {
            "format_version": RESULT_FORMAT_VERSION,
            "version": __version__,
            "job": self.job.canonical_payload(),
            "metrics": self.metrics(),
        }

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialise to JSON; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def wire_dict(self) -> dict[str, Any]:
        """The solve service's per-job wire form.

        :meth:`to_dict` plus an explicit ``"ok"`` discriminator, so clients
        branch on one boolean instead of probing for the ``"error"`` key —
        the contract documented in the README's Service section.  Works for
        both successful results (``ok: true`` + ``"metrics"``) and
        :class:`FailedResult` records (``ok: false`` + ``"error"``).
        """
        data = self.to_dict()
        data["ok"] = self.ok
        return data

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, session: "Session | None" = None
    ) -> "Result":
        """Restore a result; metrics are adopted, lazy views recompute on demand."""
        version = data.get("format_version", RESULT_FORMAT_VERSION)
        if version != RESULT_FORMAT_VERSION:
            raise ConfigError(
                f"unsupported result format version {version!r} "
                f"(this build understands {RESULT_FORMAT_VERSION})"
            )
        library = data.get("version")
        if library != __version__:
            # Adopting metrics computed by another library version would
            # smuggle stale numbers into current-version cache entries —
            # the staleness the version-keyed cache scheme exists to stop.
            raise ConfigError(
                f"result was produced by library version {library!r}; "
                f"this is {__version__!r} — re-solve the job instead"
            )
        if session is None:
            from .session import default_session  # local: avoid cycle

            session = default_session()
        job = Job.from_dict(data["job"])
        if "error" in data:
            return FailedResult(job, session, TaskFailure.from_dict(data["error"]))
        payload = session._payload(job)
        for name, value in data.get("metrics", {}).items():
            payload.setdefault(name, value)
        return cls(job, session)

    @classmethod
    def from_json(cls, text: str, *, session: "Session | None" = None) -> "Result":
        """Rebuild a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text), session=session)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        computed = sorted(self._payload)
        return f"Result({self.job.describe()}, computed={computed})"


class FailedResult(Result):
    """The failure variant of :class:`Result`: a job whose solve failed.

    Produced by ``Session.solve_many(..., on_error="collect")`` when a job
    exhausts its :class:`~repro.runtime.RetryPolicy`.  Carries the
    structured :class:`~repro.runtime.TaskFailure` instead of metrics:
    :attr:`ok` is ``False``, :attr:`error` holds the record, and touching
    any metric raises :class:`~repro.exceptions.JobFailedError` (a
    :class:`~repro.exceptions.ReproError`) naming the failure — failure is
    data until the caller actually needs the missing number.

    Serializes/restores through the same versioned envelope as
    :class:`Result` (an ``"error"`` entry in place of ``"metrics"``), so
    failed records survive JSON round-trips alongside successful ones.
    """

    __slots__ = ("failure",)

    def __init__(self, job: Job, session: "Session", failure: TaskFailure) -> None:
        super().__init__(job, session)
        self.failure = failure

    @property
    def ok(self) -> bool:
        return False

    @property
    def error(self) -> TaskFailure:
        return self.failure

    def _unavailable(self, what: str) -> JobFailedError:
        return JobFailedError(
            f"{what} is unavailable: job {self.job.describe()} failed "
            f"({self.failure.summary()})",
            self.failure,
        )

    def metrics(self) -> dict[str, Any]:
        return {}

    def deterministic_metrics(self) -> dict[str, Any]:
        return {}

    def is_materialized(self) -> bool:
        return False

    def materialize(self) -> "Result":
        raise self._unavailable("materialize()")

    def to_dict(self) -> dict[str, Any]:
        return {
            "format_version": RESULT_FORMAT_VERSION,
            "version": __version__,
            "job": self.job.canonical_payload(),
            "error": self.failure.to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FailedResult({self.job.describe()}, {self.failure.summary()!r})"


def _failed_metric(name: str) -> property:
    def getter(self: FailedResult) -> Any:
        raise self._unavailable(f"metric {name!r}")

    getter.__name__ = name
    getter.__doc__ = f"Raises :class:`JobFailedError`; the job failed."
    return property(getter)


for _name in (
    "platform",
    "lp_solution",
    "lp_bound",
    "tree",
    "report",
    "throughput",
    "relative_performance",
    "makespan",
    "makespan_report",
    "simulation",
    "simulated_throughput",
    "simulation_error",
    "lp_seconds",
    "build_seconds",
):
    setattr(FailedResult, _name, _failed_metric(_name))
del _name
