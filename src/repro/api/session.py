"""The cache- and executor-owning engine of the facade: :class:`Session`.

One :class:`Session` owns every piece of shared state a solve needs:

* the **LP solution cache** (:class:`~repro.lp.solver.LPSolutionCache`),
  keyed by platform identity / spec / size, so every heuristic, metric and
  CLI command on one platform pays for its LP exactly once;
* the **platform instances** resolved from jobs (inline or recipe) — the
  session hands out one shared :class:`~repro.platform.graph.Platform` per
  distinct platform payload, which also makes the per-platform compiled
  and reversed views (``platform.compiled()`` / ``platform.reversed()``)
  session-owned;
* the **built trees** and throughput reports, keyed by the job fields that
  determine them (platform, collective, heuristic, model, size);
* the **result cache** (:class:`~repro.runtime.ResultCache`): an in-memory
  plus optional on-disk store of materialized metric payloads, keyed by
  the job's canonical payload and the library version;
* the **executor** (:class:`~repro.runtime.SerialExecutor` /
  :class:`~repro.runtime.ProcessExecutor`): :meth:`Session.solve_many`
  fans a batch out through it, so batch work and single solves share one
  code path and one cache keying scheme.

``session.solve(job)`` is lazy — it returns a
:class:`~repro.api.Result` immediately and computes on attribute access;
``session.solve_many(jobs)`` materializes every job's standard metric set
(through worker processes when the session was built with ``jobs > 1``)
and persists the payloads into the result cache.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import Any, Iterable

from .._version import __version__
from ..analysis.makespan import MakespanReport, pipelined_makespan
from ..analysis.throughput import ThroughputReport, collective_throughput
from ..core.registry import build_collective_tree, get_heuristic
from ..core.tree import BroadcastTree
from ..exceptions import ConfigError, ReproError
from ..lp.solution import SteadyStateSolution
from ..lp.solver import LPSolutionCache
from ..platform.graph import Platform
from ..runtime import (
    BoundedCache,
    ByteBudget,
    ProcessExecutor,
    ResultCache,
    RetryPolicy,
    SerialExecutor,
    SupervisedExecutor,
    TaskExecutor,
    TaskFailure,
    approx_nbytes,
    stable_key,
)
from ..simulation.broadcast import SimulationResult
from ..simulation.collective import simulate_collective
from .job import Job, PlatformRecipe, platform_payload
from .result import FailedResult, Result

__all__ = ["Session", "default_session"]


def _tree_nbytes(tree: "BroadcastTree") -> int:
    """Tree cache charge: own structure + compiled arrays, not the platform.

    The platform a tree points back into is charged by the platform cache;
    counting it again here would make every tree look platform-sized and
    starve the tree cache under a shared byte budget.
    """
    total = approx_nbytes(tree.parents) + approx_nbytes(tree.routes)
    for view in tree.__dict__.get("_compiled_tree_cache", {}).values():
        total += view.nbytes
    return total


class Session:
    """See the module docstring; this is the facade's engine.

    Parameters
    ----------
    jobs:
        Worker processes for :meth:`solve_many`; 1 (the default) solves
        batches in-process.
    cache_dir:
        Optional directory persisting materialized results on disk, keyed
        by job payload and library version.
    executor:
        Explicit executor instance (overrides ``jobs``).
    retry_policy:
        How :meth:`solve_many` supervises its tasks — per-attempt timeout,
        retry budget, backoff (see :class:`~repro.runtime.RetryPolicy`).
        Defaults to ``RetryPolicy()`` (two retries, no timeout).
    lp_cache / result_cache:
        Pre-built caches (advanced; lets several sessions share state).
    max_cache_entries / max_cache_bytes:
        Budgets for the session-owned caches.  ``max_cache_entries`` bounds
        each memo cache (platforms, trees, reports, makespans, simulations,
        metric payloads, LP solutions) individually; ``max_cache_bytes`` is
        *one shared byte ceiling* across all of them, enforced by global
        least-recently-used eviction (:class:`~repro.runtime.ByteBudget`).
        Evicted entries are recomputed (or re-read from the disk result
        cache) on the next access — correctness is unaffected, memory stays
        bounded, which is what a long-lived solve service needs.  The
        defaults (``None``) keep the historical unbounded behaviour.

    Error handling
    --------------
    Every failure the facade raises derives from
    :class:`~repro.exceptions.ReproError`, so ``except ReproError`` around a
    solve catches everything the library can throw — invalid jobs, LP
    failures, heuristic errors, timeouts, crashed workers and injected
    faults alike.  With ``solve_many(..., on_error="collect")`` failures do
    not raise at all: they come back as
    :class:`~repro.api.result.FailedResult` records.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: str | os.PathLike[str] | None = None,
        executor: TaskExecutor | None = None,
        retry_policy: RetryPolicy | None = None,
        lp_cache: LPSolutionCache | None = None,
        result_cache: ResultCache | None = None,
        max_cache_entries: int | None = None,
        max_cache_bytes: int | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if executor is None:
            executor = SerialExecutor() if jobs == 1 else ProcessExecutor(jobs)
        self.executor = executor
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        #: Shared byte ceiling across every session-owned cache (or None).
        self.cache_budget = (
            ByteBudget(max_cache_bytes) if max_cache_bytes is not None else None
        )

        def bounded(name: str, sizeof: Any = None) -> BoundedCache:
            return BoundedCache(
                max_cache_entries,
                budget=self.cache_budget,
                sizeof=sizeof,
                name=name,
            )

        self.lp_cache = (
            lp_cache
            if lp_cache is not None
            else LPSolutionCache(max_cache_entries, budget=self.cache_budget)
        )
        self.results = (
            result_cache
            if result_cache is not None
            else ResultCache(
                cache_dir,
                prefix="job",
                version=__version__,
                memory=bounded("result-rows"),
            )
        )
        # Platform entries record the instance's mutation epoch at insert:
        # a platform mutated after registration is a miss, not a stale hit.
        self._platforms: BoundedCache = bounded("platforms")
        self._trees: BoundedCache = bounded("trees", sizeof=_tree_nbytes)
        self._reports: BoundedCache = bounded("reports")
        self._makespans: BoundedCache = bounded("makespans")
        self._simulations: BoundedCache = bounded("simulations")
        self._payloads: BoundedCache = bounded("payloads")
        # Metric-key count at last persist per job; metrics only ever grow
        # (setdefault), so an unchanged count means nothing new to write.
        # Entry-bounded only: the values are a handful of bytes each.
        self._persisted: BoundedCache = BoundedCache(
            max_cache_entries, name="persisted"
        )
        # Wall-clock of the *actual* solve per LP identity: every job that
        # shares an LP reports the platform's real solve time, not the
        # near-zero cache-hit time of whoever asked second.
        self._lp_times: BoundedCache = BoundedCache(
            max_cache_entries, name="lp-times"
        )

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def solve(self, job: Job) -> Result:
        """Return the lazy :class:`Result` of ``job``.

        Nothing is computed here: previously materialized metrics (from an
        earlier solve in this session or from the on-disk cache) are
        attached, everything else is computed on first attribute access and
        memoized.
        """
        self._payload(job)
        return Result(job, self)

    def solve_many(
        self,
        jobs: Iterable[Job],
        *,
        materialize: bool = True,
        on_error: str = "raise",
        retry_policy: RetryPolicy | None = None,
    ) -> list[Result]:
        """Solve a batch of jobs, fanning out through the session executor.

        Already-cached jobs are skipped; the remainder runs through
        :class:`~repro.runtime.SerialExecutor` in-process or ships as JSON
        to a :class:`~repro.runtime.ProcessExecutor` pool.  Either way the
        metric payloads are bit-identical to sequential :meth:`solve` calls
        (timing fields excepted) and end up in the session's result cache.

        Tasks are supervised under the session's
        :class:`~repro.runtime.RetryPolicy`: transient failures (injected or
        organic) are retried with backoff, hung tasks are timed out, and a
        crashed worker process is respawned once before the surviving items
        fall back to in-process execution.

        ``on_error`` selects what a *permanent* failure does:

        * ``"raise"`` (default): re-raise the job's original exception —
          always a :class:`~repro.exceptions.ReproError` for library
          failures.
        * ``"collect"``: every failed job becomes a
          :class:`~repro.api.result.FailedResult` in the returned list
          (successful batch-mates are unaffected), letting campaigns keep
          going and account for failures afterwards.

        ``retry_policy`` overrides the session policy for this call only —
        the solve service uses it to thread each request's remaining
        deadline into the per-task timeouts.
        """
        if on_error not in ("raise", "collect"):
            raise ConfigError(
                f"on_error must be 'raise' or 'collect', got {on_error!r}"
            )
        policy = retry_policy if retry_policy is not None else self.retry_policy
        batch = list(jobs)
        results = [self.solve(job) for job in batch]
        if not materialize:
            return results
        # Deduplicate by job identity: equal jobs share one payload, so one
        # representative per cache key is enough (and worker processes must
        # not each pay the full solve for the same description).
        pending = []
        dispatched: set[str] = set()
        for i, result in enumerate(results):
            if result.is_materialized():
                continue
            key = batch[i].cache_key()
            if key in dispatched:
                continue
            dispatched.add(key)
            pending.append(i)
        failures: dict[str, TaskFailure] = {}
        if pending:
            if isinstance(self.executor, ProcessExecutor):
                self._solve_pending_process(
                    batch, pending, on_error, failures, policy
                )
            else:
                self._solve_pending_inprocess(
                    batch, results, pending, on_error, failures, policy
                )
        if failures:
            # Twins deduplicated away share their representative's fate.
            for i, job in enumerate(batch):
                failure = failures.get(job.cache_key())
                if failure is not None:
                    results[i] = FailedResult(job, self, failure)
        for i, job in enumerate(batch):
            if results[i].ok:
                self._persist(job)
        return results

    def _solve_pending_inprocess(
        self,
        batch: "list[Job]",
        results: "list[Result]",
        pending: "list[int]",
        on_error: str,
        failures: "dict[str, TaskFailure]",
        policy: RetryPolicy,
    ) -> None:
        """Materialize pending jobs on this session's own caches.

        Any in-process executor (serial, threads, custom test doubles)
        works directly.  Compatible jobs (same port model / slice count,
        direct trees) first go through one ensemble-batched kernel sweep
        priming the makespan/simulation caches, then ``materialize()``
        fills the shared payloads in place (and computes whatever the
        batch did not cover).  Supervision labels are the job cache keys,
        so retries and injected faults are deterministic across runs and
        process layouts.
        """
        self._materialize_batched(batch, pending)
        labels = [batch[i].cache_key() for i in pending]
        supervisor = SupervisedExecutor(self.executor, policy)
        outcomes = supervisor.map_outcomes(
            lambda i: results[i].materialize() and None, pending, labels=labels
        )
        for outcome in outcomes:
            if outcome.ok:
                continue
            if on_error == "raise":
                outcome.raise_if_failed()
            failures[labels[outcome.index]] = outcome.failure

    def _solve_pending_process(
        self,
        batch: "list[Job]",
        pending: "list[int]",
        on_error: str,
        failures: "dict[str, TaskFailure]",
        policy: RetryPolicy,
    ) -> None:
        """Materialize pending jobs through the process pool.

        Worker processes cannot pickle closures over this session: the
        jobs ship as JSON and the metric payloads merge back.  Jobs are
        grouped by platform so the whole group lands in one worker and its
        shared LP is solved exactly once — scattering them would re-solve
        it once per worker.  Per-job supervision (retries, timeouts,
        fault hooks) happens *inside* the worker's own session; the
        group-level supervision here only has to absorb whole-group
        hazards — a worker crash breaking the pool — so it runs without a
        task timeout (a group is many tasks long) and without the per-task
        fault hook.
        """
        groups: dict[str, list[int]] = {}
        for i in pending:
            groups.setdefault(batch[i].platform_key(), []).append(i)
        ordered = list(groups.values())
        tasks = [
            {
                "jobs": [batch[i].to_json() for i in group],
                "policy": policy.to_dict(),
                "on_error": on_error,
            }
            for group in ordered
        ]
        labels = [f"group:{batch[group[0]].platform_key()}" for group in ordered]
        supervisor = SupervisedExecutor(
            self.executor,
            replace(policy, task_timeout=None),
            fault_hook=False,
        )
        outcomes = supervisor.map_outcomes(
            _solve_job_group_json, tasks, labels=labels
        )
        for outcome in outcomes:
            group = ordered[outcome.index]
            if not outcome.ok:
                if on_error == "raise":
                    outcome.raise_if_failed()
                # The whole group is lost (e.g. the pool broke repeatedly):
                # charge the group failure to each of its jobs.
                for i in group:
                    failures[batch[i].cache_key()] = outcome.failure
                continue
            for i, entry in zip(group, outcome.value):
                if "error" in entry:
                    failures[batch[i].cache_key()] = TaskFailure.from_dict(
                        entry["error"]
                    )
                    continue
                payload = self._payload(batch[i])
                for name, value in entry["metrics"].items():
                    payload.setdefault(name, value)

    def platform(self, platform: "Platform | PlatformRecipe") -> Platform:
        """The session-shared instance of ``platform`` (building recipes once).

        Two jobs describing the same platform — by recipe or by equal
        inline payload — resolve to the *same* object, so the LP cache
        (keyed by platform identity) and the per-platform compiled /
        reversed views are shared between them.
        """
        return self._resolve_platform(stable_key(platform_payload(platform)), platform)

    def _resolve_platform(
        self, key: str, platform: "Platform | PlatformRecipe"
    ) -> Platform:
        entry = self._platforms.get(key)
        if entry is not None:
            existing, epoch = entry
            if existing.mutation_epoch == epoch:
                return existing
            # The registered instance was mutated since: it no longer
            # matches the description this key stands for.
        resolved = platform.build() if isinstance(platform, PlatformRecipe) else platform
        self._platforms[key] = (resolved, resolved.mutation_epoch)
        return resolved

    # ------------------------------------------------------------------ #
    # Per-job computation (called lazily by Result)
    # ------------------------------------------------------------------ #
    def _payload(self, job: Job) -> dict[str, Any]:
        """The live metric payload of ``job`` (attaching cached entries)."""
        key = job.cache_key()
        payload = self._payloads.get(key)
        if payload is None:
            rows = self.results.get(key)
            payload = dict(rows[0]) if rows else {}
            if rows:
                # The attached content is exactly what the cache holds:
                # prime the no-rewrite guard so replays don't churn disk.
                self._persisted[key] = len(payload)
            self._payloads[key] = payload
        return payload

    def _persist(self, job: Job) -> None:
        """Snapshot ``job``'s payload into the two-level result cache.

        Metrics only ever accumulate, so an unchanged key count since the
        last snapshot means there is nothing new to write — replaying a
        cached batch must not rewrite every disk entry.
        """
        key = job.cache_key()
        payload = self._payload(job)
        if not payload or self._persisted.get(key) == len(payload):
            return
        self.results.put(key, [dict(payload)])
        self._persisted[key] = len(payload)

    def platform_for(self, job: Job) -> Platform:
        """Resolve ``job.platform`` through the session platform store."""
        # The job memoizes its platform key; don't re-serialize the platform.
        return self._resolve_platform(job.platform_key(), job.platform)

    def lp_solution_for(self, job: Job) -> SteadyStateSolution:
        """The (cached) LP solution of the job's collective."""
        platform = self.platform_for(job)
        payload = self._payload(job)
        spec = job.collective
        lp_key = (job.platform_key(), spec.kind.value, spec.source, spec.targets, job.size)
        start = time.perf_counter()
        solution = self.lp_cache.solve_collective(platform, spec, job.size)
        self._lp_times.setdefault(lp_key, time.perf_counter() - start)
        payload.setdefault("lp_seconds", self._lp_times[lp_key])
        payload.setdefault("lp_bound", solution.throughput)
        return solution

    def tree_for(self, job: Job) -> BroadcastTree:
        """The (cached) tree of the job's heuristic on its platform."""
        key = job.tree_key()
        tree = self._trees.get(key)
        elapsed = 0.0
        if tree is None:
            platform = self.platform_for(job)
            heuristic = get_heuristic(job.heuristic)
            extra: dict[str, Any] = {}
            if heuristic.uses_lp_solution:
                # Share this job's LP solution instead of re-solving inside
                # the heuristic (the CLI and the runner did this by hand).
                extra["lp_solution"] = self.lp_solution_for(job)
            start = time.perf_counter()
            tree = build_collective_tree(
                platform,
                job.collective,
                heuristic=heuristic,
                model=job.port_model(),
                size=job.size,
                strict_model=False,
                **extra,
            )
            elapsed = time.perf_counter() - start
            self._trees[key] = tree
        self._payload(job).setdefault("build_seconds", elapsed)
        return tree

    def report_for(self, job: Job) -> ThroughputReport:
        """The (cached) steady-state throughput report of the job's tree."""
        key = job.tree_key()
        report = self._reports.get(key)
        if report is None:
            report = collective_throughput(
                self.tree_for(job), job.collective, job.port_model(), job.size
            )
            self._reports[key] = report
        payload = self._payload(job)
        payload.setdefault("throughput", report.throughput)
        if "lp_bound" in payload:
            payload.setdefault(
                "relative_performance", payload["throughput"] / payload["lp_bound"]
            )
        return report

    def makespan_for(self, job: Job) -> MakespanReport:
        """The (cached) canonical pipelined makespan of ``num_slices`` slices."""
        # Keyed below cache_key: the ``simulate`` flag (and anything else
        # outside tree_key/num_slices) does not affect the computation, so
        # ``job.but(simulate=True)`` twins share it.
        key = (job.tree_key(), job.num_slices)
        report = self._makespans.get(key)
        if report is None:
            report = pipelined_makespan(
                self.tree_for(job), job.num_slices, job.port_model(), job.size
            )
            self._makespans[key] = report
        self._payload(job).setdefault("makespan", report.makespan)
        return report

    def _materialize_batched(self, batch: "list[Job]", pending: "list[int]") -> None:
        """Prime makespan/simulation caches through one ensemble-batched sweep.

        Groups the pending jobs that will need a simulation (``simulate``
        set, shared-message collective, canonical port model, same slice
        count) and evaluates every group's *direct* trees through
        :class:`~repro.kernels.batch.EnsembleBatch` — one vectorized sweep
        over the whole group instead of one kernel dispatch per job.  The
        cached values are bit-identical to what the lazy per-job path
        computes (the batched kernels reproduce the per-item recurrences
        exactly); everything the batch does not cover — distinct-message
        collectives, routed trees, custom models — is simply left to
        ``materialize()``.
        """
        from ..analysis.throughput import tree_throughput
        from ..kernels.batch import (
            EnsembleBatch,
            batch_inorder_simulation,
            batch_pipelined_makespan,
        )
        from ..kernels.makespan import supports_model
        from ..models.port_models import OnePortModel
        from ..simulation.broadcast import inorder_result_from_run

        groups: dict[tuple, list[int]] = {}
        for i in pending:
            job = batch[i]
            if not job.simulate or job.collective.distinct_messages:
                continue
            metric_key = (job.tree_key(), job.num_slices)
            if metric_key in self._makespans and metric_key in self._simulations:
                continue
            model = job.port_model()
            if not supports_model(model):
                continue
            group_key = (
                type(model).__name__,
                getattr(model, "send_fraction", None),
                job.num_slices,
            )
            groups.setdefault(group_key, []).append(i)

        for (_, _, num_slices), members in groups.items():
            items: list[tuple[Job, BroadcastTree, Any]] = []
            seen: set[tuple[str, int]] = set()
            for i in members:
                job = batch[i]
                metric_key = (job.tree_key(), num_slices)
                if metric_key in seen:
                    continue
                seen.add(metric_key)
                try:
                    tree = self.tree_for(job)
                    ctree = tree.compiled(job.size)
                except ReproError:
                    # A poisoned job must not sink its batch-mates: leave
                    # it to materialize(), where supervision handles it.
                    continue
                if ctree.is_direct:
                    items.append((job, tree, ctree))
            if len(items) < 2:
                continue  # nothing to amortize; the lazy path is just as fast
            model = items[0][0].port_model()
            try:
                ensemble = EnsembleBatch.from_trees([c for _, _, c in items], model)
                runs = batch_inorder_simulation(ensemble, num_slices)
                one_port = type(model) is OnePortModel
                if not one_port:
                    # Multi-port simulation arrivals include receive-port
                    # constraints the canonical makespan recurrence does not:
                    # the makespans need their own sweep.
                    makespans, fills = batch_pipelined_makespan(ensemble, num_slices)
            except ReproError:
                # Graceful degradation: skip the batched sweep for this
                # group and let every member compute per-item instead.
                continue
            for position, ((job, tree, _), run) in enumerate(zip(items, runs)):
                metric_key = (job.tree_key(), num_slices)
                if metric_key not in self._makespans:
                    if one_port:
                        # One-port simulation arrivals ARE the canonical
                        # recurrence matrix; reuse it.
                        makespan = float(run[0][:, num_slices - 1].max())
                        fill = float(run[0][:, 0].max())
                    else:
                        makespan = float(makespans[position])
                        fill = float(fills[position])
                    self._makespans[metric_key] = MakespanReport(
                        makespan=makespan,
                        num_slices=num_slices,
                        fill_time=fill,
                        steady_state_period=tree_throughput(
                            tree, model, job.size
                        ).period,
                    )
                if metric_key not in self._simulations:
                    self._simulations[metric_key] = inorder_result_from_run(
                        tree, num_slices, model, job.size, run
                    )
                payload = self._payload(job)
                payload.setdefault("makespan", self._makespans[metric_key].makespan)
                sim = self._simulations[metric_key]
                payload.setdefault("simulated_throughput", sim.measured_throughput)
                payload.setdefault("simulation_error", sim.relative_error())
                payload.setdefault("simulation_makespan", sim.makespan)

    def simulation_for(self, job: Job) -> SimulationResult:
        """The (cached) discrete-event simulation of ``num_slices`` rounds."""
        key = (job.tree_key(), job.num_slices)
        sim = self._simulations.get(key)
        if sim is None:
            sim = simulate_collective(
                self.tree_for(job),
                job.collective,
                job.num_slices,
                model=job.port_model(),
                size=job.size,
                record_trace=False,
            )
            self._simulations[key] = sim
        payload = self._payload(job)
        payload.setdefault("simulated_throughput", sim.measured_throughput)
        payload.setdefault("simulation_error", sim.relative_error())
        payload.setdefault("simulation_makespan", sim.makespan)
        return sim

    # ------------------------------------------------------------------ #
    # Introspection / housekeeping
    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict[str, int]:
        """Entry counts of every session-owned cache (diagnostics)."""
        return {
            "platforms": len(self._platforms),
            "lp_solutions": len(self.lp_cache),
            "trees": len(self._trees),
            "results": len(self._payloads),
        }

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Usage snapshot of every session cache: entries, bytes, hits,
        misses and evictions.

        The byte figures make the unbounded-cache question measurable
        (ROADMAP item 1): compiled platform / tree views report their exact
        array payload (:attr:`CompiledPlatform.nbytes
        <repro.platform.compiled.CompiledPlatform.nbytes>` /
        :attr:`CompiledTree.nbytes <repro.kernels.tree.CompiledTree.nbytes>`),
        everything else the :func:`~repro.runtime.approx_nbytes` estimate
        the eviction budgets use.  The ``total`` block aggregates the
        budget-charged bytes (and the configured ceiling, when the session
        was built with ``max_cache_bytes``) — the number the solve
        service's ``/statz`` endpoint reports and its soak test asserts.
        Use :meth:`cache_info` when only entry counts are needed.
        """
        import sys as _sys

        compiled_views = 0
        compiled_bytes = 0
        for platform, _ in self._platforms.values():
            for view in getattr(platform, "_compiled_cache", {}).values():
                compiled_views += 1
                compiled_bytes += view.nbytes
        tree_views = 0
        tree_bytes = 0
        for tree in self._trees.values():
            for ctree in tree.__dict__.get("_compiled_tree_cache", {}).values():
                # Tree arrays only; the platform views they point into are
                # counted above.
                tree_views += 1
                tree_bytes += ctree.nbytes
        payload_bytes = sum(
            _sys.getsizeof(payload)
            + sum(_sys.getsizeof(k) + _sys.getsizeof(v) for k, v in payload.items())
            for payload in self._payloads.values()
        )
        lp_stats = (
            self.lp_cache.stats() if hasattr(self.lp_cache, "stats") else {}
        )
        stats = {
            "platforms": {
                **self._platforms.stats(),
                "compiled_views": compiled_views,
                "compiled_bytes": compiled_bytes,
            },
            "trees": {
                **self._trees.stats(),
                "compiled_views": tree_views,
                "compiled_bytes": tree_bytes,
            },
            "lp_solutions": {"entries": len(self.lp_cache), **lp_stats},
            "reports": self._reports.stats(),
            "makespans": self._makespans.stats(),
            "simulations": self._simulations.stats(),
            "results": {
                **self._payloads.stats(),
                "approx_bytes": payload_bytes,
            },
            "result_rows": self.results.memory_stats(),
        }
        tracked = (
            "platforms",
            "trees",
            "lp_solutions",
            "reports",
            "makespans",
            "simulations",
            "results",
            "result_rows",
        )
        stats["total"] = {
            "bytes": (
                self.cache_budget.total_bytes
                if self.cache_budget is not None
                else sum(int(stats[name].get("bytes", 0)) for name in tracked)
            ),
            "max_bytes": (
                self.cache_budget.max_bytes if self.cache_budget is not None else None
            ),
            "evictions": sum(
                int(stats[name].get("evictions", 0)) for name in tracked
            ),
        }
        return stats

    def clear(self) -> None:
        """Drop every in-memory cache (disk result entries are kept)."""
        self._platforms.clear()
        self._trees.clear()
        self._reports.clear()
        self._makespans.clear()
        self._simulations.clear()
        self._payloads.clear()
        self._persisted.clear()
        self._lp_times.clear()
        self.lp_cache.clear()
        self.results.clear_memory()


# --------------------------------------------------------------------------- #
# Process-pool plumbing and the default session
# --------------------------------------------------------------------------- #
#: Bounds of a worker's session: few platforms / few jobs get full cache
#: sharing across group tasks, while a huge heterogeneous sweep cannot grow
#: the worker's memory without limit (sessions pin platforms, LP solutions,
#: trees, simulations and metric payloads alive).
_WORKER_PLATFORM_LIMIT = 64
_WORKER_JOB_LIMIT = 4096


def _solve_job_group_json(task: dict[str, Any]) -> list[dict[str, Any]]:
    """Materialize one platform's JSON-shipped jobs; picklable for pools.

    ``task`` carries the job JSON texts plus the parent session's retry
    policy and ``on_error`` mode, so per-job supervision (retries,
    timeouts, deterministic fault hooks keyed on the job cache keys) runs
    *inside* the worker exactly as it would in-process.  Returns one entry
    per job: ``{"metrics": ...}`` on success, ``{"error": ...}`` (a
    serialized :class:`~repro.runtime.TaskFailure`) when the job failed
    under ``on_error="collect"``.

    Runs in the worker's process-wide default session, shared across group
    tasks (and with anything else that process solves).
    """
    session = default_session()
    if (
        len(session._platforms) >= _WORKER_PLATFORM_LIMIT
        or len(session._payloads) >= _WORKER_JOB_LIMIT
    ):
        session.clear()
    previous_policy = session.retry_policy
    session.retry_policy = RetryPolicy.from_dict(task.get("policy", {}))
    try:
        # solve_many (not a solve() loop) so the worker's group also flows
        # through the ensemble-batched kernel sweep.
        results = session.solve_many(
            [Job.from_json(text) for text in task["jobs"]],
            on_error=task.get("on_error", "raise"),
        )
    finally:
        session.retry_policy = previous_policy
    return [
        {"metrics": result.metrics()}
        if result.ok
        else {"error": result.error.to_dict()}
        for result in results
    ]


_DEFAULT_SESSION: Session | None = None


def default_session() -> Session:
    """The process-wide shared session (used by the CLI and restored results)."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION
