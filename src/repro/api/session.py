"""The cache- and executor-owning engine of the facade: :class:`Session`.

One :class:`Session` owns every piece of shared state a solve needs:

* the **LP solution cache** (:class:`~repro.lp.solver.LPSolutionCache`),
  keyed by platform identity / spec / size, so every heuristic, metric and
  CLI command on one platform pays for its LP exactly once;
* the **platform instances** resolved from jobs (inline or recipe) — the
  session hands out one shared :class:`~repro.platform.graph.Platform` per
  distinct platform payload, which also makes the per-platform compiled
  and reversed views (``platform.compiled()`` / ``platform.reversed()``)
  session-owned;
* the **built trees** and throughput reports, keyed by the job fields that
  determine them (platform, collective, heuristic, model, size);
* the **result cache** (:class:`~repro.runtime.ResultCache`): an in-memory
  plus optional on-disk store of materialized metric payloads, keyed by
  the job's canonical payload and the library version;
* the **executor** (:class:`~repro.runtime.SerialExecutor` /
  :class:`~repro.runtime.ProcessExecutor`): :meth:`Session.solve_many`
  fans a batch out through it, so batch work and single solves share one
  code path and one cache keying scheme.

``session.solve(job)`` is lazy — it returns a
:class:`~repro.api.Result` immediately and computes on attribute access;
``session.solve_many(jobs)`` materializes every job's standard metric set
(through worker processes when the session was built with ``jobs > 1``)
and persists the payloads into the result cache.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import Any, Iterable

from .._version import __version__
from ..analysis.makespan import MakespanReport, pipelined_makespan
from ..analysis.throughput import ThroughputReport, collective_throughput
from ..core.registry import build_collective_tree, get_heuristic
from ..core.tree import BroadcastTree
from ..exceptions import ConfigError, ReproError, WorkerCrashError
from ..lp.solution import SteadyStateSolution
from ..lp.solver import LPSolutionCache
from ..platform.graph import Platform
from ..runtime import (
    BoundedCache,
    ByteBudget,
    ProcessExecutor,
    ResultCache,
    RetryPolicy,
    SerialExecutor,
    SupervisedExecutor,
    TaskExecutor,
    TaskFailure,
    approx_nbytes,
    make_executor,
    stable_key,
)
from ..simulation.broadcast import SimulationResult
from ..simulation.collective import simulate_collective
from .dynamic import DynamicJob, DynamicResult
from .job import Job, PlatformRecipe, platform_payload
from .result import FailedResult, Result

__all__ = ["Session", "PendingBatch", "default_session"]


def _tree_nbytes(tree: "BroadcastTree") -> int:
    """Tree cache charge: own structure + compiled arrays, not the platform.

    The platform a tree points back into is charged by the platform cache;
    counting it again here would make every tree look platform-sized and
    starve the tree cache under a shared byte budget.
    """
    total = approx_nbytes(tree.parents) + approx_nbytes(tree.routes)
    for view in tree.__dict__.get("_compiled_tree_cache", {}).values():
        total += view.nbytes
    return total


class Session:
    """See the module docstring; this is the facade's engine.

    Parameters
    ----------
    jobs:
        Worker processes for :meth:`solve_many`; 1 (the default) solves
        batches in-process.
    cache_dir:
        Optional directory persisting materialized results on disk, keyed
        by job payload and library version.
    executor:
        Explicit executor instance (overrides ``jobs`` and ``backend``).
    backend:
        Executor backend name (``"serial"`` / ``"process"`` /
        ``"warm-pool"``; see :func:`~repro.runtime.make_executor`).  The
        default ``None`` picks automatically: serial for ``jobs == 1``,
        the warm worker pool for ``jobs > 1`` — except on single-CPU hosts,
        where the call warns and runs the batched serial path instead of a
        pool that could only lose.  Naming a backend forces it.
    retry_policy:
        How :meth:`solve_many` supervises its tasks — per-attempt timeout,
        retry budget, backoff (see :class:`~repro.runtime.RetryPolicy`).
        Defaults to ``RetryPolicy()`` (two retries, no timeout).
    lp_cache / result_cache:
        Pre-built caches (advanced; lets several sessions share state).
    max_cache_entries / max_cache_bytes:
        Budgets for the session-owned caches.  ``max_cache_entries`` bounds
        each memo cache (platforms, trees, reports, makespans, simulations,
        metric payloads, LP solutions) individually; ``max_cache_bytes`` is
        *one shared byte ceiling* across all of them, enforced by global
        least-recently-used eviction (:class:`~repro.runtime.ByteBudget`).
        Evicted entries are recomputed (or re-read from the disk result
        cache) on the next access — correctness is unaffected, memory stays
        bounded, which is what a long-lived solve service needs.  The
        defaults (``None``) keep the historical unbounded behaviour.

    Error handling
    --------------
    Every failure the facade raises derives from
    :class:`~repro.exceptions.ReproError`, so ``except ReproError`` around a
    solve catches everything the library can throw — invalid jobs, LP
    failures, heuristic errors, timeouts, crashed workers and injected
    faults alike.  With ``solve_many(..., on_error="collect")`` failures do
    not raise at all: they come back as
    :class:`~repro.api.result.FailedResult` records.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: str | os.PathLike[str] | None = None,
        executor: TaskExecutor | None = None,
        backend: str | None = None,
        retry_policy: RetryPolicy | None = None,
        lp_cache: LPSolutionCache | None = None,
        result_cache: ResultCache | None = None,
        max_cache_entries: int | None = None,
        max_cache_bytes: int | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if executor is not None and backend is not None:
            raise ConfigError("pass either an executor instance or a backend name, not both")
        if executor is None:
            executor = make_executor(backend, jobs)
        self.executor = executor
        #: Warm-pool dispatch counters surfaced by :meth:`cache_stats`.
        self._worker_stats: dict[str, int] = {
            "groups_dispatched": 0,
            "jobs_shipped": 0,
            "warm_reuse_hits": 0,
            "shm_attached": 0,
            "degraded_groups": 0,
        }
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        #: Shared byte ceiling across every session-owned cache (or None).
        self.cache_budget = (
            ByteBudget(max_cache_bytes) if max_cache_bytes is not None else None
        )

        def bounded(name: str, sizeof: Any = None) -> BoundedCache:
            return BoundedCache(
                max_cache_entries,
                budget=self.cache_budget,
                sizeof=sizeof,
                name=name,
            )

        self.lp_cache = (
            lp_cache
            if lp_cache is not None
            else LPSolutionCache(max_cache_entries, budget=self.cache_budget)
        )
        self.results = (
            result_cache
            if result_cache is not None
            else ResultCache(
                cache_dir,
                prefix="job",
                version=__version__,
                memory=bounded("result-rows"),
            )
        )
        # Platform entries record the instance's mutation epoch at insert:
        # a platform mutated after registration is a miss, not a stale hit.
        self._platforms: BoundedCache = bounded("platforms")
        self._trees: BoundedCache = bounded("trees", sizeof=_tree_nbytes)
        self._reports: BoundedCache = bounded("reports")
        self._makespans: BoundedCache = bounded("makespans")
        self._simulations: BoundedCache = bounded("simulations")
        self._payloads: BoundedCache = bounded("payloads")
        # Metric-key count at last persist per job; metrics only ever grow
        # (setdefault), so an unchanged count means nothing new to write.
        # Entry-bounded only: the values are a handful of bytes each.
        self._persisted: BoundedCache = BoundedCache(
            max_cache_entries, name="persisted"
        )
        # Wall-clock of the *actual* solve per LP identity: every job that
        # shares an LP reports the platform's real solve time, not the
        # near-zero cache-hit time of whoever asked second.
        self._lp_times: BoundedCache = BoundedCache(
            max_cache_entries, name="lp-times"
        )

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def solve(self, job: Job) -> Result:
        """Return the lazy :class:`Result` of ``job``.

        Nothing is computed here: previously materialized metrics (from an
        earlier solve in this session or from the on-disk cache) are
        attached, everything else is computed on first attribute access and
        memoized.
        """
        self._payload(job)
        return Result(job, self)

    def solve_dynamic(self, job: DynamicJob) -> DynamicResult:
        """Return the lazy :class:`DynamicResult` of a dynamic campaign.

        Nothing runs here: the trace generation, replay and policy
        comparison happen on first access to any time-series property (or
        :meth:`DynamicResult.materialize`), land in the job's metric
        payload, and persist through the same two-level result cache as
        ordinary solves — a repeated campaign replays instead of re-running.
        """
        self._payload(job)
        return DynamicResult(job, self)

    def solve_many(
        self,
        jobs: Iterable[Job],
        *,
        materialize: bool = True,
        on_error: str = "raise",
        retry_policy: RetryPolicy | None = None,
    ) -> list[Result]:
        """Solve a batch of jobs, fanning out through the session executor.

        Already-cached jobs are skipped; the remainder runs through
        :class:`~repro.runtime.SerialExecutor` in-process or ships as JSON
        to a :class:`~repro.runtime.ProcessExecutor` pool.  Either way the
        metric payloads are bit-identical to sequential :meth:`solve` calls
        (timing fields excepted) and end up in the session's result cache.

        Tasks are supervised under the session's
        :class:`~repro.runtime.RetryPolicy`: transient failures (injected or
        organic) are retried with backoff, hung tasks are timed out, and a
        crashed worker process is respawned once before the surviving items
        fall back to in-process execution.

        ``on_error`` selects what a *permanent* failure does:

        * ``"raise"`` (default): re-raise the job's original exception —
          always a :class:`~repro.exceptions.ReproError` for library
          failures.
        * ``"collect"``: every failed job becomes a
          :class:`~repro.api.result.FailedResult` in the returned list
          (successful batch-mates are unaffected), letting campaigns keep
          going and account for failures afterwards.

        ``retry_policy`` overrides the session policy for this call only —
        the solve service uses it to thread each request's remaining
        deadline into the per-task timeouts.
        """
        if on_error not in ("raise", "collect"):
            raise ConfigError(
                f"on_error must be 'raise' or 'collect', got {on_error!r}"
            )
        policy = retry_policy if retry_policy is not None else self.retry_policy
        batch = list(jobs)
        results = [self.solve(job) for job in batch]
        if not materialize:
            return results
        # Deduplicate by job identity: equal jobs share one payload, so one
        # representative per cache key is enough (and worker processes must
        # not each pay the full solve for the same description).
        pending = []
        dispatched: set[str] = set()
        for i, result in enumerate(results):
            if result.is_materialized():
                continue
            key = batch[i].cache_key()
            if key in dispatched:
                continue
            dispatched.add(key)
            pending.append(i)
        failures: dict[str, TaskFailure] = {}
        if pending:
            if getattr(self.executor, "supervises_as_pool", False):
                _WarmDispatch(self, batch, pending, on_error, policy).settle(
                    failures
                )
            elif isinstance(self.executor, ProcessExecutor):
                self._solve_pending_process(
                    batch, pending, on_error, failures, policy
                )
            else:
                self._solve_pending_inprocess(
                    batch, results, pending, on_error, failures, policy
                )
        return self._finalize_many(batch, results, failures)

    def solve_many_async(
        self,
        jobs: Iterable[Job],
        *,
        on_error: str = "raise",
        retry_policy: RetryPolicy | None = None,
    ) -> "PendingBatch":
        """Dispatch a batch without blocking on it; settle via the handle.

        On a warm-pool session the job groups are published and submitted
        *now* and the returned :class:`PendingBatch` settles them on
        :meth:`PendingBatch.result` — which is how the solve service
        overlaps micro-batches with in-flight pool work.  On every other
        executor the batch solves synchronously here and the handle is
        already complete (same results, no concurrency).
        """
        if on_error not in ("raise", "collect"):
            raise ConfigError(
                f"on_error must be 'raise' or 'collect', got {on_error!r}"
            )
        if not getattr(self.executor, "supervises_as_pool", False):
            return PendingBatch(
                self, [], [], None,
                final=self.solve_many(
                    jobs, on_error=on_error, retry_policy=retry_policy
                ),
            )
        policy = retry_policy if retry_policy is not None else self.retry_policy
        batch = list(jobs)
        results = [self.solve(job) for job in batch]
        pending = []
        dispatched: set[str] = set()
        for i, result in enumerate(results):
            if result.is_materialized():
                continue
            key = batch[i].cache_key()
            if key in dispatched:
                continue
            dispatched.add(key)
            pending.append(i)
        dispatch = (
            _WarmDispatch(self, batch, pending, on_error, policy)
            if pending
            else None
        )
        return PendingBatch(self, batch, results, dispatch)

    def _finalize_many(
        self,
        batch: "list[Job]",
        results: "list[Result]",
        failures: "dict[str, TaskFailure]",
    ) -> "list[Result]":
        """Shared solve_many tail: substitute failures, persist successes."""
        if failures:
            # Twins deduplicated away share their representative's fate.
            for i, job in enumerate(batch):
                failure = failures.get(job.cache_key())
                if failure is not None:
                    results[i] = FailedResult(job, self, failure)
        for i, job in enumerate(batch):
            if results[i].ok:
                self._persist(job)
        return results

    def _solve_pending_inprocess(
        self,
        batch: "list[Job]",
        results: "list[Result]",
        pending: "list[int]",
        on_error: str,
        failures: "dict[str, TaskFailure]",
        policy: RetryPolicy,
    ) -> None:
        """Materialize pending jobs on this session's own caches.

        Any in-process executor (serial, threads, custom test doubles)
        works directly.  Compatible jobs (same port model / slice count,
        direct trees) first go through one ensemble-batched kernel sweep
        priming the makespan/simulation caches, then ``materialize()``
        fills the shared payloads in place (and computes whatever the
        batch did not cover).  Supervision labels are the job cache keys,
        so retries and injected faults are deterministic across runs and
        process layouts.
        """
        self._materialize_batched(batch, pending)
        labels = [batch[i].cache_key() for i in pending]
        supervisor = SupervisedExecutor(self.executor, policy)
        outcomes = supervisor.map_outcomes(
            lambda i: results[i].materialize() and None, pending, labels=labels
        )
        for outcome in outcomes:
            if outcome.ok:
                continue
            if on_error == "raise":
                outcome.raise_if_failed()
            failures[labels[outcome.index]] = outcome.failure

    def _solve_pending_process(
        self,
        batch: "list[Job]",
        pending: "list[int]",
        on_error: str,
        failures: "dict[str, TaskFailure]",
        policy: RetryPolicy,
    ) -> None:
        """Materialize pending jobs through the process pool.

        Worker processes cannot pickle closures over this session: the
        jobs ship as JSON and the metric payloads merge back.  Jobs are
        grouped by platform so the whole group lands in one worker and its
        shared LP is solved exactly once — scattering them would re-solve
        it once per worker.  Per-job supervision (retries, timeouts,
        fault hooks) happens *inside* the worker's own session; the
        group-level supervision here only has to absorb whole-group
        hazards — a worker crash breaking the pool — so it runs without a
        task timeout (a group is many tasks long) and without the per-task
        fault hook.
        """
        groups: dict[str, list[int]] = {}
        for i in pending:
            groups.setdefault(batch[i].platform_key(), []).append(i)
        ordered = list(groups.values())
        tasks = [
            {
                "jobs": [batch[i].to_json() for i in group],
                "policy": policy.to_dict(),
                "on_error": on_error,
            }
            for group in ordered
        ]
        labels = [f"group:{batch[group[0]].platform_key()}" for group in ordered]
        supervisor = SupervisedExecutor(
            self.executor,
            replace(policy, task_timeout=None),
            fault_hook=False,
        )
        outcomes = supervisor.map_outcomes(
            _solve_job_group_json, tasks, labels=labels
        )
        for outcome in outcomes:
            group = ordered[outcome.index]
            if not outcome.ok:
                if on_error == "raise":
                    outcome.raise_if_failed()
                # The whole group is lost (e.g. the pool broke repeatedly):
                # charge the group failure to each of its jobs.
                for i in group:
                    failures[batch[i].cache_key()] = outcome.failure
                continue
            for i, entry in zip(group, outcome.value):
                if "error" in entry:
                    failures[batch[i].cache_key()] = TaskFailure.from_dict(
                        entry["error"]
                    )
                    continue
                payload = self._payload(batch[i])
                for name, value in entry["metrics"].items():
                    payload.setdefault(name, value)

    #: Distinct message sizes published into shared memory per job group;
    #: sizes beyond the cap simply compile worker-locally (correctness is
    #: unaffected, the segments stay bounded).
    _SHM_SIZES_PER_GROUP = 4

    def _publish_group_platform(
        self, platform_key: str, jobs: "list[Job]"
    ) -> tuple[list[dict[str, Any]], list[Any]]:
        """Publish one group's compiled platform arrays into shared memory.

        Returns the shared-memory references to embed in the group task
        (segment name, array layout, scalar sidecar) plus the registry keys
        the caller must release once the group settles.  Publication is an
        optimization: any failure here returns empty refs and the workers
        compile locally — bit-identical results either way.
        """
        registry = getattr(self.executor, "registry", None)
        if registry is None or not jobs:
            return [], []
        refs: list[dict[str, Any]] = []
        keys: list[Any] = []
        try:
            platform = self.platform_for(jobs[0])
            sizes: list[float] = []
            for job in jobs:
                size = platform.slice_size if job.size is None else float(job.size)
                if size not in sizes:
                    sizes.append(size)
                if len(sizes) >= self._SHM_SIZES_PER_GROUP:
                    break
            for size in sizes:
                compiled = platform.compiled(size)
                key = (platform_key, compiled.size)
                segment, layout = registry.publish(key, compiled.array_bundle())
                registry.acquire(key)
                keys.append(key)
                refs.append(
                    {
                        "segment": segment,
                        "layout": layout,
                        "meta": {
                            "platform_name": compiled.platform_name,
                            "slice_size": compiled.slice_size,
                            "size": compiled.size,
                            "node_names": list(compiled.node_names),
                        },
                    }
                )
        except Exception:
            for key in keys:
                registry.release(key)
            return [], []
        return refs, keys

    def _merge_group_value(
        self,
        batch: "list[Job]",
        group: "list[int]",
        value: dict[str, Any],
        failures: "dict[str, TaskFailure]",
    ) -> None:
        """Fold one warm group's reply into payloads, failures and stats."""
        rider = value.get("worker", {})
        self._worker_stats["warm_reuse_hits"] += int(rider.get("platform_reuse", 0))
        self._worker_stats["shm_attached"] += int(rider.get("shm_attached", 0))
        for i, entry in zip(group, value["entries"]):
            if "error" in entry:
                failures[batch[i].cache_key()] = TaskFailure.from_dict(
                    entry["error"]
                )
                continue
            payload = self._payload(batch[i])
            for name, metric in entry["metrics"].items():
                payload.setdefault(name, metric)

    def platform(self, platform: "Platform | PlatformRecipe") -> Platform:
        """The session-shared instance of ``platform`` (building recipes once).

        Two jobs describing the same platform — by recipe or by equal
        inline payload — resolve to the *same* object, so the LP cache
        (keyed by platform identity) and the per-platform compiled /
        reversed views are shared between them.
        """
        return self._resolve_platform(stable_key(platform_payload(platform)), platform)

    def _resolve_platform(
        self, key: str, platform: "Platform | PlatformRecipe"
    ) -> Platform:
        entry = self._platforms.get(key)
        if entry is not None:
            existing, epoch = entry
            if existing.mutation_epoch == epoch:
                return existing
            # The registered instance was mutated since: it no longer
            # matches the description this key stands for.
        resolved = platform.build() if isinstance(platform, PlatformRecipe) else platform
        self._platforms[key] = (resolved, resolved.mutation_epoch)
        return resolved

    # ------------------------------------------------------------------ #
    # Per-job computation (called lazily by Result)
    # ------------------------------------------------------------------ #
    def _payload(self, job: Job) -> dict[str, Any]:
        """The live metric payload of ``job`` (attaching cached entries)."""
        key = job.cache_key()
        payload = self._payloads.get(key)
        if payload is None:
            rows = self.results.get(key)
            payload = dict(rows[0]) if rows else {}
            if rows:
                # The attached content is exactly what the cache holds:
                # prime the no-rewrite guard so replays don't churn disk.
                self._persisted[key] = len(payload)
            self._payloads[key] = payload
        return payload

    def _persist(self, job: Job) -> None:
        """Snapshot ``job``'s payload into the two-level result cache.

        Metrics only ever accumulate, so an unchanged key count since the
        last snapshot means there is nothing new to write — replaying a
        cached batch must not rewrite every disk entry.
        """
        key = job.cache_key()
        payload = self._payload(job)
        if not payload or self._persisted.get(key) == len(payload):
            return
        self.results.put(key, [dict(payload)])
        self._persisted[key] = len(payload)

    def platform_for(self, job: Job) -> Platform:
        """Resolve ``job.platform`` through the session platform store."""
        # The job memoizes its platform key; don't re-serialize the platform.
        return self._resolve_platform(job.platform_key(), job.platform)

    def lp_solution_for(self, job: Job) -> SteadyStateSolution:
        """The (cached) LP solution of the job's collective."""
        platform = self.platform_for(job)
        payload = self._payload(job)
        spec = job.collective
        lp_key = (job.platform_key(), spec.kind.value, spec.source, spec.targets, job.size)
        start = time.perf_counter()
        solution = self.lp_cache.solve_collective(platform, spec, job.size)
        self._lp_times.setdefault(lp_key, time.perf_counter() - start)
        payload.setdefault("lp_seconds", self._lp_times[lp_key])
        payload.setdefault("lp_bound", solution.throughput)
        return solution

    def tree_for(self, job: Job) -> BroadcastTree:
        """The (cached) tree of the job's heuristic on its platform."""
        key = job.tree_key()
        tree = self._trees.get(key)
        elapsed = 0.0
        if tree is None:
            platform = self.platform_for(job)
            heuristic = get_heuristic(job.heuristic)
            extra: dict[str, Any] = {}
            if heuristic.uses_lp_solution:
                # Share this job's LP solution instead of re-solving inside
                # the heuristic (the CLI and the runner did this by hand).
                extra["lp_solution"] = self.lp_solution_for(job)
            start = time.perf_counter()
            tree = build_collective_tree(
                platform,
                job.collective,
                heuristic=heuristic,
                model=job.port_model(),
                size=job.size,
                strict_model=False,
                **extra,
            )
            elapsed = time.perf_counter() - start
            self._trees[key] = tree
        self._payload(job).setdefault("build_seconds", elapsed)
        return tree

    def report_for(self, job: Job) -> ThroughputReport:
        """The (cached) steady-state throughput report of the job's tree."""
        key = job.tree_key()
        report = self._reports.get(key)
        if report is None:
            report = collective_throughput(
                self.tree_for(job), job.collective, job.port_model(), job.size
            )
            self._reports[key] = report
        payload = self._payload(job)
        payload.setdefault("throughput", report.throughput)
        if "lp_bound" in payload:
            payload.setdefault(
                "relative_performance", payload["throughput"] / payload["lp_bound"]
            )
        return report

    def makespan_for(self, job: Job) -> MakespanReport:
        """The (cached) canonical pipelined makespan of ``num_slices`` slices."""
        # Keyed below cache_key: the ``simulate`` flag (and anything else
        # outside tree_key/num_slices) does not affect the computation, so
        # ``job.but(simulate=True)`` twins share it.
        key = (job.tree_key(), job.num_slices)
        report = self._makespans.get(key)
        if report is None:
            report = pipelined_makespan(
                self.tree_for(job), job.num_slices, job.port_model(), job.size
            )
            self._makespans[key] = report
        self._payload(job).setdefault("makespan", report.makespan)
        return report

    def dynamic_payload_for(self, job: DynamicJob) -> dict[str, Any]:
        """Run (or replay from cache) a dynamic campaign; return its payload.

        The trace is generated from ``job.trace`` (protecting the source
        from churn), replayed once window-by-window, and every requested
        policy is driven over the same evolving platform copy — the
        session's shared pristine platform instance is never mutated.  The
        per-epoch LP bounds go through the session LP cache, and the final
        time-series payload persists into the result cache keyed by the
        job's canonical payload, so an identical campaign later (same spec,
        same seed, same version) attaches instead of recomputing.
        """
        payload = self._payload(job)
        if "timelines" not in payload:
            from ..dynamics import generate_trace, run_dynamic  # local: heavy

            platform = self._resolve_platform(job.platform_key(), job.platform)
            start = time.perf_counter()
            trace = generate_trace(platform, job.trace, protect=(job.source,))
            outcome = run_dynamic(
                platform,
                trace,
                source=job.source,
                heuristic=job.heuristic,
                model=job.port_model(),
                size=job.size,
                threshold=job.threshold,
                replan_cost=job.replan_cost,
                policies=job.policies,
                lp_cache=self.lp_cache,
            )
            elapsed = time.perf_counter() - start
            for name, value in outcome.to_payload().items():
                payload.setdefault(name, value)
            payload.setdefault("solve_seconds", elapsed)
        self._persist(job)
        return payload

    def _materialize_batched(self, batch: "list[Job]", pending: "list[int]") -> None:
        """Prime makespan/simulation caches through one ensemble-batched sweep.

        Groups the pending jobs that will need a simulation (``simulate``
        set, shared-message collective, canonical port model, same slice
        count) and evaluates every group's *direct* trees through
        :class:`~repro.kernels.batch.EnsembleBatch` — one vectorized sweep
        over the whole group instead of one kernel dispatch per job.  The
        cached values are bit-identical to what the lazy per-job path
        computes (the batched kernels reproduce the per-item recurrences
        exactly); everything the batch does not cover — distinct-message
        collectives, routed trees, custom models — is simply left to
        ``materialize()``.
        """
        from ..analysis.throughput import tree_throughput
        from ..kernels.batch import (
            EnsembleBatch,
            batch_inorder_simulation,
            batch_pipelined_makespan,
        )
        from ..kernels.makespan import supports_model
        from ..models.port_models import OnePortModel
        from ..simulation.broadcast import inorder_result_from_run

        groups: dict[tuple, list[int]] = {}
        for i in pending:
            job = batch[i]
            if not job.simulate or job.collective.distinct_messages:
                continue
            metric_key = (job.tree_key(), job.num_slices)
            if metric_key in self._makespans and metric_key in self._simulations:
                continue
            model = job.port_model()
            if not supports_model(model):
                continue
            group_key = (
                type(model).__name__,
                getattr(model, "send_fraction", None),
                job.num_slices,
            )
            groups.setdefault(group_key, []).append(i)

        for (_, _, num_slices), members in groups.items():
            items: list[tuple[Job, BroadcastTree, Any]] = []
            seen: set[tuple[str, int]] = set()
            for i in members:
                job = batch[i]
                metric_key = (job.tree_key(), num_slices)
                if metric_key in seen:
                    continue
                seen.add(metric_key)
                try:
                    tree = self.tree_for(job)
                    ctree = tree.compiled(job.size)
                except ReproError:
                    # A poisoned job must not sink its batch-mates: leave
                    # it to materialize(), where supervision handles it.
                    continue
                if ctree.is_direct:
                    items.append((job, tree, ctree))
            if len(items) < 2:
                continue  # nothing to amortize; the lazy path is just as fast
            model = items[0][0].port_model()
            try:
                ensemble = EnsembleBatch.from_trees([c for _, _, c in items], model)
                runs = batch_inorder_simulation(ensemble, num_slices)
                one_port = type(model) is OnePortModel
                if not one_port:
                    # Multi-port simulation arrivals include receive-port
                    # constraints the canonical makespan recurrence does not:
                    # the makespans need their own sweep.
                    makespans, fills = batch_pipelined_makespan(ensemble, num_slices)
            except ReproError:
                # Graceful degradation: skip the batched sweep for this
                # group and let every member compute per-item instead.
                continue
            for position, ((job, tree, _), run) in enumerate(zip(items, runs)):
                metric_key = (job.tree_key(), num_slices)
                if metric_key not in self._makespans:
                    if one_port:
                        # One-port simulation arrivals ARE the canonical
                        # recurrence matrix; reuse it.
                        makespan = float(run[0][:, num_slices - 1].max())
                        fill = float(run[0][:, 0].max())
                    else:
                        makespan = float(makespans[position])
                        fill = float(fills[position])
                    self._makespans[metric_key] = MakespanReport(
                        makespan=makespan,
                        num_slices=num_slices,
                        fill_time=fill,
                        steady_state_period=tree_throughput(
                            tree, model, job.size
                        ).period,
                    )
                if metric_key not in self._simulations:
                    self._simulations[metric_key] = inorder_result_from_run(
                        tree, num_slices, model, job.size, run
                    )
                payload = self._payload(job)
                payload.setdefault("makespan", self._makespans[metric_key].makespan)
                sim = self._simulations[metric_key]
                payload.setdefault("simulated_throughput", sim.measured_throughput)
                payload.setdefault("simulation_error", sim.relative_error())
                payload.setdefault("simulation_makespan", sim.makespan)

    def simulation_for(self, job: Job) -> SimulationResult:
        """The (cached) discrete-event simulation of ``num_slices`` rounds."""
        key = (job.tree_key(), job.num_slices)
        sim = self._simulations.get(key)
        if sim is None:
            sim = simulate_collective(
                self.tree_for(job),
                job.collective,
                job.num_slices,
                model=job.port_model(),
                size=job.size,
                record_trace=False,
            )
            self._simulations[key] = sim
        payload = self._payload(job)
        payload.setdefault("simulated_throughput", sim.measured_throughput)
        payload.setdefault("simulation_error", sim.relative_error())
        payload.setdefault("simulation_makespan", sim.makespan)
        return sim

    # ------------------------------------------------------------------ #
    # Introspection / housekeeping
    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict[str, int]:
        """Entry counts of every session-owned cache (diagnostics)."""
        return {
            "platforms": len(self._platforms),
            "lp_solutions": len(self.lp_cache),
            "trees": len(self._trees),
            "results": len(self._payloads),
        }

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Usage snapshot of every session cache: entries, bytes, hits,
        misses and evictions.

        The byte figures make the unbounded-cache question measurable
        (ROADMAP item 1): compiled platform / tree views report their exact
        array payload (:attr:`CompiledPlatform.nbytes
        <repro.platform.compiled.CompiledPlatform.nbytes>` /
        :attr:`CompiledTree.nbytes <repro.kernels.tree.CompiledTree.nbytes>`),
        everything else the :func:`~repro.runtime.approx_nbytes` estimate
        the eviction budgets use.  The ``total`` block aggregates the
        budget-charged bytes (and the configured ceiling, when the session
        was built with ``max_cache_bytes``) — the number the solve
        service's ``/statz`` endpoint reports and its soak test asserts.
        Use :meth:`cache_info` when only entry counts are needed.
        """
        import sys as _sys

        compiled_views = 0
        compiled_bytes = 0
        for platform, _ in self._platforms.values():
            for view in getattr(platform, "_compiled_cache", {}).values():
                compiled_views += 1
                compiled_bytes += view.nbytes
        tree_views = 0
        tree_bytes = 0
        for tree in self._trees.values():
            for ctree in tree.__dict__.get("_compiled_tree_cache", {}).values():
                # Tree arrays only; the platform views they point into are
                # counted above.
                tree_views += 1
                tree_bytes += ctree.nbytes
        payload_bytes = sum(
            _sys.getsizeof(payload)
            + sum(_sys.getsizeof(k) + _sys.getsizeof(v) for k, v in payload.items())
            for payload in self._payloads.values()
        )
        lp_stats = (
            self.lp_cache.stats() if hasattr(self.lp_cache, "stats") else {}
        )
        stats = {
            "platforms": {
                **self._platforms.stats(),
                "compiled_views": compiled_views,
                "compiled_bytes": compiled_bytes,
            },
            "trees": {
                **self._trees.stats(),
                "compiled_views": tree_views,
                "compiled_bytes": tree_bytes,
            },
            "lp_solutions": {"entries": len(self.lp_cache), **lp_stats},
            "reports": self._reports.stats(),
            "makespans": self._makespans.stats(),
            "simulations": self._simulations.stats(),
            "results": {
                **self._payloads.stats(),
                "approx_bytes": payload_bytes,
            },
            "result_rows": self.results.memory_stats(),
        }
        tracked = (
            "platforms",
            "trees",
            "lp_solutions",
            "reports",
            "makespans",
            "simulations",
            "results",
            "result_rows",
        )
        stats["total"] = {
            "bytes": (
                self.cache_budget.total_bytes
                if self.cache_budget is not None
                else sum(int(stats[name].get("bytes", 0)) for name in tracked)
            ),
            "max_bytes": (
                self.cache_budget.max_bytes if self.cache_budget is not None else None
            ),
            "evictions": sum(
                int(stats[name].get("evictions", 0)) for name in tracked
            ),
        }
        # Executor/worker block: backend identity, pool health (size,
        # respawns, shared-segment count/bytes) and the warm dispatch
        # counters.  Present for every backend so /statz consumers never
        # have to feature-test; pool-specific keys appear only when the
        # executor exposes stats().
        workers: dict[str, Any] = {
            "backend": getattr(
                self.executor, "name", type(self.executor).__name__
            ),
            "jobs": getattr(self.executor, "jobs", 1),
            **self._worker_stats,
        }
        pool_stats = getattr(self.executor, "stats", None)
        if callable(pool_stats):
            workers["pool"] = pool_stats()
        stats["workers"] = workers
        return stats

    def clear(self) -> None:
        """Drop every in-memory cache (disk result entries are kept)."""
        self._platforms.clear()
        self._trees.clear()
        self._reports.clear()
        self._makespans.clear()
        self._simulations.clear()
        self._payloads.clear()
        self._persisted.clear()
        self._lp_times.clear()
        self.lp_cache.clear()
        self.results.clear_memory()

    def close(self) -> None:
        """Release the executor (warm workers, shared segments); idempotent.

        Serial and per-``map`` process executors hold nothing, so closing
        is free there; a warm-pool session retires its workers and unlinks
        every shared segment.  The session itself stays usable for solves
        only insofar as its executor does — treat ``close()`` as final.
        """
        closer = getattr(self.executor, "close", None)
        if callable(closer):
            closer()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Warm-pool dispatch
# --------------------------------------------------------------------------- #
class _WarmDispatch:
    """One solve_many batch's job groups, in flight on the warm pool.

    Construction groups the pending jobs by platform (so each platform's
    LP is solved exactly once pool-wide), publishes each group's compiled
    platform arrays into shared memory and submits every group task —
    without blocking.  :meth:`settle` then waits for the group replies,
    supervising at group granularity: a crashed worker gets the group
    resubmitted while the retry budget and pool health allow, and an
    unhealthy pool degrades the group to an in-process run (the broken-
    pool degradation contract); per-*job* supervision happens inside the
    workers.
    """

    def __init__(
        self,
        session: Session,
        batch: "list[Job]",
        pending: "list[int]",
        on_error: str,
        policy: RetryPolicy,
    ) -> None:
        self.session = session
        self.batch = batch
        self.on_error = on_error
        # Group-level supervision runs without a task timeout (a group is
        # many jobs long); the per-job timeout applies inside the workers.
        self.policy = replace(policy, task_timeout=None)
        grouped: dict[str, list[int]] = {}
        for i in pending:
            grouped.setdefault(batch[i].platform_key(), []).append(i)
        self.groups = list(grouped.items())
        self.tasks: list[dict[str, Any]] = []
        self.shm_keys: list[list[Any]] = []
        self.futures: list[Any] = []
        pool = session.executor
        for platform_key, group in self.groups:
            refs, keys = session._publish_group_platform(
                platform_key, [batch[i] for i in group]
            )
            task = {
                "jobs": [batch[i].to_json() for i in group],
                "policy": policy.to_dict(),
                "on_error": on_error,
                "platform_key": platform_key,
                "shm": refs,
            }
            self.tasks.append(task)
            self.shm_keys.append(keys)
            # The per-job fault hook runs inside the worker's session;
            # hooking the group label too would double-inject.
            self.futures.append(
                pool.submit(
                    _solve_job_group_warm,
                    task,
                    label=f"group:{platform_key}",
                    fault_hook=False,
                )
            )
            session._worker_stats["groups_dispatched"] += 1
            session._worker_stats["jobs_shipped"] += len(group)
        self._settled = False

    def done(self) -> bool:
        """Whether every submitted group future has resolved (advisory)."""
        return self._settled or all(future.done() for future in self.futures)

    def settle(self, failures: "dict[str, TaskFailure]") -> None:
        """Wait for every group, supervising crashes; fold in the replies."""
        if self._settled:
            return
        self._settled = True
        pool = self.session.executor
        policy = self.policy
        registry = getattr(pool, "registry", None)
        for position, (platform_key, group) in enumerate(self.groups):
            label = f"group:{platform_key}"
            future = self.futures[position]
            attempts = 0
            value: dict[str, Any] | None = None
            error: BaseException | None = None
            try:
                while True:
                    try:
                        value = future.result()
                        break
                    except WorkerCrashError as exc:
                        attempts += 1
                        error = exc
                        if attempts <= policy.retries and pool.healthy:
                            time.sleep(policy.delay(attempts - 1, label))
                            future = pool.submit(
                                _solve_job_group_warm,
                                self.tasks[position],
                                label=label,
                                fault_hook=False,
                            )
                            continue
                        # Pool exhausted: the group's last chance runs
                        # in-process, sharing this process's warm session.
                        try:
                            value = _solve_job_group_warm(self.tasks[position])
                            self.session._worker_stats["degraded_groups"] += 1
                        except Exception as fallback_exc:
                            attempts += 1
                            error = fallback_exc
                        break
                    except Exception as exc:
                        attempts += 1
                        error = exc
                        if attempts <= policy.retries:
                            time.sleep(policy.delay(attempts - 1, label))
                            future = pool.submit(
                                _solve_job_group_warm,
                                self.tasks[position],
                                label=label,
                                fault_hook=False,
                            )
                            continue
                        break
            finally:
                if registry is not None:
                    for key in self.shm_keys[position]:
                        registry.release(key)
            if value is None:
                assert error is not None
                if self.on_error == "raise":
                    raise error
                failure = TaskFailure.from_exception(label, error, max(attempts, 1))
                for i in group:
                    failures[self.batch[i].cache_key()] = failure
                continue
            self.session._merge_group_value(self.batch, group, value, failures)


class PendingBatch:
    """Handle of a :meth:`Session.solve_many_async` dispatch.

    :meth:`result` settles the batch (waits for the pool, substitutes
    failures, persists successes) and memoizes the final result list;
    :meth:`done` / :meth:`wait` observe progress without settling.
    """

    def __init__(
        self,
        session: Session,
        batch: "list[Job]",
        results: "list[Result]",
        dispatch: _WarmDispatch | None,
        *,
        final: "list[Result] | None" = None,
    ) -> None:
        self._session = session
        self._batch = batch
        self._results = results
        self._dispatch = dispatch
        self._final = final

    def done(self) -> bool:
        """Whether the in-flight pool work has resolved (advisory)."""
        if self._final is not None or self._dispatch is None:
            return True
        return self._dispatch.done()

    def wait(self, timeout: float | None = None) -> bool:
        """Block up to ``timeout`` seconds for the pool work; return :meth:`done`."""
        if self._final is not None or self._dispatch is None:
            return True
        from concurrent.futures import wait as _wait

        _wait(self._dispatch.futures, timeout=timeout)
        return self.done()

    def result(self) -> "list[Result]":
        """The settled result list (same contract as :meth:`Session.solve_many`)."""
        if self._final is None:
            failures: dict[str, TaskFailure] = {}
            if self._dispatch is not None:
                self._dispatch.settle(failures)
            self._final = self._session._finalize_many(
                self._batch, self._results, failures
            )
        return self._final


# --------------------------------------------------------------------------- #
# Process-pool plumbing and the default session
# --------------------------------------------------------------------------- #
#: Bounds of a worker's session: few platforms / few jobs get full cache
#: sharing across group tasks, while a huge heterogeneous sweep cannot grow
#: the worker's memory without limit (sessions pin platforms, LP solutions,
#: trees, simulations and metric payloads alive).
_WORKER_PLATFORM_LIMIT = 64
_WORKER_JOB_LIMIT = 4096


def _solve_job_group_json(task: dict[str, Any]) -> list[dict[str, Any]]:
    """Materialize one platform's JSON-shipped jobs; picklable for pools.

    ``task`` carries the job JSON texts plus the parent session's retry
    policy and ``on_error`` mode, so per-job supervision (retries,
    timeouts, deterministic fault hooks keyed on the job cache keys) runs
    *inside* the worker exactly as it would in-process.  Returns one entry
    per job: ``{"metrics": ...}`` on success, ``{"error": ...}`` (a
    serialized :class:`~repro.runtime.TaskFailure`) when the job failed
    under ``on_error="collect"``.

    Runs in the worker's process-wide default session, shared across group
    tasks (and with anything else that process solves).
    """
    session = default_session()
    if (
        len(session._platforms) >= _WORKER_PLATFORM_LIMIT
        or len(session._payloads) >= _WORKER_JOB_LIMIT
    ):
        session.clear()
    previous_policy = session.retry_policy
    session.retry_policy = RetryPolicy.from_dict(task.get("policy", {}))
    try:
        # solve_many (not a solve() loop) so the worker's group also flows
        # through the ensemble-batched kernel sweep.
        results = session.solve_many(
            [Job.from_json(text) for text in task["jobs"]],
            on_error=task.get("on_error", "raise"),
        )
    finally:
        session.retry_policy = previous_policy
    return [
        {"metrics": result.metrics()}
        if result.ok
        else {"error": result.error.to_dict()}
        for result in results
    ]


_WARM_SESSION: Session | None = None


def _warm_worker_session() -> Session:
    """The warm worker's process-lifetime session (entry-bounded caches).

    Warm workers live across many group submissions, so their session must
    self-evict (LRU) instead of relying on the per-batch ``clear()`` cliff
    the per-``map`` worker path uses.
    """
    global _WARM_SESSION
    if _WARM_SESSION is None:
        _WARM_SESSION = Session(max_cache_entries=128)
    return _WARM_SESSION


def _solve_job_group_warm(task: dict[str, Any]) -> dict[str, Any]:
    """Warm-pool variant of :func:`_solve_job_group_json`.

    Same contract — materialize one platform's jobs under the shipped
    policy and ``on_error`` mode — plus the warm-pool extras: the solve
    runs on the worker's *persistent* session (platforms, compiled views,
    LP solutions and trees survive across submissions), shared-memory
    platform arrays from ``task["shm"]`` are attached as read-only views
    and installed into the platform's compiled cache before the solve
    (any attach failure degrades to local compilation — results are
    bit-identical either way), and the reply carries a ``worker`` rider
    (pid, warm-platform reuse, attach count) for the parent's
    ``cache_stats()['workers']`` block.
    """
    session = _warm_worker_session()
    jobs = [Job.from_json(text) for text in task["jobs"]]
    reuse = int(bool(jobs) and task.get("platform_key", "") in session._platforms)
    attached = 0
    if jobs and task.get("shm"):
        try:
            from ..platform.compiled import CompiledPlatform
            from ..shm import attach_arrays_cached

            platform = session.platform_for(jobs[0])
            cache = platform._compiled_cache
            for ref in task["shm"]:
                meta = ref["meta"]
                key = float(meta["size"])
                if key in cache:
                    continue
                views = attach_arrays_cached(ref["segment"], ref["layout"])
                compiled = CompiledPlatform.from_array_bundle(
                    views,
                    platform_name=meta["platform_name"],
                    slice_size=meta["slice_size"],
                    size=meta["size"],
                    node_names=tuple(meta["node_names"]),
                )
                while len(cache) >= platform._COMPILED_CACHE_LIMIT:
                    cache.pop(next(iter(cache)))
                cache[key] = compiled
                attached += 1
        except Exception:
            attached = 0  # optimization only; the solve compiles locally
    previous_policy = session.retry_policy
    session.retry_policy = RetryPolicy.from_dict(task.get("policy", {}))
    try:
        results = session.solve_many(jobs, on_error=task.get("on_error", "raise"))
    finally:
        session.retry_policy = previous_policy
    entries = [
        {"metrics": result.metrics()}
        if result.ok
        else {"error": result.error.to_dict()}
        for result in results
    ]
    return {
        "entries": entries,
        "worker": {
            "pid": os.getpid(),
            "platform_reuse": reuse,
            "shm_attached": attached,
        },
    }


_DEFAULT_SESSION: Session | None = None


def default_session() -> Session:
    """The process-wide shared session (used by the CLI and restored results)."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION
