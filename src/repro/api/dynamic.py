"""Declarative dynamic-platform campaigns: :class:`DynamicJob` / :class:`DynamicResult`.

A :class:`DynamicJob` freezes everything needed to reproduce one dynamic
campaign — the platform (inline or recipe), the :class:`~repro.dynamics.TraceSpec`
(including its seed), the source, heuristic, port model, and the adaptive
controller's knobs — into one immutable, JSON-round-trippable value with
the same identity contract as :class:`~repro.api.Job`: equality, hashing
and the result-cache key all derive from the canonical payload plus the
library version, so a repeated campaign replays from cache instead of
re-running the trace.

A :class:`DynamicResult` is the lazy view: nothing is computed until a
time-series property is touched, at which point the owning
:class:`~repro.api.Session` generates the trace, replays it once and runs
every requested policy (see :func:`repro.dynamics.run_dynamic`), storing
the whole outcome in the job's metric payload.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Mapping

from .._version import __version__
from ..core.registry import available_heuristics
from ..dynamics.adaptive import POLICIES, DynamicOutcome, PolicyTimeline
from ..dynamics.trace import TraceSpec
from ..exceptions import ConfigError
from ..models.port_models import MultiPortModel, OnePortModel, PortModel
from ..platform.graph import Platform
from ..runtime import stable_key
from ..utils.ascii_plot import format_table, sparkline
from .job import PlatformRecipe, platform_from_payload, platform_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import Session

__all__ = ["DYNAMIC_JOB_FORMAT_VERSION", "DynamicJob", "DynamicResult"]

#: Version stamp embedded in every serialized dynamic job.
DYNAMIC_JOB_FORMAT_VERSION = 1

_PORT_MODELS = ("one-port", "multi-port")

#: Wall-clock keys excluded from :meth:`DynamicResult.deterministic_metrics`.
_TIMING_METRICS = ("solve_seconds",)


@dataclass(frozen=True, eq=False)
class DynamicJob:
    """One frozen, declarative dynamic-platform campaign description.

    Parameters
    ----------
    platform:
        The *pristine* platform the trace perturbs, inline or as a
        :class:`~repro.api.PlatformRecipe`.
    trace:
        The :class:`~repro.dynamics.TraceSpec` describing drift, congestion
        and churn; its ``seed`` makes the whole campaign deterministic.
        The trace generator always protects the ``source`` from churn.
    source:
        Broadcast source node.
    heuristic / model / send_fraction / size:
        As on :class:`~repro.api.Job` — the tree heuristic and port model
        used for planning and re-planning.
    threshold:
        The adaptive policy re-plans when the relative drift of its
        achieved-vs-bound ratio since its last plan exceeds this.
    replan_cost:
        Fraction of a re-planning epoch's throughput charged for the
        re-plan (tearing down an in-flight pipelined broadcast is not free).
    policies:
        Which policies to run (subset of
        :data:`repro.dynamics.POLICIES`); order is preserved.
    """

    platform: "Platform | PlatformRecipe"
    trace: TraceSpec = TraceSpec()
    source: Any = 0
    heuristic: str = "grow-tree"
    model: str = "one-port"
    send_fraction: float = 0.8
    size: float | None = None
    threshold: float = 0.15
    replan_cost: float = 0.1
    policies: tuple[str, ...] = POLICIES

    def __post_init__(self) -> None:
        if not isinstance(self.platform, (Platform, PlatformRecipe)):
            raise ConfigError(
                f"dynamic job platform must be a Platform or a PlatformRecipe, "
                f"got {type(self.platform).__name__}"
            )
        if not isinstance(self.trace, TraceSpec):
            raise ConfigError(
                f"dynamic job trace must be a TraceSpec, "
                f"got {type(self.trace).__name__}"
            )
        if self.heuristic not in available_heuristics():
            raise ConfigError(
                f"unknown heuristic {self.heuristic!r}; "
                f"available: {available_heuristics()}"
            )
        if self.model not in _PORT_MODELS:
            raise ConfigError(
                f"unknown port model {self.model!r}; available: {list(_PORT_MODELS)}"
            )
        if not 0.0 < self.send_fraction <= 1.0:
            raise ConfigError(
                f"send_fraction must lie in (0, 1], got {self.send_fraction!r}"
            )
        if self.size is not None and self.size <= 0:
            raise ConfigError(f"size must be positive, got {self.size!r}")
        if self.threshold <= 0:
            raise ConfigError(f"threshold must be positive, got {self.threshold!r}")
        if not 0.0 <= self.replan_cost < 1.0:
            raise ConfigError(
                f"replan_cost must lie in [0, 1), got {self.replan_cost!r}"
            )
        object.__setattr__(self, "policies", tuple(self.policies))
        if not self.policies:
            raise ConfigError("dynamic job needs at least one policy")
        unknown = set(self.policies) - set(POLICIES)
        if unknown:
            raise ConfigError(
                f"unknown policies {sorted(unknown)}; available: {list(POLICIES)}"
            )

    def but(self, **changes: Any) -> "DynamicJob":
        """A copy with some fields replaced (``dataclasses.replace``)."""
        return replace(self, **changes)

    def port_model(self) -> PortModel:
        """Instantiate the port model this campaign plans under."""
        if self.model == "multi-port":
            return MultiPortModel(send_fraction=self.send_fraction)
        return OnePortModel()

    # ------------------------------------------------------------------ #
    # Serialization and identity (same scheme as Job)
    # ------------------------------------------------------------------ #
    def _platform_epoch(self) -> int:
        if isinstance(self.platform, Platform):
            return self.platform.mutation_epoch
        return -1

    def _payload_view(self) -> dict[str, Any]:
        """Memoized canonical payload; internal — never hand this out."""
        epoch = self._platform_epoch()
        cached = self.__dict__.get("_payload_cache")
        if cached is None or cached[0] != epoch:
            payload = {
                "format_version": DYNAMIC_JOB_FORMAT_VERSION,
                "kind": "dynamic",
                "platform": platform_payload(self.platform),
                "trace": self.trace.to_dict(),
                "source": self.source,
                "heuristic": self.heuristic,
                "model": self.model,
                "send_fraction": self.send_fraction,
                "size": self.size,
                "threshold": self.threshold,
                "replan_cost": self.replan_cost,
                "policies": list(self.policies),
            }
            object.__setattr__(self, "_payload_cache", (epoch, payload))
        else:
            payload = cached[1]
        return payload

    def canonical_payload(self) -> dict[str, Any]:
        """The versioned JSON payload that *is* this job's identity."""
        return copy.deepcopy(self._payload_view())

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialise to JSON; inverse of :meth:`from_json`."""
        return json.dumps(self._payload_view(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DynamicJob":
        """Rebuild from :meth:`canonical_payload` output."""
        version = data.get("format_version", DYNAMIC_JOB_FORMAT_VERSION)
        if version != DYNAMIC_JOB_FORMAT_VERSION:
            raise ConfigError(
                f"unsupported dynamic job format version {version!r} "
                f"(this build understands {DYNAMIC_JOB_FORMAT_VERSION})"
            )
        return cls(
            platform=platform_from_payload(data["platform"]),
            trace=TraceSpec.from_dict(data["trace"]),
            source=data.get("source", 0),
            heuristic=data.get("heuristic", "grow-tree"),
            model=data.get("model", "one-port"),
            send_fraction=float(data.get("send_fraction", 0.8)),
            size=data.get("size"),
            threshold=float(data.get("threshold", 0.15)),
            replan_cost=float(data.get("replan_cost", 0.1)),
            policies=tuple(data.get("policies", POLICIES)),
        )

    @classmethod
    def from_json(cls, text: str) -> "DynamicJob":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # -- keys ---------------------------------------------------------- #
    def _keys(self) -> dict[str, str]:
        epoch = self._platform_epoch()
        cached = self.__dict__.get("_key_cache")
        if cached is None or cached[0] != epoch:
            payload = self._payload_view()
            keys = {
                "platform": stable_key(payload["platform"]),
                "cache": stable_key({"dynamic_job": payload, "version": __version__}),
            }
            object.__setattr__(self, "_key_cache", (epoch, keys))
            return keys
        return cached[1]

    def platform_key(self) -> str:
        """Stable key of the pristine platform alone."""
        return self._keys()["platform"]

    def cache_key(self) -> str:
        """Stable result-cache key: full payload plus the library version."""
        return self._keys()["cache"]

    # -- identity ------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicJob):
            return NotImplemented
        return self._payload_view() == other._payload_view()

    def __hash__(self) -> int:
        return hash(self.cache_key())

    def describe(self) -> str:
        """Short human-readable label used in logs and progress output."""
        if isinstance(self.platform, PlatformRecipe):
            where = f"{self.platform.generator} recipe"
        else:
            where = self.platform.name
        return (
            f"dynamic broadcast from {self.source!r} on {where} "
            f"[{self.heuristic}, {self.model}, "
            f"trace seed {self.trace.seed}, {self.trace.horizon} windows]"
        )


class DynamicResult:
    """Lazy view of one dynamic campaign; see the module docstring.

    Cheap handle (job + session): the campaign runs on first access to any
    time-series property and lands in the session's metric payload / result
    cache, so repeated views and cache replays never re-run the trace.
    """

    __slots__ = ("job", "_session")

    def __init__(self, job: DynamicJob, session: "Session") -> None:
        self.job = job
        self._session = session

    # ------------------------------------------------------------------ #
    # Payload plumbing
    # ------------------------------------------------------------------ #
    @property
    def _payload(self) -> dict[str, Any]:
        return self._session._payload(self.job)

    def metrics(self) -> dict[str, Any]:
        """Snapshot of the computed metric payload (no computation)."""
        return dict(self._payload)

    def deterministic_metrics(self) -> dict[str, Any]:
        """Metric snapshot minus wall-clock timing fields.

        Two runs of the same dynamic job — fresh or replayed from cache,
        serial or through a warm worker pool — must agree exactly on this.
        """
        payload = self.metrics()
        for name in _TIMING_METRICS:
            payload.pop(name, None)
        return payload

    def is_materialized(self) -> bool:
        """Whether the campaign has been run (or replayed from cache)."""
        return "timelines" in self._payload

    def materialize(self) -> "DynamicResult":
        """Run (and persist) the campaign if it has not run yet."""
        self._session.dynamic_payload_for(self.job)
        return self

    # ------------------------------------------------------------------ #
    # Time-series views
    # ------------------------------------------------------------------ #
    @property
    def outcome(self) -> DynamicOutcome:
        """The full structured outcome (rebuilt from the stored payload)."""
        return DynamicOutcome.from_payload(self.materialize()._payload)

    @property
    def times(self) -> tuple[float, ...]:
        """Epoch timestamps, ``0.0`` first (the pre-trace baseline)."""
        return tuple(self.materialize()._payload["times"])

    @property
    def bounds(self) -> tuple[float, ...]:
        """Per-epoch LP optimal throughput (shared by all policies)."""
        return tuple(self.materialize()._payload["bounds"])

    @property
    def alive(self) -> tuple[int, ...]:
        """Per-epoch count of alive nodes."""
        return tuple(self.materialize()._payload["alive"])

    @property
    def events(self) -> tuple[int, ...]:
        """Per-epoch count of applied trace events."""
        return tuple(self.materialize()._payload["events"])

    def timeline(self, policy: str) -> PolicyTimeline:
        """One policy's trajectory (samples plus re-plan decisions)."""
        payload = self.materialize()._payload
        try:
            data = payload["timelines"][policy]
        except KeyError as exc:
            raise ConfigError(
                f"no timeline for policy {policy!r}; "
                f"available: {sorted(payload['timelines'])}"
            ) from exc
        return PolicyTimeline.from_dict(data)

    def ratios(self, policy: str) -> tuple[float, ...]:
        """One policy's achieved-vs-bound ratio series."""
        return self.timeline(policy).ratios

    def replans(self, policy: str) -> int:
        """How many times one policy re-planned over the trace."""
        return self.timeline(policy).replans

    def mean_ratio(self, policy: str) -> float:
        """One policy's mean achieved-vs-bound ratio."""
        return self.timeline(policy).mean_ratio

    @property
    def solve_seconds(self) -> float:
        """Wall-clock seconds the campaign took (0 on cache replay)."""
        return self.materialize()._payload.get("solve_seconds", 0.0)

    def summary(self) -> str:
        """Terminal summary: per-policy table plus ratio sparklines."""
        payload = self.materialize()._payload
        policies = payload["policies"]
        timelines = {policy: self.timeline(policy) for policy in policies}
        table = format_table(
            ["policy", "mean ratio", "final ratio", "replans"],
            [
                [
                    policy,
                    timelines[policy].mean_ratio,
                    timelines[policy].ratios[-1],
                    timelines[policy].replans,
                ]
                for policy in policies
            ],
        )
        width = max(len(policy) for policy in policies)
        sparks = "\n".join(
            f"{policy.ljust(width)}  {sparkline(timelines[policy].ratios, lo=0.0, hi=1.0)}"
            for policy in policies
        )
        return (
            f"{self.job.describe()}\n"
            f"epochs: {payload['num_epochs']}, "
            f"events: {sum(payload['events'])}\n\n"
            f"{table}\n\nachieved / LP bound over time (0..1):\n{sparks}"
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Versioned JSON payload: the job plus its materialized series."""
        self.materialize()
        return {
            "format_version": DYNAMIC_JOB_FORMAT_VERSION,
            "version": __version__,
            "job": self.job.canonical_payload(),
            "metrics": self.metrics(),
        }

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialise to JSON; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, session: "Session | None" = None
    ) -> "DynamicResult":
        """Restore a result; metrics are adopted instead of recomputed."""
        version = data.get("format_version", DYNAMIC_JOB_FORMAT_VERSION)
        if version != DYNAMIC_JOB_FORMAT_VERSION:
            raise ConfigError(
                f"unsupported dynamic result format version {version!r} "
                f"(this build understands {DYNAMIC_JOB_FORMAT_VERSION})"
            )
        library = data.get("version")
        if library != __version__:
            raise ConfigError(
                f"dynamic result was produced by library version {library!r}; "
                f"this is {__version__!r} — re-run the job instead"
            )
        if session is None:
            from .session import default_session  # local: avoid cycle

            session = default_session()
        job = DynamicJob.from_dict(data["job"])
        payload = session._payload(job)
        for name, value in data.get("metrics", {}).items():
            payload.setdefault(name, value)
        return cls(job, session)

    @classmethod
    def from_json(
        cls, text: str, *, session: "Session | None" = None
    ) -> "DynamicResult":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text), session=session)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "materialized" if self.is_materialized() else "lazy"
        return f"DynamicResult({self.job.describe()}, {state})"
