"""Steady-state throughput of a broadcast tree.

The throughput of a pipelined broadcast along a spanning tree is limited by
the busiest resource:

* **one-port model** — every node serialises its outgoing transfers, so a
  node forwarding one slice to children ``v_1..v_k`` per period is busy
  ``sum_i T_{u,v_i}`` per slice (its *weighted out-degree* in the tree); the
  tree throughput is the inverse of the maximum weighted out-degree (the
  receive side never dominates for plain trees because a node's single
  incoming transfer is one term of its parent's outgoing sum);
* **multi-port model** — Section 3.2 of the paper: a node's period is
  ``max(k * send_u, max_i T_{u,v_i})``.

Both cases are computed by delegating the per-node period to the
:class:`~repro.models.port_models.PortModel`, which also covers routed
(binomial) trees where a physical edge carries several message copies per
period.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Mapping

from ..collectives import CollectiveSpec
from ..core.tree import BroadcastTree
from ..exceptions import TreeError
from ..models.port_models import PortModel, get_port_model

__all__ = [
    "ThroughputReport",
    "tree_throughput",
    "node_periods",
    "collective_throughput",
    "collective_node_periods",
    "distinct_message_multiplicities",
]

NodeName = Any
Edge = tuple[NodeName, NodeName]


@dataclass(frozen=True)
class ThroughputReport:
    """Result of a steady-state throughput analysis.

    Attributes
    ----------
    throughput:
        Average number of message slices the source can inject per time
        unit (the paper's ``TP``); ``inf`` only for degenerate single-node
        trees.
    period:
        Steady-state period, i.e. ``1 / throughput`` (0 for a single node).
    bottleneck:
        Node whose period equals the tree period.
    periods:
        Per-node steady-state periods.
    model:
        Name of the port model used for the analysis.
    tree_name:
        Name of the analysed tree (usually the heuristic that built it).
    """

    throughput: float
    period: float
    bottleneck: NodeName
    periods: Mapping[NodeName, float]
    model: str
    tree_name: str

    def relative_to(self, reference_throughput: float) -> float:
        """Ratio of this throughput to a reference (e.g. the LP optimum)."""
        if reference_throughput <= 0:
            raise ValueError(
                f"reference throughput must be positive, got {reference_throughput!r}"
            )
        return self.throughput / reference_throughput


def node_periods(
    tree: BroadcastTree,
    model: PortModel | str | None = None,
    size: float | None = None,
) -> dict[NodeName, float]:
    """Steady-state period of every active node of ``tree`` under ``model``.

    Active = covered by the tree, plus any route-relay node its routed
    transfers occupy (relevant for partial routed trees, whose relays do
    real work without being logical recipients).
    """
    port_model = get_port_model(model)
    outgoing, incoming = tree.transfer_tables(size)
    periods: dict[NodeName, float] = {}
    for node in outgoing:
        periods[node] = port_model.node_period(
            tree.platform, node, outgoing[node], incoming[node], size
        )
    return periods


def distinct_message_multiplicities(
    tree: BroadcastTree, targets: "set[NodeName] | None" = None
) -> Counter[Edge]:
    """Per-physical-edge message count of one distinct-message (scatter) round.

    In a pipelined scatter every round moves one *distinct* message per
    target, and the message for target ``t`` crosses exactly the tree path
    from the source to ``t``: the logical edge into child ``c`` therefore
    carries as many messages per round as there are targets in ``c``'s
    subtree (nothing can be nested), and each count is accumulated over the
    physical hops of the logical edge's route.

    ``targets`` overrides whose messages are counted; it defaults to the
    tree's target set (every covered non-source node for spanning trees).
    """
    if targets is None:
        targets = (
            set(tree.targets)
            if tree.targets is not None
            else set(tree.nodes) - {tree.source}
        )
    else:
        targets = set(targets)
    subtree_count: dict[NodeName, int] = {}
    for node in reversed(tree.bfs_order()):
        count = 1 if node in targets and node != tree.source else 0
        count += sum(subtree_count[child] for child in tree.children(node))
        subtree_count[node] = count

    counter: Counter[Edge] = Counter()
    for parent, child in tree.logical_edges:
        multiplicity = subtree_count[child]
        if multiplicity == 0:
            continue
        for edge in tree.route(parent, child):
            counter[edge] += multiplicity
    return counter


def collective_node_periods(
    tree: BroadcastTree,
    spec: CollectiveSpec,
    model: PortModel | str | None = None,
    size: float | None = None,
) -> dict[NodeName, float]:
    """Steady-state period of every node for one round of ``spec``.

    Combinable kinds (broadcast / multicast / reduce) move one slice per
    logical edge per period — exactly :func:`node_periods`.  Distinct-message
    kinds (scatter / gather) weight each transfer by the number of targets
    behind it (:func:`distinct_message_multiplicities`); the port models
    already accept per-transfer multiplicities, so the same
    ``node_period`` arithmetic covers both families.

    For reduce / gather, ``tree`` is expected on the reversed platform (as
    :func:`~repro.core.registry.build_collective_tree` returns it); the
    distinctness of the messages is all that matters here, and it is
    invariant under platform reversal.  The spec's *own* target set drives
    the message counts — a spanning tree analysed for a two-target scatter
    only pays for those two targets' messages — and every spec target must
    be covered by the tree.
    """
    targets = set(spec.resolve_targets(tree.platform))
    missing = targets - set(tree.nodes)
    if missing:
        raise TreeError(
            f"tree {tree.name!r} does not cover the spec targets "
            f"{sorted(map(repr, missing))}"
        )
    if not spec.distinct_messages:
        return node_periods(tree, model, size)
    port_model = get_port_model(model)
    outgoing, incoming = tree.transfer_tables(
        size, multiplicities=distinct_message_multiplicities(tree, targets)
    )
    return {
        node: port_model.node_period(
            tree.platform, node, outgoing[node], incoming[node], size
        )
        for node in outgoing
    }


def _report_from_periods(
    tree: BroadcastTree, model: PortModel, periods: dict[NodeName, float]
) -> ThroughputReport:
    """Assemble a :class:`ThroughputReport` from per-node periods."""
    bottleneck = max(periods, key=lambda node: (periods[node], str(node)))
    period = periods[bottleneck]
    throughput = float("inf") if period == 0 else 1.0 / period
    return ThroughputReport(
        throughput=throughput,
        period=period,
        bottleneck=bottleneck,
        periods=periods,
        model=model.name,
        tree_name=tree.name,
    )


def collective_throughput(
    tree: BroadcastTree,
    spec: CollectiveSpec,
    model: PortModel | str | None = None,
    size: float | None = None,
) -> ThroughputReport:
    """Steady-state rounds-per-time-unit of ``tree`` executing ``spec``.

    One "round" delivers one slice to every target (combinable kinds) or one
    distinct message to every target (scatter / gather).
    """
    if tree.num_nodes == 0:
        raise TreeError("cannot analyse an empty tree")
    port_model = get_port_model(model)
    return _report_from_periods(
        tree, port_model, collective_node_periods(tree, spec, port_model, size)
    )


def tree_throughput(
    tree: BroadcastTree,
    model: PortModel | str | None = None,
    size: float | None = None,
) -> ThroughputReport:
    """Compute the steady-state throughput of ``tree`` under ``model``.

    Parameters
    ----------
    tree:
        The broadcast tree (possibly routed) to analyse.
    model:
        Port model instance, model name (``"one-port"`` / ``"multi-port"``)
        or ``None`` for the paper's default one-port model.
    size:
        Message-slice size; defaults to the platform slice size.
    """
    if tree.num_nodes == 0:
        raise TreeError("cannot analyse an empty tree")
    port_model = get_port_model(model)
    return _report_from_periods(tree, port_model, node_periods(tree, port_model, size))
