"""Steady-state throughput of a broadcast tree.

The throughput of a pipelined broadcast along a spanning tree is limited by
the busiest resource:

* **one-port model** — every node serialises its outgoing transfers, so a
  node forwarding one slice to children ``v_1..v_k`` per period is busy
  ``sum_i T_{u,v_i}`` per slice (its *weighted out-degree* in the tree); the
  tree throughput is the inverse of the maximum weighted out-degree (the
  receive side never dominates for plain trees because a node's single
  incoming transfer is one term of its parent's outgoing sum);
* **multi-port model** — Section 3.2 of the paper: a node's period is
  ``max(k * send_u, max_i T_{u,v_i})``.

Both cases are computed by delegating the per-node period to the
:class:`~repro.models.port_models.PortModel`, which also covers routed
(binomial) trees where a physical edge carries several message copies per
period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..core.tree import BroadcastTree
from ..exceptions import TreeError
from ..models.port_models import PortModel, get_port_model

__all__ = ["ThroughputReport", "tree_throughput", "node_periods"]

NodeName = Any


@dataclass(frozen=True)
class ThroughputReport:
    """Result of a steady-state throughput analysis.

    Attributes
    ----------
    throughput:
        Average number of message slices the source can inject per time
        unit (the paper's ``TP``); ``inf`` only for degenerate single-node
        trees.
    period:
        Steady-state period, i.e. ``1 / throughput`` (0 for a single node).
    bottleneck:
        Node whose period equals the tree period.
    periods:
        Per-node steady-state periods.
    model:
        Name of the port model used for the analysis.
    tree_name:
        Name of the analysed tree (usually the heuristic that built it).
    """

    throughput: float
    period: float
    bottleneck: NodeName
    periods: Mapping[NodeName, float]
    model: str
    tree_name: str

    def relative_to(self, reference_throughput: float) -> float:
        """Ratio of this throughput to a reference (e.g. the LP optimum)."""
        if reference_throughput <= 0:
            raise ValueError(
                f"reference throughput must be positive, got {reference_throughput!r}"
            )
        return self.throughput / reference_throughput


def node_periods(
    tree: BroadcastTree,
    model: PortModel | str | None = None,
    size: float | None = None,
) -> dict[NodeName, float]:
    """Steady-state period of every node of ``tree`` under ``model``."""
    port_model = get_port_model(model)
    outgoing, incoming = tree.transfer_tables(size)
    periods: dict[NodeName, float] = {}
    for node in tree.nodes:
        periods[node] = port_model.node_period(
            tree.platform, node, outgoing[node], incoming[node], size
        )
    return periods


def tree_throughput(
    tree: BroadcastTree,
    model: PortModel | str | None = None,
    size: float | None = None,
) -> ThroughputReport:
    """Compute the steady-state throughput of ``tree`` under ``model``.

    Parameters
    ----------
    tree:
        The broadcast tree (possibly routed) to analyse.
    model:
        Port model instance, model name (``"one-port"`` / ``"multi-port"``)
        or ``None`` for the paper's default one-port model.
    size:
        Message-slice size; defaults to the platform slice size.
    """
    if tree.num_nodes == 0:
        raise TreeError("cannot analyse an empty tree")
    port_model = get_port_model(model)
    periods = node_periods(tree, port_model, size)
    bottleneck = max(periods, key=lambda node: (periods[node], str(node)))
    period = periods[bottleneck]
    throughput = float("inf") if period == 0 else 1.0 / period
    return ThroughputReport(
        throughput=throughput,
        period=period,
        bottleneck=bottleneck,
        periods=periods,
        model=port_model.name,
        tree_name=tree.name,
    )
