"""Makespan analysis of a pipelined broadcast.

The paper optimises the *steady-state throughput* and explicitly neglects
the initialization and clean-up phases.  For completeness (and to connect
the STP objective with the STA objective of the related work), this module
provides the finite-message view: broadcasting ``num_slices`` slices along a
tree takes roughly

``fill_time + (num_slices - 1) * period``

where ``fill_time`` is the time for the first slice to reach the last leaf
and ``period`` is the steady-state period from
:mod:`repro.analysis.throughput`.  The exact value depends on the local
schedule of each node; :func:`pipelined_makespan` computes the makespan of
the canonical schedule where every node serves its children in a fixed
round-robin order (this is also the schedule the discrete-event simulator
implements, so the two agree), and
:func:`makespan_lower_bound` gives the schedule-independent bound above.

Two implementations of the recurrence are provided.
:func:`pipelined_makespan` evaluates it through the slice-vectorized scans
of :mod:`repro.kernels.makespan` (the production path — this is what makes
makespan sweeps at hundreds of nodes and thousands of slices tractable);
:func:`pipelined_makespan_reference` is the original ``(node, slice)``
Python loop, kept as the readable specification.  The test suite asserts
the two agree bit-for-bit on integer-cost platforms and to ``1e-12``
relative on continuous ones (the kernel re-associates prefix sums), and
``benchmarks/bench_hotpaths.py`` tracks the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.tree import BroadcastTree
from ..exceptions import TreeError
from ..kernels.makespan import arrival_matrix, supports_model
from ..models.port_models import OnePortModel, PortModel, get_port_model
from .throughput import tree_throughput

__all__ = [
    "MakespanReport",
    "pipelined_makespan",
    "pipelined_makespan_reference",
    "makespan_lower_bound",
    "fill_time",
]

NodeName = Any


@dataclass(frozen=True)
class MakespanReport:
    """Result of a finite-message makespan analysis.

    Attributes
    ----------
    makespan:
        Total time between the start of the broadcast and the reception of
        the last slice by the last node.
    num_slices:
        Number of slices broadcast.
    fill_time:
        Time for the first slice to reach every node.
    steady_state_period:
        Steady-state period of the tree (inverse throughput).
    effective_throughput:
        ``num_slices / makespan``; converges to the steady-state throughput
        as ``num_slices`` grows.
    """

    makespan: float
    num_slices: int
    fill_time: float
    steady_state_period: float

    @property
    def effective_throughput(self) -> float:
        """Achieved throughput including start-up and drain phases."""
        if self.makespan <= 0:
            return float("inf")
        return self.num_slices / self.makespan


def fill_time(
    tree: BroadcastTree,
    model: PortModel | str | None = None,
    size: float | None = None,
) -> float:
    """Time for the *first* slice to reach every node of the tree.

    Under the one-port model a node sends the slice to its children
    sequentially (in the tree's deterministic child order); under the
    multi-port model consecutive sends overlap after the per-send overhead.
    Routes are traversed store-and-forward.  This is the ``num_slices = 1``
    case of the pipelined recurrence, evaluated on the compiled view.
    """
    port_model = get_port_model(model)
    if supports_model(port_model):
        arrivals = arrival_matrix(tree.compiled(size), 1, port_model)
        return float(arrivals[:, 0].max())

    # Fallback for custom port models: the single-slice case of the
    # reference recurrence (same relay-port serialization as the kernel).
    platform = tree.platform
    hop_times = platform.compiled(size).edge_weight_map
    arrival: dict[NodeName, float] = {tree.source: 0.0}
    one_port = isinstance(port_model, OnePortModel)
    for node in tree.bfs_order():
        port_free = arrival[node]
        relay_port_free: dict[NodeName, float] = {}
        for child in tree.children(node):
            route = tree.route(node, child)
            first_hop = route[0]
            hop_time = hop_times[first_hop]
            busy = hop_time if one_port else port_model.sender_busy_time(
                platform, *first_hop, size
            )
            start = port_free
            port_free = start + busy
            available = start + hop_time
            for a, b in route[1:]:
                hop_time = hop_times[(a, b)]
                busy = hop_time if one_port else port_model.sender_busy_time(
                    platform, a, b, size
                )
                start = max(relay_port_free.get(a, 0.0), available)
                relay_port_free[a] = start + busy
                available = start + hop_time
            arrival[child] = available
    return max(arrival.values())


def makespan_lower_bound(
    tree: BroadcastTree,
    num_slices: int,
    model: PortModel | str | None = None,
    size: float | None = None,
) -> float:
    """Schedule-independent lower bound ``fill + (K - 1) * period``."""
    if num_slices < 1:
        raise TreeError(f"num_slices must be >= 1, got {num_slices}")
    report = tree_throughput(tree, model, size)
    return fill_time(tree, model, size) + (num_slices - 1) * report.period


def pipelined_makespan(
    tree: BroadcastTree,
    num_slices: int,
    model: PortModel | str | None = None,
    size: float | None = None,
) -> MakespanReport:
    """Makespan of the canonical round-robin pipelined schedule.

    Every node forwards slices to its children in the tree's child order;
    slice ``k + 1`` is handled after slice ``k``.  The recurrence over
    ``(node, slice)`` completion times is evaluated through the vectorized
    kernel of :mod:`repro.kernels.makespan` (falling back to
    :func:`pipelined_makespan_reference` for custom port models), which
    makes it suitable for sweeps in benchmarks and large ensembles.
    """
    if num_slices < 1:
        raise TreeError(f"num_slices must be >= 1, got {num_slices}")
    port_model = get_port_model(model)
    if not supports_model(port_model):
        return pipelined_makespan_reference(tree, num_slices, port_model, size)
    arrivals = arrival_matrix(tree.compiled(size), num_slices, port_model)
    report = tree_throughput(tree, port_model, size)
    return MakespanReport(
        makespan=float(arrivals[:, num_slices - 1].max()),
        num_slices=num_slices,
        fill_time=float(arrivals[:, 0].max()),
        steady_state_period=report.period,
    )


def pipelined_makespan_reference(
    tree: BroadcastTree,
    num_slices: int,
    model: PortModel | str | None = None,
    size: float | None = None,
) -> MakespanReport:
    """Reference ``(node, slice)`` loop of the pipelined-makespan recurrence.

    Kept as the readable specification of the canonical schedule and as the
    baseline the kernel is property-tested against; prefer
    :func:`pipelined_makespan` everywhere else.
    """
    if num_slices < 1:
        raise TreeError(f"num_slices must be >= 1, got {num_slices}")
    port_model = get_port_model(model)
    platform = tree.platform
    hop_times = platform.compiled(size).edge_weight_map
    one_port = isinstance(port_model, OnePortModel)

    # arrival[node][k] = time at which slice k is fully received by node.
    arrival: dict[NodeName, list[float]] = {tree.source: [0.0] * num_slices}

    for node in tree.bfs_order():
        ready = arrival[node]
        children = tree.children(node)
        if not children:
            continue
        send_port_free = 0.0
        child_arrivals: dict[NodeName, list[float]] = {c: [0.0] * num_slices for c in children}
        # Relay ports along routes: track per relay node when its port frees.
        relay_port_free: dict[NodeName, float] = {}
        for k in range(num_slices):
            for child in children:
                route = tree.route(node, child)
                # First hop occupies this node's send port.
                first_hop = route[0]
                hop_time = hop_times[first_hop]
                busy = hop_time if one_port else port_model.sender_busy_time(
                    platform, *first_hop, size
                )
                start = max(send_port_free, ready[k])
                send_port_free = start + busy
                available = start + hop_time
                # Remaining hops: store-and-forward through relay nodes.
                for a, b in route[1:]:
                    hop_time = hop_times[(a, b)]
                    busy = hop_time if one_port else port_model.sender_busy_time(
                        platform, a, b, size
                    )
                    start = max(relay_port_free.get(a, 0.0), available)
                    relay_port_free[a] = start + busy
                    available = start + hop_time
                child_arrivals[child][k] = available
        for child in children:
            arrival[child] = child_arrivals[child]

    makespan = max(times[num_slices - 1] for times in arrival.values())
    report = tree_throughput(tree, port_model, size)
    return MakespanReport(
        makespan=makespan,
        num_slices=num_slices,
        fill_time=max(times[0] for times in arrival.values()),
        steady_state_period=report.period,
    )
