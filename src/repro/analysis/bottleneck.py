"""Bottleneck analysis of a broadcast tree.

The throughput of a pipelined broadcast is set by a single saturated
resource; knowing *which* one is saturated explains why a heuristic behaves
the way it does (e.g. the binomial tree saturates a node that happens to own
only slow outgoing links), and drives the local-improvement post-pass
shipped as an extension (:mod:`repro.core.local_search`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.tree import BroadcastTree
from ..models.port_models import PortModel, get_port_model
from .throughput import node_periods

__all__ = ["BottleneckReport", "analyze_bottleneck"]

NodeName = Any


@dataclass(frozen=True)
class BottleneckReport:
    """Description of the saturated resource of a broadcast tree.

    Attributes
    ----------
    node:
        The node whose period equals the tree period.
    period:
        The tree period (inverse of the throughput).
    out_transfers:
        Physical transfers sent by the bottleneck node per period.
    children:
        Logical children of the bottleneck node.
    slack:
        Per-node slack ``period - node_period`` for every other node; nodes
        with large slack are candidates to adopt children from the
        bottleneck node.
    """

    node: NodeName
    period: float
    out_transfers: tuple[tuple[NodeName, float, int], ...]
    children: tuple[NodeName, ...]
    slack: dict[NodeName, float]

    @property
    def num_children(self) -> int:
        """Number of logical children of the bottleneck node."""
        return len(self.children)

    def most_relieving_child(self) -> NodeName | None:
        """The child whose removal would reduce the node's load the most.

        For the one-port model this is simply the child reached through the
        heaviest first-hop transfer.
        """
        if not self.children:
            return None
        heaviest = None
        heaviest_time = -1.0
        for target, time, _count in self.out_transfers:
            if target in self.children and time > heaviest_time:
                heaviest, heaviest_time = target, time
        return heaviest


def analyze_bottleneck(
    tree: BroadcastTree,
    model: PortModel | str | None = None,
    size: float | None = None,
) -> BottleneckReport:
    """Identify the saturated node of ``tree`` under ``model``."""
    port_model = get_port_model(model)
    periods = node_periods(tree, port_model, size)
    bottleneck = max(periods, key=lambda node: (periods[node], str(node)))
    period = periods[bottleneck]
    slack = {node: period - node_period for node, node_period in periods.items()}
    return BottleneckReport(
        node=bottleneck,
        period=period,
        out_transfers=tuple(tree.outgoing_transfers(bottleneck, size)),
        children=tuple(tree.children(bottleneck)),
        slack=slack,
    )
