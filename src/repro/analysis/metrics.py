"""Aggregate metrics used by the experiment harness.

The paper reports, for each heuristic, the *relative performance*: the ratio
of the heuristic's single-tree throughput to the optimal multiple-tree
throughput returned by the linear program, averaged over an ensemble of
platforms (Figures 4 and 5), together with its deviation (Table 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["SummaryStatistics", "summarize", "relative_performance", "geometric_mean"]


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean / deviation / extrema of a sample of ratios."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def format(self, as_percentage: bool = True) -> str:
        """Human-readable ``mean (+/- std)`` string, optionally in percent."""
        if as_percentage:
            return f"{100 * self.mean:.0f}% (+/-{100 * self.std:.0f}%)"
        return f"{self.mean:.3f} (+/-{self.std:.3f})"


def relative_performance(heuristic_throughput: float, optimal_throughput: float) -> float:
    """Ratio of a heuristic throughput to the reference optimal throughput."""
    if optimal_throughput <= 0:
        raise ValueError(f"optimal throughput must be positive, got {optimal_throughput!r}")
    if heuristic_throughput < 0:
        raise ValueError(
            f"heuristic throughput must be non-negative, got {heuristic_throughput!r}"
        )
    return heuristic_throughput / optimal_throughput


def summarize(values: Iterable[float]) -> SummaryStatistics:
    """Mean, population standard deviation and extrema of ``values``."""
    data: Sequence[float] = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    count = len(data)
    mean = sum(data) / count
    variance = sum((v - mean) ** 2 for v in data) / count
    return SummaryStatistics(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(data),
        maximum=max(data),
    )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (useful for ratios spanning orders of magnitude)."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot take the geometric mean of an empty sample")
    if any(v <= 0 for v in data):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))
