"""Steady-state throughput, makespan, bottleneck and metric analysis."""

from .bottleneck import BottleneckReport, analyze_bottleneck
from .makespan import (
    MakespanReport,
    fill_time,
    makespan_lower_bound,
    pipelined_makespan,
    pipelined_makespan_reference,
)
from .metrics import SummaryStatistics, geometric_mean, relative_performance, summarize
from .throughput import (
    ThroughputReport,
    collective_node_periods,
    collective_throughput,
    distinct_message_multiplicities,
    node_periods,
    tree_throughput,
)

__all__ = [
    "BottleneckReport",
    "analyze_bottleneck",
    "MakespanReport",
    "fill_time",
    "makespan_lower_bound",
    "pipelined_makespan",
    "pipelined_makespan_reference",
    "SummaryStatistics",
    "geometric_mean",
    "relative_performance",
    "summarize",
    "ThroughputReport",
    "collective_node_periods",
    "collective_throughput",
    "distinct_message_multiplicities",
    "node_periods",
    "tree_throughput",
]
