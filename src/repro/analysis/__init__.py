"""Steady-state throughput, makespan, bottleneck and metric analysis."""

from .bottleneck import BottleneckReport, analyze_bottleneck
from .makespan import (
    MakespanReport,
    fill_time,
    makespan_lower_bound,
    pipelined_makespan,
    pipelined_makespan_reference,
)
from .metrics import SummaryStatistics, geometric_mean, relative_performance, summarize
from .throughput import ThroughputReport, node_periods, tree_throughput

__all__ = [
    "BottleneckReport",
    "analyze_bottleneck",
    "MakespanReport",
    "fill_time",
    "makespan_lower_bound",
    "pipelined_makespan",
    "pipelined_makespan_reference",
    "SummaryStatistics",
    "geometric_mean",
    "relative_performance",
    "summarize",
    "ThroughputReport",
    "node_periods",
    "tree_throughput",
]
