"""Persistent warm worker pool: long-lived processes with warm sessions.

:class:`~repro.runtime.ProcessExecutor` spins up a fresh
``ProcessPoolExecutor`` per ``map`` call, so every batch pays worker
start-up *and* re-primes every worker-local cache (platforms, compiled CSR
views, LP solutions) from nothing — which is how ``BENCH_pipeline.json``
ended up recording a parallel *slow-down*.  :class:`WarmPoolExecutor` is
the pluggable backend that fixes this (ROADMAP item 3):

* **Long-lived workers.**  ``jobs`` worker processes are spawned lazily
  and survive across ``map``/``submit`` calls.  A worker's module globals
  — in particular the warm :class:`~repro.api.Session` created by
  :func:`repro.api.session._solve_job_group_warm` — persist, so the second
  batch touching a platform pays neither process start-up nor LP re-derive.
* **Thread-per-worker supervision.**  Each worker is owned by one parent
  thread holding its duplex pipe: submit → send → blocking ``recv``.
  A broken pipe *is* the crash signal (no polling), the current task's
  future fails with :class:`~repro.exceptions.WorkerCrashError`, and the
  slot respawns its worker within a bounded budget.  One in-flight task
  per worker also means no correlation protocol.
* **Shared platform arrays.**  The pool carries a
  :class:`~repro.shm.SharedSegmentRegistry`; callers (the session facade)
  publish compiled platform arrays once and workers attach read-only
  views — see :mod:`repro.shm` for the lifecycle contract that keeps
  ``/dev/shm`` clean across crashes.
* **Fault plans travel per task.**  Environment variables only propagate
  at spawn time, and warm workers usually pre-date the ``inject_faults``
  context, so :meth:`WarmPoolExecutor.submit` snapshots the plan text and
  the worker applies it to its own environment before each attempt.

Supervision (retries, timeouts, degradation) stays in
:class:`~repro.runtime.SupervisedExecutor`, which recognises this class by
its ``supervises_as_pool`` marker and drives :meth:`submit` /
:meth:`abandon` / :attr:`healthy` directly.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
import weakref
from concurrent.futures import Future
from typing import Any, Callable, Iterator, Sequence

from .exceptions import ExperimentError, WorkerCrashError
from .runtime import FAULT_PLAN_ENV, _run_attempt, register_backend
from .shm import SharedSegmentRegistry

__all__ = ["WarmPoolExecutor"]

_STOP = object()  # serving-thread shutdown sentinel


def _echo_probe(value: Any) -> Any:
    """Round-trip probe used to warm up workers and test the pool."""
    return value


def _crash_probe(value: Any) -> Any:
    """Kill the worker mid-task (tests and benchmarks of the crash path)."""
    os._exit(int(value) if value else 1)


def _sleep_probe(seconds: float) -> float:
    """Occupy a worker for ``seconds`` (timeout-path tests)."""
    time.sleep(float(seconds))
    return float(seconds)


def _worker_main(connection: Any, worker_id: int) -> None:
    """Worker process loop: apply the task's fault plan, run it, reply.

    Replies are ``("ok", value)`` or ``("err", exception)``; an unpicklable
    value or exception is flattened to an :class:`ExperimentError` so the
    pipe never desynchronises.  Crash faults (``os._exit``) and signals are
    deliberately *not* caught — a dead worker is the parent's crash signal.
    """
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):  # parent went away
            return
        if message[0] == "stop":
            connection.close()
            return
        _, function, task, label, attempt, fault_hook, plan_text = message
        if plan_text is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = plan_text
        try:
            value = _run_attempt(function, task, label, attempt, None, fault_hook)
            reply = ("ok", value)
        except Exception as exc:
            reply = ("err", exc)
        try:
            pickle.dumps(reply[1])
        except Exception as exc:
            reply = (
                "err",
                ExperimentError(
                    f"warm-pool task {label!r} produced an unpicklable "
                    f"{reply[0] == 'ok' and 'result' or 'error'}: {exc}"
                ),
            )
        try:
            connection.send(reply)
        except (EOFError, OSError, BrokenPipeError):
            return


class _Slot:
    """One worker seat: its process, pipe, and the task it is running."""

    __slots__ = ("index", "lock", "process", "connection", "current", "spawned")

    def __init__(self, index: int) -> None:
        self.index = index
        self.lock = threading.Lock()
        self.process: multiprocessing.process.BaseProcess | None = None
        self.connection: Any = None
        self.current: Future | None = None
        self.spawned = False  # ever held a worker (respawn vs first spawn)


def _terminate_slot(slot: _Slot, grace: float = 1.0) -> None:
    """Tear one worker down hard (close pipe first so recv unblocks)."""
    with slot.lock:
        process, connection = slot.process, slot.connection
        slot.process, slot.connection = None, None
    if connection is not None:
        try:
            connection.close()
        except OSError:
            pass
    if process is not None and process.is_alive():
        process.terminate()
        process.join(grace)
        if process.is_alive():  # pragma: no cover - stuck in kernel
            process.kill()
            process.join(grace)


def _finalize_pool(slots: list[_Slot], registry: SharedSegmentRegistry) -> None:
    """GC / interpreter-exit backstop: no orphan workers, no leaked segments."""
    for slot in slots:
        _terminate_slot(slot, grace=0.2)
    registry.close()


class WarmPoolExecutor:
    """Order-preserving executor over persistent warm worker processes.

    Satisfies the :class:`~repro.runtime.TaskExecutor` protocol (``jobs``
    attribute plus :meth:`map`) and additionally the pool-supervision
    surface the ``supervises_as_pool`` marker promises: :meth:`submit`
    returning a :class:`~concurrent.futures.Future` per task,
    :meth:`abandon` to put down a hung worker, and :attr:`healthy` to
    decide between resubmission and degradation.

    Parameters
    ----------
    jobs:
        Number of worker processes (and serving threads).
    max_respawns:
        Pool-wide budget of worker *re*-spawns after crashes; the initial
        spawns are free.  Defaults to ``max(4, 2 * jobs)``.  An exhausted
        budget fails subsequent tasks with :class:`WorkerCrashError`, which
        the supervisor turns into in-process degradation.
    start_method:
        ``multiprocessing`` start method.  The default ``spawn`` is crash-
        isolated and thread-safe; its cost is paid once per worker
        lifetime, which is the entire point of keeping workers warm.
    registry:
        Optional shared-segment registry to adopt (owned either way: the
        pool closes it on shutdown).
    """

    name = "warm-pool"
    #: SupervisedExecutor duck-types on this to drive submit/abandon/healthy.
    supervises_as_pool = True

    def __init__(
        self,
        jobs: int,
        *,
        max_respawns: int | None = None,
        start_method: str = "spawn",
        registry: SharedSegmentRegistry | None = None,
    ) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.max_respawns = (
            max(4, 2 * jobs) if max_respawns is None else max_respawns
        )
        self.registry = registry if registry is not None else SharedSegmentRegistry()
        self._context = multiprocessing.get_context(start_method)
        self._tasks: "queue.SimpleQueue[Any]" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._closed = False
        self._slots = [_Slot(index) for index in range(jobs)]
        self._threads: list[threading.Thread] = []
        self.spawns = 0
        self.respawns = 0
        self.crashes = 0
        self.completed = 0
        self.failed = 0
        self._finalizer = weakref.finalize(
            self, _finalize_pool, self._slots, self.registry
        )

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn_worker(self, slot: _Slot) -> None:
        """Start a fresh worker in ``slot`` (serving thread only)."""
        parent_end, child_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_end, slot.index),
            name=f"repro-warm-{slot.index}",
            daemon=True,
        )
        process.start()
        child_end.close()  # the worker holds the only child-side handle now
        with slot.lock:
            slot.process, slot.connection = process, parent_end
        with self._lock:
            self.spawns += 1
            if slot.spawned:
                self.respawns += 1
        slot.spawned = True

    def _ensure_worker(self, slot: _Slot) -> None:
        """Have a live worker in ``slot`` or raise :class:`WorkerCrashError`."""
        with slot.lock:
            if slot.process is not None and slot.process.is_alive():
                return
        if slot.spawned:
            with self._lock:
                if self.respawns >= self.max_respawns:
                    raise WorkerCrashError(
                        f"warm pool respawn budget exhausted "
                        f"({self.respawns}/{self.max_respawns} respawns used)"
                    )
        _terminate_slot(slot)  # reap any dead remnants before respawning
        self._spawn_worker(slot)

    def _serve(self, slot: _Slot) -> None:
        """Serving-thread loop: one task at a time through ``slot``'s worker."""
        while True:
            item = self._tasks.get()
            if item is _STOP:
                return
            future, message, label = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                self._ensure_worker(slot)
            except Exception as exc:
                with self._lock:
                    self.failed += 1
                future.set_exception(exc)
                continue
            with slot.lock:
                connection = slot.connection
                slot.current = future
            try:
                connection.send(message)
                kind, payload = connection.recv()
            except (EOFError, OSError, BrokenPipeError):
                # The worker died under us (injected crash, OOM kill,
                # abandon()): charge the crash to this task and retire the
                # corpse; the next task through this slot respawns.
                with self._lock:
                    self.crashes += 1
                    self.failed += 1
                _terminate_slot(slot)
                if not future.done():
                    future.set_exception(
                        WorkerCrashError(
                            f"warm worker died while running task {label!r}"
                        )
                    )
                continue
            finally:
                with slot.lock:
                    slot.current = None
            if kind == "ok":
                with self._lock:
                    self.completed += 1
                future.set_result(payload)
            else:
                with self._lock:
                    self.failed += 1
                future.set_exception(payload)

    def _start_threads(self) -> None:
        with self._lock:
            if self._closed:
                raise ExperimentError("warm pool is closed")
            if self._threads:
                return
            self._threads = [
                threading.Thread(
                    target=self._serve,
                    args=(slot,),
                    name=f"repro-warm-serve-{slot.index}",
                    daemon=True,
                )
                for slot in self._slots
            ]
            for thread in self._threads:
                thread.start()

    # ------------------------------------------------------------------ #
    # Submission surface
    # ------------------------------------------------------------------ #
    def submit(
        self,
        function: Callable[[Any], Any],
        task: Any,
        *,
        label: str = "",
        attempt: int = 0,
        fault_hook: bool = True,
    ) -> Future:
        """Queue one task; the future resolves to its value or exception.

        The active fault plan (if any) is snapshotted *now* — workers
        pre-date ``inject_faults`` contexts, so the plan must travel with
        the task rather than rely on environment inheritance.
        """
        self._start_threads()
        future: Future = Future()
        message = (
            "run", function, task, label, attempt, fault_hook,
            os.environ.get(FAULT_PLAN_ENV),
        )
        self._tasks.put((future, message, label))
        return future

    def map(
        self,
        function: Callable[[Any], Any],
        tasks: Sequence[Any],
    ) -> Iterator[Any]:
        """Order-preserving map (the plain :class:`TaskExecutor` surface)."""
        futures = [
            self.submit(function, task, label=f"task-{index}")
            for index, task in enumerate(tasks)
        ]
        return (future.result() for future in futures)

    def abandon(self, future: Future) -> bool:
        """Put down the worker running ``future`` (hung-task recovery).

        The supervisor calls this after a per-task timeout: terminating the
        worker unblocks its serving thread (broken pipe), which charges the
        crash to this future and frees the slot for the next task.
        """
        for slot in self._slots:
            with slot.lock:
                is_current = slot.current is future
            if is_current:
                _terminate_slot(slot)
                return True
        return False

    @property
    def healthy(self) -> bool:
        """Whether resubmitting to the pool can still succeed."""
        with self._lock:
            if self._closed:
                return False
            if self.respawns < self.max_respawns:
                return True
        return any(
            slot.process is not None and slot.process.is_alive()
            or not slot.spawned
            for slot in self._slots
        )

    def ensure_started(self) -> None:
        """Spawn and warm every worker now (benchmarks front-load this).

        Each serving thread is busy until its probe returns, so ``jobs``
        probes land on ``jobs`` distinct workers.
        """
        self._start_threads()
        probes = [
            self.submit(_echo_probe, index, label=f"warmup-{index}", fault_hook=False)
            for index in range(self.jobs)
        ]
        for probe in probes:
            probe.result()

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Pool health snapshot for ``cache_stats()`` / ``/statz``."""
        alive = sum(
            1
            for slot in self._slots
            if slot.process is not None and slot.process.is_alive()
        )
        with self._lock:
            counters = {
                "pool_size": self.jobs,
                "alive": alive,
                "spawns": self.spawns,
                "respawns": self.respawns,
                "max_respawns": self.max_respawns,
                "crashes": self.crashes,
                "completed": self.completed,
                "failed": self.failed,
            }
        counters["shared_segments"] = self.registry.stats()
        return counters

    def close(self, grace: float = 2.0) -> None:
        """Stop threads, retire workers, unlink shared segments (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
        for _ in threads:
            self._tasks.put(_STOP)
        for thread in threads:
            thread.join(grace)
        for slot in self._slots:
            with slot.lock:
                connection = slot.connection
            if connection is not None:
                try:
                    connection.send(("stop",))
                except (EOFError, OSError, BrokenPipeError):
                    pass
            with slot.lock:
                process = slot.process
            if process is not None:
                process.join(grace)
            _terminate_slot(slot)
        self.registry.close()
        self._finalizer.detach()

    def __enter__(self) -> "WarmPoolExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


register_backend("warm-pool", lambda jobs: WarmPoolExecutor(jobs))
