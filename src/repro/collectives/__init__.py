"""Collective operations on top of the steady-state broadcast machinery.

:class:`CollectiveSpec` describes *which* collective to run (broadcast,
multicast, scatter, reduce, gather — kind, root, target set);
:func:`effective_problem` normalises reversed kinds onto the reversed
platform so every downstream layer only ever sees the three forward kinds.

The layer-specific entry points live next to their broadcast counterparts:

* :func:`repro.lp.formulation.build_collective_lp` /
  :func:`repro.lp.solver.solve_collective_lp` — the spec-parameterised
  ``SSB(G)`` linear program;
* :func:`repro.core.registry.build_collective_tree` — spec-aware tree
  heuristics (Steiner coverage of the target set);
* :func:`repro.simulation.collective.simulate_collective` — pipelined
  simulation (broadcast-style replay for combinable kinds, distinct-message
  replay for scatter / gather);
* :func:`repro.analysis.throughput.collective_throughput` — closed-form
  steady-state throughput of a tree for a spec.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .spec import CollectiveKind, CollectiveSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..platform.graph import Platform

__all__ = ["CollectiveKind", "CollectiveSpec", "effective_problem", "require_feasible"]


def effective_problem(
    platform: "Platform", spec: CollectiveSpec
) -> tuple["Platform", CollectiveSpec]:
    """Normalise ``(platform, spec)`` into an equivalent forward problem.

    Broadcast / multicast / scatter are returned unchanged; reduce / gather
    become their dual forward kind on :meth:`Platform.reversed
    <repro.platform.graph.Platform.reversed>` (same root, same targets).
    The reversed view is cached on the platform, so repeated calls along one
    workflow (LP, heuristic, simulation) share a single platform object —
    and therefore its compiled arrays and LP solution cache entries.
    """
    spec.validate(platform)
    if spec.is_reversed:
        return platform.reversed(), spec.dual()
    return platform, spec


def require_feasible(platform: "Platform", spec: CollectiveSpec) -> None:
    """Raise :class:`~repro.exceptions.DisconnectedPlatformError` when some
    target cannot be served (unreachable from the root along the flow
    direction of ``spec``)."""
    effective_platform, effective_spec = effective_problem(platform, spec)
    effective_platform.require_targets_reachable(
        effective_spec.source, effective_spec.resolve_targets(effective_platform)
    )
