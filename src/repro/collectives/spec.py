"""Specification of a steady-state collective operation.

The paper's machinery — the ``SSB(G)`` linear program of Section 4.1, the
tree heuristics of Sections 3–4, the pipelined simulation — is formulated
for *broadcast*, but nothing in it is broadcast-specific:

* **multicast** restricts the commodity set of the LP (and the coverage
  requirement of the trees) to a subset of target processors; relay nodes
  may still forward slices they do not consume;
* **scatter** sends a *distinct* message to every target, so messages to
  different destinations can no longer be nested into one another: the
  nesting constraint (d) ``n_{u,v} >= x^{u,v}_w`` becomes the sum
  ``n_{u,v} = sum_w x^{u,v}_w``;
* **reduce** (with a combinable operator) and **gather** are the duals of
  broadcast and scatter on the *reversed* platform: each processor pushes
  one slice per period toward the root, and partial results either combine
  along the way (reduce, nesting = ``max``) or stay distinct (gather,
  nesting = ``sum``).

:class:`CollectiveSpec` packages the three degrees of freedom (kind, root
processor, target set) into one immutable value that every layer of the
stack — ``lp``, ``core``, ``simulation``, ``experiments``, the CLI — accepts
instead of a bare broadcast source.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import TYPE_CHECKING, Any, Iterable

from ..exceptions import PlatformError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..platform.graph import Platform

__all__ = ["CollectiveKind", "CollectiveSpec"]

NodeName = Any


class CollectiveKind(str, Enum):
    """The collective operations the steady-state machinery supports."""

    BROADCAST = "broadcast"
    MULTICAST = "multicast"
    SCATTER = "scatter"
    REDUCE = "reduce"
    GATHER = "gather"


#: Dual pairs: a reversed-direction collective on ``G`` is its dual solved on
#: the reversed platform ``G^T`` (flows change direction; combinable kinds
#: stay combinable, distinct-message kinds stay distinct).
_DUAL: dict[CollectiveKind, CollectiveKind] = {
    CollectiveKind.BROADCAST: CollectiveKind.REDUCE,
    CollectiveKind.MULTICAST: CollectiveKind.REDUCE,
    CollectiveKind.SCATTER: CollectiveKind.GATHER,
    CollectiveKind.REDUCE: CollectiveKind.BROADCAST,
    CollectiveKind.GATHER: CollectiveKind.SCATTER,
}


@dataclass(frozen=True)
class CollectiveSpec:
    """One collective operation: kind, root processor, optional target set.

    Parameters
    ----------
    kind:
        The collective operation (a :class:`CollectiveKind` or its string
        value).
    source:
        The root processor: the emitter for broadcast / multicast / scatter,
        the processor accumulating the result for reduce / gather.
    targets:
        The processors that must receive (or, for reversed kinds,
        contribute) data.  ``None`` means "every processor except the
        source".  The source is allowed in the set and ignored (it holds
        the data by definition).
    """

    kind: CollectiveKind
    source: NodeName
    targets: tuple[NodeName, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", CollectiveKind(self.kind))
        if self.targets is not None:
            object.__setattr__(self, "targets", tuple(self.targets))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def broadcast(cls, source: NodeName) -> "CollectiveSpec":
        """Broadcast from ``source`` to every other processor."""
        return cls(CollectiveKind.BROADCAST, source)

    @classmethod
    def multicast(cls, source: NodeName, targets: Iterable[NodeName]) -> "CollectiveSpec":
        """Multicast from ``source`` to the ``targets`` subset."""
        return cls(CollectiveKind.MULTICAST, source, tuple(targets))

    @classmethod
    def scatter(
        cls, source: NodeName, targets: Iterable[NodeName] | None = None
    ) -> "CollectiveSpec":
        """Scatter distinct messages from ``source`` to the targets."""
        return cls(CollectiveKind.SCATTER, source, None if targets is None else tuple(targets))

    @classmethod
    def reduce(
        cls, source: NodeName, targets: Iterable[NodeName] | None = None
    ) -> "CollectiveSpec":
        """Reduce (combinable partial results) from the targets to ``source``."""
        return cls(CollectiveKind.REDUCE, source, None if targets is None else tuple(targets))

    @classmethod
    def gather(
        cls, source: NodeName, targets: Iterable[NodeName] | None = None
    ) -> "CollectiveSpec":
        """Gather distinct messages from the targets at ``source``."""
        return cls(CollectiveKind.GATHER, source, None if targets is None else tuple(targets))

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #
    @property
    def is_reversed(self) -> bool:
        """Whether data flows *toward* the root (reduce / gather)."""
        return self.kind in (CollectiveKind.REDUCE, CollectiveKind.GATHER)

    @property
    def distinct_messages(self) -> bool:
        """Whether every commodity is a distinct message (scatter / gather).

        Distinct messages cannot be nested into one another, which turns the
        LP nesting constraint (d) from a ``max`` into a ``sum`` and the
        per-edge transfer multiplicity from 1 into the number of commodities
        routed through the edge.
        """
        return self.kind in (CollectiveKind.SCATTER, CollectiveKind.GATHER)

    def dual(self) -> "CollectiveSpec":
        """The equivalent collective on the reversed platform.

        ``spec.dual()`` keeps the root and target set and flips the flow
        direction: solving ``spec`` on ``G`` is solving ``spec.dual()`` on
        ``G.reversed()`` (and vice versa).
        """
        return replace(self, kind=_DUAL[self.kind])

    # ------------------------------------------------------------------ #
    # Resolution against a platform
    # ------------------------------------------------------------------ #
    def validate(self, platform: "Platform") -> None:
        """Check the spec is well-formed on ``platform``; raise otherwise."""
        if not platform.has_node(self.source):
            raise PlatformError(
                f"collective source {self.source!r} is not a node of "
                f"platform {platform.name!r}"
            )
        if self.targets is not None:
            unknown = [t for t in self.targets if not platform.has_node(t)]
            if unknown:
                raise PlatformError(
                    f"collective targets {unknown!r} are not nodes of "
                    f"platform {platform.name!r}"
                )
        if not self.resolve_targets(platform):
            raise PlatformError(
                f"collective {self.kind.value!r} from {self.source!r} has no "
                "target besides the source"
            )

    def resolve_targets(self, platform: "Platform") -> tuple[NodeName, ...]:
        """Target processors in platform (node insertion) order.

        The source is excluded; duplicates collapse.  With ``targets=None``
        this is every other processor, which makes the broadcast LP /
        heuristics a special case bit-for-bit (same commodity order).
        """
        if self.targets is None:
            return tuple(n for n in platform.nodes if n != self.source)
        wanted = set(self.targets)
        return tuple(n for n in platform.nodes if n != self.source and n in wanted)

    def is_total(self, platform: "Platform") -> bool:
        """Whether the target set covers every processor but the source."""
        return len(self.resolve_targets(platform)) == platform.num_nodes - 1

    def describe(self) -> str:
        """Short human-readable label used in reports and the CLI."""
        if self.targets is None:
            scope = "all nodes"
        else:
            scope = f"{len(set(self.targets) - {self.source})} targets"
        arrow = "<-" if self.is_reversed else "->"
        return f"{self.kind.value} {self.source!r} {arrow} {scope}"
