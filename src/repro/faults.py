"""Deterministic, seed-driven fault injection for the fault-tolerant runtime.

The harness makes a configurable fraction of the library's failure-prone
operations misbehave — *deterministically*, so a test can predict exactly
which tasks fail and assert that every injected fault is accounted for:

* **worker tasks** raise (:class:`InjectedWorkerError`), hang past their
  timeout, or kill their worker process (breaking the pool);
* **solver calls** fail transiently under the primary ``linprog`` method,
  exercising the dual-simplex / interior-point fallback chain of
  :mod:`repro.lp.solver`;
* **cache reads** return corrupted payloads, exercising the
  quarantine-and-recompute path of :class:`~repro.runtime.ResultCache`;
* **service requests** fail inside the solve service's request handling
  (:class:`InjectedRequestError`), exercising the structured-error path of
  :mod:`repro.service` — the server must answer with a JSON error body,
  never a traceback or a dead connection.

Every decision is a pure function of the :class:`FaultPlan` seed and a
stable token (the supervised task's label, the cache key, the solver call
ordinal): runs are bit-reproducible, and serial and process-pool executions
inject the *same* faults because the plan travels in an environment
variable (:data:`~repro.runtime.FAULT_PLAN_ENV`) that worker processes
inherit.

Usage::

    from repro.faults import FaultPlan, inject_faults

    with inject_faults(FaultPlan(seed=7, task_error_rate=0.2)):
        results = session.solve_many(jobs, on_error="collect")

Injected exceptions derive from :class:`~repro.exceptions.InjectedFault`
(a :class:`~repro.exceptions.ReproError`), so the library-wide
``except ReproError`` contract holds under injection.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, fields
from typing import Any, Mapping

from .exceptions import ConfigError, InjectedFault
from .runtime import FAULT_PLAN_ENV

__all__ = [
    "FaultPlan",
    "inject_faults",
    "active_plan",
    "classify_task",
    "in_pool_worker",
    "InjectedWorkerError",
    "InjectedCrashError",
    "InjectedSolverError",
    "InjectedRequestError",
]

#: Exit code of a worker process killed by an injected crash fault.
CRASH_EXIT_CODE = 23


def in_pool_worker() -> bool:
    """Whether this process is a pool worker (has a multiprocessing parent).

    Crash faults are only allowed to genuinely kill the process here: a
    dead worker is a recoverable event for the supervisor (both the
    per-``map`` process pool and the warm pool respawn it), while killing
    the main process would take the whole campaign down.
    """
    return multiprocessing.parent_process() is not None


class InjectedWorkerError(InjectedFault):
    """A worker task made to raise by the fault plan (transient)."""


class InjectedCrashError(InjectedFault):
    """An in-process stand-in for a worker crash.

    Crash faults kill the process with :func:`os._exit` only inside pool
    workers (so the pool breaks, exercising respawn and serial fallback);
    in the supervising process they downgrade to this exception — a hard
    exit there would take the whole campaign down, which is exactly what
    the fault-tolerant runtime exists to prevent.
    """


class InjectedSolverError(InjectedFault):
    """A transient LP solver failure (recovered by the method fallback)."""


class InjectedRequestError(InjectedFault):
    """A solve-service request made to fail by the fault plan.

    The service answers it with a structured JSON 500 — the soak test's way
    of proving that internal errors never escape as tracebacks."""


_RATE_FIELDS = (
    "task_error_rate",
    "task_timeout_rate",
    "task_crash_rate",
    "solver_error_rate",
    "cache_corrupt_rate",
    "request_error_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """Which fraction of each operation fails, and how.

    The three task rates partition the roll space: a task's deterministic
    roll in ``[0, 1)`` selects *one* of error / hang / crash (or none), so
    ``task_error_rate=0.1, task_timeout_rate=0.05, task_crash_rate=0.05``
    makes 20% of tasks fail, each in exactly one way.

    ``persistent=False`` (the default) makes task faults *transient*: they
    fire only on a task's first attempt, so any retry budget recovers them.
    With ``persistent=True`` the fault fires on every attempt — the way to
    produce permanent failures and structured error records.
    """

    seed: int = 0
    task_error_rate: float = 0.0
    task_timeout_rate: float = 0.0
    task_crash_rate: float = 0.0
    solver_error_rate: float = 0.0
    cache_corrupt_rate: float = 0.0
    request_error_rate: float = 0.0
    hang_seconds: float = 0.5
    persistent: bool = False

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must lie in [0, 1], got {value!r}")
        total = self.task_error_rate + self.task_timeout_rate + self.task_crash_rate
        if total > 1.0:
            raise ConfigError(
                f"task fault rates must sum to <= 1, got {total!r}"
            )
        if self.hang_seconds <= 0:
            raise ConfigError(
                f"hang_seconds must be positive, got {self.hang_seconds!r}"
            )

    def to_json(self) -> str:
        """Serialise for the environment variable (worker inheritance)."""
        return json.dumps(
            {f.name: getattr(self, f.name) for f in fields(self)}, sort_keys=True
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild from :meth:`to_json` output."""
        data: Mapping[str, Any] = json.loads(text)
        known = {f.name for f in fields(cls)}
        return cls(**{name: value for name, value in data.items() if name in known})


# --------------------------------------------------------------------------- #
# Activation
# --------------------------------------------------------------------------- #
_CACHED_PLAN: tuple[str, FaultPlan] | None = None


def active_plan() -> FaultPlan | None:
    """The plan currently carried by the environment, or ``None``.

    Memoized on the raw environment string, so the hot call sites pay one
    dictionary lookup when a plan is active and the environment check alone
    when it is not.
    """
    global _CACHED_PLAN
    text = os.environ.get(FAULT_PLAN_ENV)
    if not text:
        return None
    if _CACHED_PLAN is None or _CACHED_PLAN[0] != text:
        _CACHED_PLAN = (text, FaultPlan.from_json(text))
    return _CACHED_PLAN[1]


class inject_faults:
    """Context manager installing a :class:`FaultPlan` for the duration.

    The plan is published through :data:`~repro.runtime.FAULT_PLAN_ENV`, so
    worker processes spawned inside the context inherit it; the previous
    environment value is restored on exit.  Re-entrant and nestable (the
    innermost plan wins).
    """

    def __init__(self, plan: FaultPlan | None = None, **rates: Any) -> None:
        if plan is not None and rates:
            raise ConfigError("pass either a FaultPlan or keyword rates, not both")
        self.plan = plan if plan is not None else FaultPlan(**rates)
        self._previous: str | None = None

    def __enter__(self) -> FaultPlan:
        global _CACHED_PLAN
        self._previous = os.environ.get(FAULT_PLAN_ENV)
        os.environ[FAULT_PLAN_ENV] = self.plan.to_json()
        _CACHED_PLAN = None
        return self.plan

    def __exit__(self, *exc_info: Any) -> None:
        global _CACHED_PLAN
        if self._previous is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = self._previous
        _CACHED_PLAN = None


# --------------------------------------------------------------------------- #
# Deterministic decisions
# --------------------------------------------------------------------------- #
def _uniform(seed: int, site: str, token: str) -> float:
    """A reproducible uniform draw in ``[0, 1)`` for one (site, token)."""
    digest = hashlib.sha256(f"{seed}:{site}:{token}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def classify_task(plan: FaultPlan, label: str) -> str:
    """What the plan does to the task called ``label`` on a faulting attempt.

    Returns ``"ok"``, ``"error"``, ``"timeout"`` or ``"crash"``.  Pure and
    process-independent — tests use it to predict exactly which tasks the
    harness will hit.
    """
    roll = _uniform(plan.seed, "task", label)
    if roll < plan.task_error_rate:
        return "error"
    if roll < plan.task_error_rate + plan.task_timeout_rate:
        return "timeout"
    if roll < plan.task_error_rate + plan.task_timeout_rate + plan.task_crash_rate:
        return "crash"
    return "ok"


# --------------------------------------------------------------------------- #
# Hooks (called from runtime / lp.solver when a plan is active)
# --------------------------------------------------------------------------- #
def maybe_fail_task(label: str, attempt: int) -> None:
    """Fault hook at the supervised-task boundary (see :mod:`repro.runtime`)."""
    plan = active_plan()
    if plan is None:
        return
    if attempt > 0 and not plan.persistent:
        return  # transient: retries succeed
    kind = classify_task(plan, label)
    if kind == "error":
        raise InjectedWorkerError(
            f"injected worker fault for task {label!r} (attempt {attempt})"
        )
    if kind == "timeout":
        # Overrun the supervisor's per-task timeout, then proceed normally:
        # the abandoned attempt must stay side-effect-free either way.
        time.sleep(plan.hang_seconds)
        return
    if kind == "crash":
        if in_pool_worker():
            os._exit(CRASH_EXIT_CODE)  # kill the pool worker mid-task
        raise InjectedCrashError(
            f"injected crash fault for task {label!r} (attempt {attempt}, "
            f"downgraded to an exception outside worker processes)"
        )


_SOLVER_CALLS = 0


def maybe_fail_solver(method_attempt: int) -> None:
    """Fault hook inside the LP solver's method-fallback loop.

    Fires only for the *first* method of a solve (``method_attempt == 0``)
    so the failure is transient by construction: the alternate-method chain
    must recover it.  The decision token is the per-process solver call
    ordinal, advanced only on first attempts.
    """
    plan = active_plan()
    if plan is None or plan.solver_error_rate <= 0.0:
        return
    if method_attempt > 0:
        return
    global _SOLVER_CALLS
    token = str(_SOLVER_CALLS)
    _SOLVER_CALLS += 1
    if _uniform(plan.seed, "solver", token) < plan.solver_error_rate:
        raise InjectedSolverError(
            f"injected transient solver fault (call #{token})"
        )


def maybe_fail_request(token: str) -> None:
    """Fault hook inside the solve service's request handling.

    ``token`` is a stable per-request identifier (the service uses its
    request ordinal), so a given burst always injects failures into the
    same positions — tests can predict exactly which requests get the
    structured 500.
    """
    plan = active_plan()
    if plan is None or plan.request_error_rate <= 0.0:
        return
    if _uniform(plan.seed, "request", token) < plan.request_error_rate:
        raise InjectedRequestError(f"injected request fault (request {token})")


def maybe_corrupt_cache_text(key: str, text: str) -> str:
    """Fault hook on :class:`~repro.runtime.ResultCache` disk reads."""
    plan = active_plan()
    if plan is None or plan.cache_corrupt_rate <= 0.0:
        return text
    if _uniform(plan.seed, "cache", key) < plan.cache_corrupt_rate:
        return text[: max(1, len(text) // 2)]  # truncated JSON: unparsable
    return text
