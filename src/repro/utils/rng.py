"""Deterministic random-number management.

Every stochastic component of the library (platform generators, experiment
ensembles) takes either an integer seed, a :class:`numpy.random.Generator`
or ``None``.  The helpers here normalise those inputs and derive independent
child generators so that

* a whole experiment is reproducible from a single integer seed, and
* each platform instance of an ensemble gets its own independent stream
  (so re-ordering or parallelising instances does not change the results).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "spawn_seeds",
    "hash_stable",
    "sample_positive_normal",
    "round_robin_chunks",
]

SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a non-deterministic generator; an existing generator is
    returned unchanged (so callers can thread a single stream through
    several helpers).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    The derivation uses :class:`numpy.random.SeedSequence` spawning, which
    guarantees statistical independence of the child streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count!r}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream deterministically.
        children = seed.integers(0, 2**63 - 1, size=count, dtype=np.int64)
        return [np.random.default_rng(int(c)) for c in children]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(seed: int | None, *components: int | str) -> int:
    """Derive a stable child seed from a base seed and extra components.

    Used by the experiment runner so that instance ``k`` of configuration
    ``(n, density)`` always sees the same platform, independently of which
    other configurations are evaluated in the same run.
    """
    base = 0 if seed is None else int(seed)
    entropy: list[int] = [base]
    for component in components:
        if isinstance(component, str):
            entropy.append(abs(hash_stable(component)) % (2**31))
        else:
            entropy.append(int(component) % (2**31))
    sequence = np.random.SeedSequence(entropy)
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def spawn_seeds(
    master_seed: int | None, count: int, *components: int | str
) -> list[int]:
    """Derive ``count`` independent hash-based child seeds from one master.

    Child ``k`` is exactly ``derive_seed(master_seed, *components, k)``, so
    ensembles indexed by instance keep their historical seed values when
    migrated onto this helper, and every child is independent of how many
    siblings exist (growing an ensemble never reshuffles the earlier
    instances).  Monte-Carlo trace ensembles use the plain two-argument form
    ``spawn_seeds(master, n)``; the experiment pipelines thread their
    configuration axes through ``components``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count!r}")
    return [derive_seed(master_seed, *components, index) for index in range(count)]


def hash_stable(text: str) -> int:
    """A process-independent string hash (Python's ``hash`` is salted)."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) % (2**61 - 1)
    return value


def sample_positive_normal(
    rng: np.random.Generator,
    mean: float,
    deviation: float,
    size: int | Sequence[int] | None = None,
    minimum_fraction: float = 0.05,
) -> np.ndarray | float:
    """Draw from ``N(mean, deviation)`` truncated away from zero.

    The paper draws link rates from a Gaussian distribution (mean 100 MB/s,
    deviation 20 MB/s); a clean reproduction must avoid non-positive draws,
    so values below ``minimum_fraction * mean`` are resampled by clipping.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean!r}")
    if deviation < 0:
        raise ValueError(f"deviation must be non-negative, got {deviation!r}")
    floor = minimum_fraction * mean
    values = rng.normal(loc=mean, scale=deviation, size=size)
    return np.maximum(values, floor) if size is not None else max(float(values), floor)


def round_robin_chunks(items: Iterable, chunks: int) -> list[list]:
    """Split ``items`` into ``chunks`` round-robin groups (load balancing)."""
    if chunks <= 0:
        raise ValueError(f"chunks must be positive, got {chunks!r}")
    groups: list[list] = [[] for _ in range(chunks)]
    for index, item in enumerate(items):
        groups[index % chunks].append(item)
    return groups
