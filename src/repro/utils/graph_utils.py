"""Graph helpers shared by the heuristics.

The pruning heuristics of Section 3 repeatedly ask the question *"does the
graph remain broadcast-feasible if I delete this edge?"*, i.e. does every
node stay reachable from the source.  Answering it with a full traversal per
candidate edge is what the paper's algorithms do (they are ``O(|E|^2)``
overall), and for the platform sizes of the evaluation (10–65 nodes) that is
perfectly fine; the helpers here keep those traversals tight and provide a
few other primitives (edge sorting, spanning-subgraph checks) reused across
heuristics.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable, Iterable, Mapping

__all__ = [
    "reachable_from",
    "is_spanning_from",
    "edge_removal_keeps_spanning",
    "sort_edges_by_weight",
    "adjacency_from_edges",
]

Node = Hashable
Edge = tuple[Node, Node]


def adjacency_from_edges(nodes: Iterable[Node], edges: Iterable[Edge]) -> dict[Node, set[Node]]:
    """Build an out-adjacency map (``node -> set of successors``)."""
    adjacency: dict[Node, set[Node]] = {node: set() for node in nodes}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set())
    return adjacency


def reachable_from(
    source: Node,
    adjacency: Mapping[Node, set[Node]],
    *,
    skip_edge: Edge | None = None,
) -> set[Node]:
    """Nodes reachable from ``source`` following directed edges.

    ``skip_edge`` lets the caller evaluate reachability *as if* one edge had
    been removed, without mutating the adjacency structure; this is the hot
    primitive of the pruning heuristics.
    """
    seen: set[Node] = {source}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        for successor in adjacency.get(node, ()):
            if skip_edge is not None and (node, successor) == skip_edge:
                continue
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return seen


def is_spanning_from(
    source: Node, nodes: Iterable[Node], adjacency: Mapping[Node, set[Node]]
) -> bool:
    """Whether every node of ``nodes`` is reachable from ``source``."""
    targets = set(nodes)
    return targets.issubset(reachable_from(source, adjacency))


def edge_removal_keeps_spanning(
    source: Node,
    nodes: Iterable[Node],
    adjacency: Mapping[Node, set[Node]],
    edge: Edge,
) -> bool:
    """Whether removing ``edge`` keeps every node reachable from ``source``."""
    targets = set(nodes)
    return targets.issubset(reachable_from(source, adjacency, skip_edge=edge))


def sort_edges_by_weight(
    edges: Iterable[Edge],
    weights: Mapping[Edge, float],
    *,
    descending: bool = True,
) -> list[Edge]:
    """Sort edges by weight with a deterministic tie-break on the edge itself.

    The paper's pruning heuristics iterate over edges "sorted by
    non-increasing weight"; ties are broken on the string form of the edge
    so that runs are reproducible whatever the hash seed.
    """
    return sorted(
        edges,
        key=lambda edge: (weights[edge], str(edge)),
        reverse=descending,
    )
