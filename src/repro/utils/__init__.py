"""Shared utilities: deterministic RNG handling, graph helpers, ASCII output."""

from .ascii_plot import ascii_chart, format_series_table, format_table, sparkline
from .graph_utils import (
    adjacency_from_edges,
    edge_removal_keeps_spanning,
    is_spanning_from,
    reachable_from,
    sort_edges_by_weight,
)
from .rng import (
    as_generator,
    derive_seed,
    hash_stable,
    round_robin_chunks,
    sample_positive_normal,
    spawn_generators,
    spawn_seeds,
)

__all__ = [
    "ascii_chart",
    "format_series_table",
    "format_table",
    "adjacency_from_edges",
    "edge_removal_keeps_spanning",
    "is_spanning_from",
    "reachable_from",
    "sort_edges_by_weight",
    "as_generator",
    "derive_seed",
    "hash_stable",
    "round_robin_chunks",
    "sample_positive_normal",
    "spawn_generators",
    "spawn_seeds",
    "sparkline",
]
