"""Tiny ASCII rendering helpers for benchmark and example output.

The paper reports its evaluation as two figures (relative performance
curves) and one table.  The benchmark harness regenerates the underlying
data and prints it as plain-text tables and rough ASCII line charts so the
shape of the curves can be eyeballed directly in a terminal or in the
captured benchmark log, without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series_table", "ascii_chart", "sparkline"]

#: Eight-level bar glyphs used by :func:`sparkline`, lowest to highest.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.3f}",
    padding: int = 2,
) -> str:
    """Render a list of rows as an aligned plain-text table."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    columns = len(headers)
    for row in rendered:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns} (headers {headers!r})"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(columns)
    ]
    sep = " " * padding

    def line(cells: Sequence[str]) -> str:
        return sep.join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    float_format: str = "{:.3f}",
) -> str:
    """Render several named series sharing the same x axis as one table."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(float(values[index]))
        rows.append(row)
    return format_table(headers, rows, float_format=float_format)


def sparkline(
    values: Sequence[float],
    *,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """One-line block-character sparkline of a series.

    The dynamic CLI summary renders each policy's achieved-vs-bound
    throughput ratio over time as one of these, so the drift (and the
    adaptive re-plans recovering from it) can be read off a single line.
    ``lo``/``hi`` pin the scale — pass ``lo=0.0, hi=1.0`` to make several
    ratio sparklines comparable; by default the series' own range is used.
    A flat series renders at the mid level rather than dividing by zero.
    """
    if not values:
        return ""
    floor = min(values) if lo is None else float(lo)
    ceiling = max(values) if hi is None else float(hi)
    if ceiling < floor:
        raise ValueError(f"hi ({ceiling!r}) must be >= lo ({floor!r})")
    span = ceiling - floor
    top = len(SPARK_LEVELS) - 1
    marks = []
    for value in values:
        if span == 0:
            level = top // 2
        else:
            fraction = (float(value) - floor) / span
            level = round(min(max(fraction, 0.0), 1.0) * top)
        marks.append(SPARK_LEVELS[level])
    return "".join(marks)


def ascii_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render a crude ASCII line chart of one or more series.

    Each series is plotted with a distinct mark; collisions show the mark of
    the last series drawn.  The chart is only meant to show the *shape* of
    the curves (who is above whom, where they cross), mirroring the role of
    Figures 4 and 5 in the paper.
    """
    if not series:
        raise ValueError("at least one series is required")
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        raise ValueError("series must not be empty")
    lo = min(all_values) if y_min is None else y_min
    hi = max(all_values) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    marks = "*o+x#@%&"
    grid = [[" "] * width for _ in range(height)]

    def to_col(index: int, total: int) -> int:
        if total == 1:
            return 0
        return round(index * (width - 1) / (total - 1))

    def to_row(value: float) -> int:
        fraction = (value - lo) / (hi - lo)
        return height - 1 - round(fraction * (height - 1))

    legend = []
    for series_index, (name, values) in enumerate(series.items()):
        mark = marks[series_index % len(marks)]
        legend.append(f"{mark} = {name}")
        for i, value in enumerate(values):
            row = min(max(to_row(float(value)), 0), height - 1)
            col = to_col(i, len(values))
            grid[row][col] = mark

    lines = [f"{hi:8.3f} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 8 + " |" + "".join(row))
    lines.append(f"{lo:8.3f} |" + "".join(grid[-1]))
    lines.append(" " * 10 + "-" * width)
    x_axis = f"{x_values[0]!s:<{width // 2}}{x_values[-1]!s:>{width // 2}}"
    lines.append(" " * 10 + x_axis)
    lines.append("legend: " + ", ".join(legend))
    return "\n".join(lines)
