"""Steady-state broadcast linear program (MTP optimal throughput)."""

from .formulation import LPVariableIndex, SteadyStateLPData, build_steady_state_lp
from .solution import SteadyStateSolution
from .solver import LPSolutionCache, optimal_throughput, solve_steady_state_lp

__all__ = [
    "LPVariableIndex",
    "SteadyStateLPData",
    "build_steady_state_lp",
    "SteadyStateSolution",
    "LPSolutionCache",
    "optimal_throughput",
    "solve_steady_state_lp",
]
