"""Steady-state broadcast linear program (MTP optimal throughput)."""

from .formulation import (
    LPVariableIndex,
    SteadyStateLPData,
    build_collective_lp,
    build_collective_lp_reference,
    build_steady_state_lp,
    build_steady_state_lp_reference,
)
from .solution import SteadyStateSolution
from .solver import (
    LPSolutionCache,
    collective_optimal_throughput,
    optimal_throughput,
    solve_collective_lp,
    solve_steady_state_lp,
)

__all__ = [
    "LPVariableIndex",
    "SteadyStateLPData",
    "build_collective_lp",
    "build_collective_lp_reference",
    "build_steady_state_lp",
    "build_steady_state_lp_reference",
    "SteadyStateSolution",
    "LPSolutionCache",
    "collective_optimal_throughput",
    "optimal_throughput",
    "solve_collective_lp",
    "solve_steady_state_lp",
]
