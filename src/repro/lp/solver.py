"""Solving the steady-state broadcast LP with SciPy's HiGHS backend.

The paper solves the program with Maple / MuPad; this reproduction uses
``scipy.optimize.linprog`` (interior point / simplex via HiGHS), which
handles the sparse programs produced by
:func:`repro.lp.formulation.build_steady_state_lp` for all platform sizes of
the evaluation (up to 65 nodes, a few hundred edges) in well under a second.

The module also provides :func:`optimal_throughput`, a light-weight helper
for callers that only need the MTP reference value, and an in-memory
memoisation layer (:class:`LPSolutionCache`) used by the experiment runner
so each platform's LP is solved once and shared by every heuristic that
needs it.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np
from scipy import optimize

from ..exceptions import InfeasibleLPError, LPError
from ..platform.graph import Platform
from .formulation import SteadyStateLPData, build_steady_state_lp
from .solution import SteadyStateSolution

__all__ = [
    "solve_steady_state_lp",
    "optimal_throughput",
    "LPSolutionCache",
]

NodeName = Any
Edge = tuple[NodeName, NodeName]

#: Flows below this value are considered numerical noise and dropped.
_FLOW_TOLERANCE = 1e-9


def _extract_solution(
    platform: Platform,
    data: SteadyStateLPData,
    result: optimize.OptimizeResult,
    solve_seconds: float,
    size: float | None,
) -> SteadyStateSolution:
    """Convert a raw ``linprog`` result into a :class:`SteadyStateSolution`."""
    values = np.asarray(result.x, dtype=float)
    index = data.index
    throughput = float(values[index.throughput])

    edge_messages: dict[Edge, float] = {}
    for e, edge in enumerate(index.edges):
        edge_messages[edge] = float(max(values[index.messages(e)], 0.0))

    flows: dict[tuple[Edge, NodeName], float] = {}
    for e, edge in enumerate(index.edges):
        for w_index, destination in enumerate(index.destinations):
            value = float(values[index.flow(e, w_index)])
            if value > _FLOW_TOLERANCE:
                flows[(edge, destination)] = value

    # Per-node in/out occupation in one pass over the edges: accumulate
    # ``n_{u,v} * T_{u,v}`` onto both endpoints through the compiled edge
    # index (the per-node × per-edge loops this replaces were O(V * E)).
    view = platform.compiled(size)
    occupied = np.asarray(
        [edge_messages[edge] for edge in index.edges]
    ) * view.transfer_times
    t_in = np.zeros(view.num_nodes)
    t_out = np.zeros(view.num_nodes)
    np.add.at(t_in, view.edge_targets, occupied)
    np.add.at(t_out, view.edge_sources, occupied)
    occupation: dict[NodeName, tuple[float, float]] = {
        name: (float(t_in[i]), float(t_out[i]))
        for i, name in enumerate(view.node_names)
    }

    return SteadyStateSolution(
        throughput=throughput,
        edge_messages=edge_messages,
        flows=flows,
        source=data.source,
        objective_per_node=occupation,
        solver_status=str(result.message),
        solve_seconds=solve_seconds,
        num_variables=index.num_variables,
        num_constraints=data.num_constraints,
    )


def solve_steady_state_lp(
    platform: Platform,
    source: NodeName,
    size: float | None = None,
    *,
    method: str = "highs",
) -> SteadyStateSolution:
    """Solve ``SSB(G)`` and return the full solution.

    Parameters
    ----------
    platform:
        Target platform; must be broadcast-feasible from ``source``.
    source:
        Broadcast source processor.
    size:
        Message-slice size used for the edge occupation times; defaults to
        the platform slice size.
    method:
        ``scipy.optimize.linprog`` method; the default HiGHS solver is both
        the fastest and the most robust choice.
    """
    data = build_steady_state_lp(platform, source, size)
    start = time.perf_counter()
    result = optimize.linprog(
        c=data.objective,
        A_ub=data.a_ub,
        b_ub=data.b_ub,
        A_eq=data.a_eq,
        b_eq=data.b_eq,
        bounds=data.bounds,
        method=method,
    )
    elapsed = time.perf_counter() - start
    if not result.success:
        raise InfeasibleLPError(
            f"steady-state LP failed for platform {platform.name!r} "
            f"(source {source!r}): {result.message}"
        )
    solution = _extract_solution(platform, data, result, elapsed, size)
    if solution.throughput <= 0:
        raise LPError(
            f"steady-state LP returned non-positive throughput "
            f"{solution.throughput!r} for platform {platform.name!r}"
        )
    return solution


def optimal_throughput(
    platform: Platform, source: NodeName, size: float | None = None
) -> float:
    """The MTP optimal throughput ``TP`` (reference value of the paper)."""
    return solve_steady_state_lp(platform, source, size).throughput


class LPSolutionCache:
    """Memoises LP solutions per (platform identity, source, size).

    The experiment runner evaluates several heuristics on the same platform;
    two of them (LP-Prune and LP-Grow-Tree) need the LP solution, and the
    relative-performance metric needs the optimal throughput.  Caching keyed
    on the platform object identity keeps each LP solved exactly once per
    platform without requiring platforms to be hashable by value.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[int, Any, float | None], SteadyStateSolution] = {}

    def solve(
        self, platform: Platform, source: NodeName, size: float | None = None
    ) -> SteadyStateSolution:
        """Return the cached solution, solving the LP on first use."""
        key = (id(platform), source, size)
        if key not in self._cache:
            self._cache[key] = solve_steady_state_lp(platform, source, size)
        return self._cache[key]

    def clear(self) -> None:
        """Drop every cached solution."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
