"""Solving the steady-state broadcast LP with SciPy's HiGHS backend.

The paper solves the program with Maple / MuPad; this reproduction uses
``scipy.optimize.linprog`` (interior point / simplex via HiGHS), which
handles the sparse programs produced by
:func:`repro.lp.formulation.build_steady_state_lp` for all platform sizes of
the evaluation (up to 65 nodes, a few hundred edges) in well under a second.

The module also provides :func:`optimal_throughput`, a light-weight helper
for callers that only need the MTP reference value, and an in-memory
memoisation layer (:class:`LPSolutionCache`) used by the experiment runner
so each platform's LP is solved once and shared by every heuristic that
needs it.
"""

from __future__ import annotations

import os
import time
from typing import Any

import numpy as np
from scipy import optimize

from ..collectives import CollectiveSpec, effective_problem
from ..exceptions import InfeasibleLPError, InjectedFault, LPError
from ..platform.graph import Platform
from ..runtime import FAULT_PLAN_ENV, BoundedCache, ByteBudget
from .formulation import SteadyStateLPData, build_collective_lp
from .solution import SteadyStateSolution

__all__ = [
    "solve_steady_state_lp",
    "solve_collective_lp",
    "optimal_throughput",
    "collective_optimal_throughput",
    "LPSolutionCache",
]

NodeName = Any
Edge = tuple[NodeName, NodeName]

#: Flows below this value are considered numerical noise and dropped.
_FLOW_TOLERANCE = 1e-9

#: Alternate ``linprog`` methods tried (in order, after the requested one)
#: before a failed solve becomes an :class:`InfeasibleLPError`.  The chain
#: covers transient numerical trouble: HiGHS auto-choice, then dual simplex,
#: then interior point.
_METHOD_FALLBACKS = ("highs", "highs-ds", "highs-ipm")

#: ``linprog`` status codes that describe the *model*, not the solver run:
#: 2 = infeasible, 3 = unbounded.  Retrying another method cannot change
#: these verdicts, so the chain stops immediately.
_DEFINITIVE_STATUSES = frozenset({2, 3})


def _method_chain(method: str) -> tuple[str, ...]:
    """The requested method followed by the deduplicated fallbacks."""
    chain = [method]
    for alternate in _METHOD_FALLBACKS:
        if alternate not in chain:
            chain.append(alternate)
    return tuple(chain)


def _run_linprog(
    data: SteadyStateLPData, method: str, attempt: int
) -> optimize.OptimizeResult:
    """One ``linprog`` call; the seam where fault injection plugs in."""
    if os.environ.get(FAULT_PLAN_ENV):
        from ..faults import maybe_fail_solver

        maybe_fail_solver(attempt)
    return optimize.linprog(
        c=data.objective,
        A_ub=data.a_ub,
        b_ub=data.b_ub,
        A_eq=data.a_eq,
        b_eq=data.b_eq,
        bounds=data.bounds,
        method=method,
    )


def _reverse_solution(
    solution: SteadyStateSolution, spec: CollectiveSpec
) -> SteadyStateSolution:
    """Map a dual solution on the reversed platform back to ``spec``.

    Edge keys flip back to the original orientation and each node's in/out
    occupation pair swaps sides; the throughput is unchanged (the programs
    are identical up to renaming).
    """
    return SteadyStateSolution(
        throughput=solution.throughput,
        edge_messages={(v, u): n for (u, v), n in solution.edge_messages.items()},
        flows={((v, u), w): x for ((u, v), w), x in solution.flows.items()},
        source=solution.source,
        objective_per_node={
            node: (t_out, t_in)
            for node, (t_in, t_out) in solution.objective_per_node.items()
        },
        solver_status=solution.solver_status,
        solve_seconds=solution.solve_seconds,
        num_variables=solution.num_variables,
        num_constraints=solution.num_constraints,
        spec=spec,
    )


def _extract_solution(
    platform: Platform,
    data: SteadyStateLPData,
    result: optimize.OptimizeResult,
    solve_seconds: float,
    size: float | None,
) -> SteadyStateSolution:
    """Convert a raw ``linprog`` result into a :class:`SteadyStateSolution`."""
    values = np.asarray(result.x, dtype=float)
    index = data.index
    throughput = float(values[index.throughput])

    edge_messages: dict[Edge, float] = {}
    for e, edge in enumerate(index.edges):
        edge_messages[edge] = float(max(values[index.messages(e)], 0.0))

    flows: dict[tuple[Edge, NodeName], float] = {}
    for e, edge in enumerate(index.edges):
        for w_index, destination in enumerate(index.destinations):
            value = float(values[index.flow(e, w_index)])
            if value > _FLOW_TOLERANCE:
                flows[(edge, destination)] = value

    # Per-node in/out occupation in one pass over the edges: accumulate
    # ``n_{u,v} * T_{u,v}`` onto both endpoints through the compiled edge
    # index (the per-node × per-edge loops this replaces were O(V * E)).
    view = platform.compiled(size)
    occupied = np.asarray(
        [edge_messages[edge] for edge in index.edges]
    ) * view.transfer_times
    t_in = np.zeros(view.num_nodes)
    t_out = np.zeros(view.num_nodes)
    np.add.at(t_in, view.edge_targets, occupied)
    np.add.at(t_out, view.edge_sources, occupied)
    occupation: dict[NodeName, tuple[float, float]] = {
        name: (float(t_in[i]), float(t_out[i]))
        for i, name in enumerate(view.node_names)
    }

    return SteadyStateSolution(
        throughput=throughput,
        edge_messages=edge_messages,
        flows=flows,
        source=data.source,
        objective_per_node=occupation,
        solver_status=str(result.message),
        solve_seconds=solve_seconds,
        num_variables=index.num_variables,
        num_constraints=data.num_constraints,
        spec=data.spec,
    )


def solve_steady_state_lp(
    platform: Platform,
    source: NodeName,
    size: float | None = None,
    *,
    method: str = "highs",
) -> SteadyStateSolution:
    """Solve the broadcast ``SSB(G)`` and return the full solution.

    Parameters
    ----------
    platform:
        Target platform; must be broadcast-feasible from ``source``.
    source:
        Broadcast source processor.
    size:
        Message-slice size used for the edge occupation times; defaults to
        the platform slice size.
    method:
        ``scipy.optimize.linprog`` method; the default HiGHS solver is both
        the fastest and the most robust choice.
    """
    return solve_collective_lp(
        platform, CollectiveSpec.broadcast(source), size, method=method
    )


def solve_collective_lp(
    platform: Platform,
    spec: CollectiveSpec,
    size: float | None = None,
    *,
    method: str = "highs",
) -> SteadyStateSolution:
    """Solve the steady-state LP of any :class:`CollectiveSpec`.

    Reduce and gather are solved as their dual forward kind on the reversed
    platform and the solution is mapped back: the returned edge weights
    ``n_{u,v}`` refer to the *original* platform orientation, with slices
    flowing ``u -> v`` toward the root.
    """
    effective_platform, effective_spec = effective_problem(platform, spec)
    data = build_collective_lp(effective_platform, effective_spec, size)
    chain = _method_chain(method)
    failures: list[str] = []
    result: optimize.OptimizeResult | None = None
    start = time.perf_counter()
    for attempt, candidate in enumerate(chain):
        try:
            outcome = _run_linprog(data, candidate, attempt)
        except InjectedFault as error:
            failures.append(f"{candidate}: {error}")
            continue
        if outcome.success:
            result = outcome
            break
        failures.append(f"{candidate}: {outcome.message}")
        if int(getattr(outcome, "status", -1)) in _DEFINITIVE_STATUSES:
            break  # the model, not the method, is at fault
    elapsed = time.perf_counter() - start
    if result is None:
        raise InfeasibleLPError(
            f"steady-state {spec.kind.value} LP failed for platform "
            f"{platform.name!r} (source {spec.source!r}); "
            f"methods tried: {'; '.join(failures)}"
        )
    solution = _extract_solution(effective_platform, data, result, elapsed, size)
    if solution.throughput <= 0:
        raise LPError(
            f"steady-state {spec.kind.value} LP returned non-positive throughput "
            f"{solution.throughput!r} for platform {platform.name!r}"
        )
    if spec.is_reversed:
        solution = _reverse_solution(solution, spec)
    return solution


def optimal_throughput(
    platform: Platform, source: NodeName, size: float | None = None
) -> float:
    """The MTP optimal broadcast throughput ``TP`` (reference of the paper)."""
    return solve_steady_state_lp(platform, source, size).throughput


def collective_optimal_throughput(
    platform: Platform, spec: CollectiveSpec, size: float | None = None
) -> float:
    """The MTP optimal throughput of any collective spec."""
    return solve_collective_lp(platform, spec, size).throughput


class LPSolutionCache:
    """Memoises LP solutions per (platform identity + mutation epoch, spec, size).

    The experiment runner evaluates several heuristics on the same platform;
    two of them (LP-Prune and LP-Grow-Tree) need the LP solution, and the
    relative-performance metric needs the optimal throughput.  Caching keyed
    on the platform object identity keeps each LP solved exactly once per
    platform without requiring platforms to be hashable by value.

    ``max_entries`` / ``max_bytes`` (or a shared
    :class:`~repro.runtime.ByteBudget`) bound the cache with LRU eviction —
    essential for long-lived processes, because every entry pins its
    platform (and thereby the platform's compiled views) alive.  The byte
    estimate covers the solution payload *and* the pinned platform, since
    evicting the entry is what releases both.  Defaults keep the historical
    unbounded behaviour; :meth:`stats` reports hits / misses / evictions /
    bytes either way.
    """

    def __init__(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        *,
        budget: "ByteBudget | None" = None,
    ) -> None:
        # Values pair the solution with the platform itself: the strong
        # reference pins the platform alive, so its id() cannot be recycled
        # by a new platform while the entry exists (id-keyed caches are
        # otherwise unsound after garbage collection).
        self._cache: BoundedCache = BoundedCache(
            max_entries, max_bytes, budget=budget, name="lp-solutions"
        )

    @staticmethod
    def _key(platform: Platform, spec: CollectiveSpec, size: float | None) -> tuple:
        targets = None if spec.targets is None else tuple(spec.targets)
        # The mutation epoch makes a platform mutated after being cached a
        # miss instead of a stale hit (identity alone cannot tell).
        return (
            id(platform),
            platform.mutation_epoch,
            spec.kind.value,
            spec.source,
            targets,
            size,
        )

    def solve(
        self, platform: Platform, source: NodeName, size: float | None = None
    ) -> SteadyStateSolution:
        """Return the cached broadcast solution, solving the LP on first use."""
        return self.solve_collective(platform, CollectiveSpec.broadcast(source), size)

    def solve_collective(
        self, platform: Platform, spec: CollectiveSpec, size: float | None = None
    ) -> SteadyStateSolution:
        """Return the cached solution of ``spec``, solving on first use."""
        key = self._key(platform, spec, size)
        entry = self._cache.get(key)
        if entry is None:
            entry = (platform, solve_collective_lp(platform, spec, size))
            self._cache[key] = entry
        return entry[1]

    def stats(self) -> dict:
        """Usage snapshot (entries / bytes / hits / misses / evictions)."""
        return self._cache.stats()

    def clear(self) -> None:
        """Drop every cached solution."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
