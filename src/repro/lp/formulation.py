"""Sparse formulation of the steady-state collective LP (``SSB(G)`` family).

Section 4.1 of the paper shows that the optimal throughput of the *multiple
trees, pipelined* (MTP) broadcast under the bidirectional one-port model is
the solution of a linear program over the rationals.  With

* ``x^{u,v}_w`` — fractional number of slices destined to ``P_w`` crossing
  the edge ``e_{u,v}`` per time unit,
* ``n_{u,v}``  — total number of slices crossing ``e_{u,v}`` per time unit,
* ``TP``       — the throughput,

the program maximises ``TP`` subject to

=========== ======================================================================
constraint   meaning
=========== ======================================================================
(a)          for every destination ``w``: the source emits ``TP`` slices for ``w``
(b)          for every destination ``w``: ``w`` receives ``TP`` slices
(c)          flow conservation of commodity ``w`` at every other node
(d)          ``n_{u,v} = max_w x^{u,v}_w`` (messages to different destinations
             sharing an edge can be nested into one another, see [6])
(e)–(h)      the occupation of every edge, ``n_{u,v} * T_{u,v}``, is at most 1
(f)/(i)      one-port in: total incoming occupation of every node is at most 1
(g)/(j)      one-port out: total outgoing occupation of every node is at most 1
=========== ======================================================================

Constraint (d) is an equality with a ``max`` on the right-hand side; because
larger ``n_{u,v}`` values only tighten the time constraints, replacing it
with ``n_{u,v} >= x^{u,v}_w`` for every ``w`` yields the same optimum and
keeps the program linear.

The very same program covers the whole collective family of
:mod:`repro.collectives`, with two deltas steered by the
:class:`~repro.collectives.CollectiveSpec`:

* **multicast** — the commodity set shrinks to the spec's target nodes;
  non-target nodes keep their conservation rows (they may relay) but own no
  commodity, so the program has ``|targets|`` commodity blocks instead of
  ``p - 1`` (with targets = all nodes the matrices are bit-identical to the
  broadcast program);
* **scatter / gather** — every destination receives a *distinct* message,
  so nothing can be nested: the inequality block (d) disappears and the
  equality ``n_{u,v} = sum_w x^{u,v}_w`` is appended (one row per edge)
  after the commodity blocks of the equality system;
* **reduce / gather** — data flows toward the root: the dual forward
  program (broadcast resp. scatter) is built on ``platform.reversed()``;
  the :attr:`SteadyStateLPData.index` then refers to the reversed edges
  (:func:`repro.lp.solver.solve_collective_lp` maps the solution back).

This module only *builds* the sparse matrices; solving is delegated to
:mod:`repro.lp.solver`.

Two builders are provided for every spec.  :func:`build_collective_lp`
assembles the triplets *vectorized* from the platform's compiled arrays
(:class:`~repro.platform.compiled.CompiledPlatform`) — this is the production
path, an order of magnitude faster on ensemble workloads.
:func:`build_collective_lp_reference` is the per-edge Python loop, kept as
the readable specification of the row layout; the test suite asserts both
produce identical matrices, and ``benchmarks/bench_collectives.py`` tracks
the assembly cost per collective kind.  :func:`build_steady_state_lp` and
:func:`build_steady_state_lp_reference` remain as the broadcast entry
points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import sparse

from ..collectives import CollectiveSpec, effective_problem
from ..exceptions import LPError, PlatformError
from ..platform.graph import Platform

__all__ = [
    "LPVariableIndex",
    "SteadyStateLPData",
    "CollectiveLPTriplets",
    "collective_lp_triplets",
    "build_collective_lp",
    "build_collective_lp_reference",
    "build_steady_state_lp",
    "build_steady_state_lp_reference",
]

NodeName = Any
Edge = tuple[NodeName, NodeName]


@dataclass(frozen=True)
class LPVariableIndex:
    """Index map between LP columns and the model quantities.

    Column layout: the ``num_edges * num_destinations`` flow variables
    ``x[e, w]`` first (edge-major), then the ``num_edges`` message counts
    ``n[e]``, then the single throughput variable ``TP``.
    """

    edges: tuple[Edge, ...]
    destinations: tuple[NodeName, ...]

    @property
    def num_edges(self) -> int:
        """Number of directed platform edges."""
        return len(self.edges)

    @property
    def num_destinations(self) -> int:
        """Number of destination commodities (``p - 1`` for broadcast)."""
        return len(self.destinations)

    @property
    def num_variables(self) -> int:
        """Total number of LP columns."""
        return self.num_edges * self.num_destinations + self.num_edges + 1

    def flow(self, edge_index: int, destination_index: int) -> int:
        """Column of ``x[edge, destination]``."""
        return edge_index * self.num_destinations + destination_index

    def messages(self, edge_index: int) -> int:
        """Column of ``n[edge]``."""
        return self.num_edges * self.num_destinations + edge_index

    @property
    def throughput(self) -> int:
        """Column of ``TP``."""
        return self.num_variables - 1


@dataclass(frozen=True)
class SteadyStateLPData:
    """The assembled LP in ``scipy.optimize.linprog`` form (minimisation).

    For reduce / gather specs the matrices encode the dual forward program
    on the reversed platform; :attr:`index` then names the reversed edges
    and :attr:`spec` records the forward spec that was actually assembled.
    """

    objective: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    bounds: list[tuple[float, float | None]]
    index: LPVariableIndex
    source: NodeName
    spec: CollectiveSpec | None = None

    @property
    def num_constraints(self) -> int:
        """Total number of LP rows (equalities + inequalities)."""
        return self.a_eq.shape[0] + self.a_ub.shape[0]


class _TripletBuilder:
    """Accumulates sparse matrix triplets and right-hand sides."""

    def __init__(self) -> None:
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.vals: list[float] = []
        self.rhs: list[float] = []
        self._row = 0

    def new_row(self, rhs: float = 0.0) -> int:
        self.rhs.append(rhs)
        row = self._row
        self._row += 1
        return row

    def add(self, row: int, col: int, value: float) -> None:
        self.rows.append(row)
        self.cols.append(col)
        self.vals.append(value)

    def matrix(self, num_cols: int) -> tuple[sparse.csr_matrix, np.ndarray]:
        matrix = sparse.coo_matrix(
            (self.vals, (self.rows, self.cols)), shape=(self._row, num_cols)
        ).tocsr()
        return matrix, np.asarray(self.rhs, dtype=float)


def _normalize_collective(
    platform: Platform, spec: CollectiveSpec
) -> tuple[Platform, CollectiveSpec]:
    """Validate the spec and fold reduce / gather onto the reversed platform."""
    try:
        platform, spec = effective_problem(platform, spec)
    except PlatformError as exc:
        # Bad spec inputs (unknown source / targets, empty target set) are
        # LP-building errors from this layer's point of view.
        raise LPError(str(exc)) from exc
    if platform.num_nodes < 2:
        raise LPError("the steady-state LP needs at least two nodes")
    platform.require_targets_reachable(
        spec.source,
        spec.resolve_targets(platform),
        operation=f"the {spec.kind.value} flow",
    )
    return platform, spec


def build_steady_state_lp(
    platform: Platform,
    source: NodeName,
    size: float | None = None,
) -> SteadyStateLPData:
    """Assemble the broadcast ``SSB(G)`` program (vectorized path)."""
    return build_collective_lp(platform, CollectiveSpec.broadcast(source), size)


def build_steady_state_lp_reference(
    platform: Platform,
    source: NodeName,
    size: float | None = None,
) -> SteadyStateLPData:
    """Assemble the broadcast ``SSB(G)`` program (reference loop path)."""
    return build_collective_lp_reference(platform, CollectiveSpec.broadcast(source), size)


@dataclass(frozen=True)
class CollectiveLPTriplets:
    """The assembled sparse triplets of one collective LP, pre-matrix.

    The COO-level product of the vectorized assembly, shared verbatim by
    :func:`build_collective_lp` (which turns one bundle into a
    :class:`SteadyStateLPData`) and
    :func:`repro.kernels.batch_lp.batch_lp_assembly` (which concatenates
    many bundles into one block-diagonal buffer) — a single assembly path,
    so batched and per-item matrices are entry-identical by construction.
    """

    index: LPVariableIndex
    source: NodeName
    spec: CollectiveSpec
    eq_rows: np.ndarray
    eq_cols: np.ndarray
    eq_vals: np.ndarray
    num_eq_rows: int
    ub_rows: np.ndarray
    ub_cols: np.ndarray
    ub_vals: np.ndarray
    num_ub_rows: int
    nesting_rows: int
    zero_flow_cols: np.ndarray

    def data(self) -> SteadyStateLPData:
        """Materialise the triplets into solver-ready matrices."""
        num_variables = self.index.num_variables
        a_eq = sparse.coo_matrix(
            (self.eq_vals, (self.eq_rows, self.eq_cols)),
            shape=(self.num_eq_rows, num_variables),
        ).tocsr()
        a_ub = sparse.coo_matrix(
            (self.ub_vals, (self.ub_rows, self.ub_cols)),
            shape=(self.num_ub_rows, num_variables),
        ).tocsr()
        objective = np.zeros(num_variables)
        objective[self.index.throughput] = -1.0  # linprog minimises; we maximise TP.
        bounds: list[tuple[float, float | None]] = [(0.0, None)] * num_variables
        for col in self.zero_flow_cols.tolist():
            bounds[col] = (0.0, 0.0)
        return SteadyStateLPData(
            objective=objective,
            a_eq=a_eq,
            b_eq=np.zeros(self.num_eq_rows),
            a_ub=a_ub,
            b_ub=np.concatenate(
                [
                    np.zeros(self.nesting_rows),
                    np.ones(self.num_ub_rows - self.nesting_rows),
                ]
            ),
            bounds=bounds,
            index=self.index,
            source=self.source,
            spec=self.spec,
        )


def build_collective_lp(
    platform: Platform,
    spec: CollectiveSpec,
    size: float | None = None,
) -> SteadyStateLPData:
    """Assemble the steady-state LP of ``spec`` on ``platform``.

    Triplets are built block-wise with numpy from the platform's compiled
    arrays (:func:`collective_lp_triplets`); the resulting matrices are
    identical (same row layout, same entries) to
    :func:`build_collective_lp_reference`, and for a broadcast spec
    identical to what :func:`build_steady_state_lp` always produced.

    Raises :class:`~repro.exceptions.LPError` /
    :class:`~repro.exceptions.DisconnectedPlatformError` when the spec is
    malformed or some target is unreachable (the LP would be infeasible
    anyway, with a much less helpful error message).
    """
    return collective_lp_triplets(platform, spec, size).data()


def collective_lp_triplets(
    platform: Platform,
    spec: CollectiveSpec,
    size: float | None = None,
) -> CollectiveLPTriplets:
    """Vectorized COO assembly of the collective LP (see :class:`CollectiveLPTriplets`)."""
    platform, spec = _normalize_collective(platform, spec)
    view = platform.compiled(size)
    src = view.index_of(spec.source)
    num_nodes = view.num_nodes
    num_edges = view.num_edges
    transfer = view.transfer_times
    distinct = spec.distinct_messages

    # Destination k <-> node index dest_nodes[k] (node insertion order);
    # for broadcast this is every node but the source.
    target_names = spec.resolve_targets(platform)
    dest_nodes = np.asarray([view.index_of(n) for n in target_names], dtype=np.int64)
    num_dests = len(dest_nodes)
    index = LPVariableIndex(edges=view.edge_list, destinations=tuple(target_names))
    tp_col = index.throughput
    msg_base = num_edges * num_dests  # first n[e] column

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []

    def emit(r: np.ndarray, c: np.ndarray, v: np.ndarray) -> None:
        rows.append(np.asarray(r, dtype=np.int64).ravel())
        cols.append(np.asarray(c, dtype=np.int64).ravel())
        vals.append(np.asarray(v, dtype=np.float64).ravel())

    # ------------------------------------------------------------------ #
    # Equality constraints (a), (b), (c).  Rows are grouped by commodity:
    # commodity k owns rows [k * p, (k + 1) * p) laid out as
    # (a), (b), then (c) for every node except the source and the
    # destination, in node order.  (Non-target nodes keep their
    # conservation rows: they may relay slices they do not consume.)
    # ------------------------------------------------------------------ #
    ks = np.arange(num_dests, dtype=np.int64)

    # (a) source emission of every commodity equals TP.
    src_out = view.out_edges_of(src)
    emit(
        np.repeat(ks * num_nodes, len(src_out)),
        (src_out[None, :] * num_dests + ks[:, None]),
        np.ones(num_dests * len(src_out)),
    )
    emit(ks * num_nodes, np.full(num_dests, tp_col), np.full(num_dests, -1.0))

    # (b) reception at every destination equals TP.
    dest_in = [view.in_edges_of(int(d)) for d in dest_nodes]
    in_counts = np.asarray([len(e) for e in dest_in], dtype=np.int64)
    ks_b = np.repeat(ks, in_counts)
    es_b = np.concatenate(dest_in) if dest_in else np.empty(0, dtype=np.int64)
    emit(ks_b * num_nodes + 1, es_b * num_dests + ks_b, np.ones(len(es_b)))
    emit(ks * num_nodes + 1, np.full(num_dests, tp_col), np.full(num_dests, -1.0))

    # (c) conservation of commodity k at every node v not in {source, k}.
    # Conservation sites are the non-source nodes in node order; within
    # commodity k's block, the site at position j sits at row offset
    # 2 + j - (dpos[k] < j) because the commodity's own destination is
    # skipped.  (For broadcast, sites and destinations coincide.)
    site_nodes = np.asarray([i for i in range(num_nodes) if i != src], dtype=np.int64)
    site_position = {int(v): j for j, v in enumerate(site_nodes.tolist())}
    dpos = np.asarray([site_position[int(d)] for d in dest_nodes.tolist()], dtype=np.int64)
    for j, v in enumerate(site_nodes.tolist()):
        others = ks[dpos != j]
        row_of_k = others * num_nodes + 2 + j - (dpos[others] < j)
        for edge_ids, sign in ((view.in_edges_of(v), 1.0), (view.out_edges_of(v), -1.0)):
            if not len(edge_ids):
                continue
            emit(
                np.repeat(row_of_k, len(edge_ids)),
                (edge_ids[None, :] * num_dests + others[:, None]),
                np.full(len(others) * len(edge_ids), sign),
            )

    num_eq_rows = num_dests * num_nodes

    # (d-scatter) distinct messages cannot be nested: append the equality
    # n[e] = sum_w x[e, w] (one row per edge) after the commodity blocks.
    if distinct:
        flow_cols = np.arange(num_edges * num_dests, dtype=np.int64)
        emit(num_eq_rows + flow_cols // num_dests, flow_cols, np.ones(len(flow_cols)))
        edge_ids = np.arange(num_edges, dtype=np.int64)
        emit(num_eq_rows + edge_ids, msg_base + edge_ids, np.full(num_edges, -1.0))
        num_eq_rows += num_edges

    eq_rows = np.concatenate(rows)
    eq_cols = np.concatenate(cols)
    eq_vals = np.concatenate(vals)

    # ------------------------------------------------------------------ #
    # Inequality constraints (d), (e)+(h), (f)+(i), (g)+(j).
    # ------------------------------------------------------------------ #
    rows, cols, vals = [], [], []

    # (d) x[e, w] - n[e] <= 0; row e * D + w coincides with the flow column.
    # Scatter / gather replace this block with the equality above.
    nesting_rows = 0
    if not distinct:
        nesting_rows = num_edges * num_dests
        flow_rows = np.arange(nesting_rows, dtype=np.int64)
        emit(flow_rows, flow_rows, np.ones(len(flow_rows)))
        emit(flow_rows, msg_base + flow_rows // num_dests, np.full(len(flow_rows), -1.0))

    # (e) + (h): per-edge occupation n[e] * T[e] <= 1.
    edge_rows = nesting_rows + np.arange(num_edges, dtype=np.int64)
    emit(edge_rows, msg_base + np.arange(num_edges), transfer)

    # (f) + (i) then (g) + (j): one-port occupation per node (skipping
    # nodes without the corresponding edges), in node order.
    next_row = nesting_rows + num_edges
    for edges_of in (view.in_edges_of, view.out_edges_of):
        for i in range(num_nodes):
            edge_ids = edges_of(i)
            if not len(edge_ids):
                continue
            emit(
                np.full(len(edge_ids), next_row),
                msg_base + edge_ids,
                transfer[edge_ids],
            )
            next_row += 1

    # Flows of commodity w leaving w, or entering the source, are useless and
    # only blur the communication graph read by the LP heuristics: their
    # columns get pinned to zero in the bounds.
    zero_cols: list[int] = []
    for k, d in enumerate(dest_nodes.tolist()):
        for e in view.out_edges_of(d).tolist():
            zero_cols.append(e * num_dests + k)
    for e in view.in_edges_of(src).tolist():
        for k in range(num_dests):
            zero_cols.append(e * num_dests + k)

    return CollectiveLPTriplets(
        index=index,
        source=spec.source,
        spec=spec,
        eq_rows=eq_rows,
        eq_cols=eq_cols,
        eq_vals=eq_vals,
        num_eq_rows=num_eq_rows,
        ub_rows=np.concatenate(rows),
        ub_cols=np.concatenate(cols),
        ub_vals=np.concatenate(vals),
        num_ub_rows=next_row,
        nesting_rows=nesting_rows,
        zero_flow_cols=np.asarray(zero_cols, dtype=np.int64),
    )


def build_collective_lp_reference(
    platform: Platform,
    spec: CollectiveSpec,
    size: float | None = None,
) -> SteadyStateLPData:
    """Reference (per-edge Python loop) assembly of the collective LP.

    Kept as the readable specification of the constraint layout and as the
    baseline for the assembly benchmarks; produces matrices identical to
    :func:`build_collective_lp`.
    """
    platform, spec = _normalize_collective(platform, spec)
    distinct = spec.distinct_messages
    source = spec.source

    edges = tuple(platform.edges)
    destinations = spec.resolve_targets(platform)
    index = LPVariableIndex(edges=edges, destinations=destinations)

    transfer_time = {
        edge: platform.transfer_time(edge[0], edge[1], size) for edge in edges
    }
    dest_index = {node: i for i, node in enumerate(destinations)}
    out_edges: dict[NodeName, list[int]] = {node: [] for node in platform.nodes}
    in_edges: dict[NodeName, list[int]] = {node: [] for node in platform.nodes}
    for i, (u, v) in enumerate(edges):
        out_edges[u].append(i)
        in_edges[v].append(i)

    # ------------------------------------------------------------------ #
    # Equality constraints (a), (b), (c) per commodity, then the scatter
    # nesting equality (one row per edge) when messages are distinct.
    # ------------------------------------------------------------------ #
    eq = _TripletBuilder()
    tp_col = index.throughput
    for w, w_index in dest_index.items():
        # (a) source emission of commodity w equals TP.
        row = eq.new_row(0.0)
        for e in out_edges[source]:
            eq.add(row, index.flow(e, w_index), 1.0)
        eq.add(row, tp_col, -1.0)

        # (b) reception at w equals TP.
        row = eq.new_row(0.0)
        for e in in_edges[w]:
            eq.add(row, index.flow(e, w_index), 1.0)
        eq.add(row, tp_col, -1.0)

        # (c) conservation of commodity w at every other node (including
        # non-target relays).
        for v in platform.nodes:
            if v == source or v == w:
                continue
            row = eq.new_row(0.0)
            for e in in_edges[v]:
                eq.add(row, index.flow(e, w_index), 1.0)
            for e in out_edges[v]:
                eq.add(row, index.flow(e, w_index), -1.0)

    if distinct:
        # (d-scatter) n[e] = sum_w x[e, w].
        for e in range(index.num_edges):
            row = eq.new_row(0.0)
            for w_index in range(index.num_destinations):
                eq.add(row, index.flow(e, w_index), 1.0)
            eq.add(row, index.messages(e), -1.0)

    # ------------------------------------------------------------------ #
    # Inequality constraints (d), (e)+(h), (f)+(i), (g)+(j)
    # ------------------------------------------------------------------ #
    ub = _TripletBuilder()
    if not distinct:
        # (d) x[e, w] - n[e] <= 0
        for e in range(index.num_edges):
            n_col = index.messages(e)
            for w_index in range(index.num_destinations):
                row = ub.new_row(0.0)
                ub.add(row, index.flow(e, w_index), 1.0)
                ub.add(row, n_col, -1.0)

    # (e) + (h): per-edge occupation n[e] * T[e] <= 1
    for e, edge in enumerate(edges):
        row = ub.new_row(1.0)
        ub.add(row, index.messages(e), transfer_time[edge])

    # (f) + (i): one-port incoming occupation per node <= 1
    for node in platform.nodes:
        if not in_edges[node]:
            continue
        row = ub.new_row(1.0)
        for e in in_edges[node]:
            ub.add(row, index.messages(e), transfer_time[edges[e]])

    # (g) + (j): one-port outgoing occupation per node <= 1
    for node in platform.nodes:
        if not out_edges[node]:
            continue
        row = ub.new_row(1.0)
        for e in out_edges[node]:
            ub.add(row, index.messages(e), transfer_time[edges[e]])

    # ------------------------------------------------------------------ #
    # Objective and bounds
    # ------------------------------------------------------------------ #
    objective = np.zeros(index.num_variables)
    objective[tp_col] = -1.0  # linprog minimises; we maximise TP.

    bounds: list[tuple[float, float | None]] = [(0.0, None)] * index.num_variables
    # Flows of commodity w leaving w, or entering the source, are useless and
    # only blur the communication graph read by the LP heuristics: pin them
    # to zero.
    for w, w_index in dest_index.items():
        for e in out_edges[w]:
            bounds[index.flow(e, w_index)] = (0.0, 0.0)
    for e in in_edges[source]:
        for w_index in range(index.num_destinations):
            bounds[index.flow(e, w_index)] = (0.0, 0.0)

    a_eq, b_eq = eq.matrix(index.num_variables)
    a_ub, b_ub = ub.matrix(index.num_variables)
    return SteadyStateLPData(
        objective=objective,
        a_eq=a_eq,
        b_eq=b_eq,
        a_ub=a_ub,
        b_ub=b_ub,
        bounds=bounds,
        index=index,
        source=source,
        spec=spec,
    )
