"""Result object of the steady-state collective linear programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..collectives import CollectiveSpec

__all__ = ["SteadyStateSolution"]

NodeName = Any
Edge = tuple[NodeName, NodeName]


@dataclass(frozen=True)
class SteadyStateSolution:
    """Optimal solution of the ``SSB(G)`` linear program (Section 4.1).

    Attributes
    ----------
    throughput:
        The optimal steady-state throughput ``TP`` (message slices injected
        by the source per time unit) achievable with *multiple* broadcast
        trees under the one-port model.  This is the reference value the
        paper compares every single-tree heuristic against.
    edge_messages:
        ``n_{u,v}``: for each platform edge, the fractional number of
        message slices crossing it per time unit in the optimal solution.
        These weights define the *communication graph* used by the LP-based
        heuristics (Algorithms 6 and 7).
    flows:
        ``x^{u,v}_w``: the per-destination flows; only entries above
        ``flow_tolerance`` are stored.  Keys are ``(edge, destination)``.
    source:
        The broadcast source the program was solved for.
    objective_per_node:
        Per-node occupation times ``t_in`` / ``t_out`` at the optimum
        (diagnostic; both are <= 1 by construction).
    solver_status:
        Status string reported by the underlying LP solver.
    solve_seconds:
        Wall-clock time spent in the solver.
    num_variables, num_constraints:
        Size of the LP that was solved (diagnostic / benchmarks).
    """

    throughput: float
    edge_messages: Mapping[Edge, float]
    flows: Mapping[tuple[Edge, NodeName], float] = field(default_factory=dict)
    source: NodeName = None
    objective_per_node: Mapping[NodeName, tuple[float, float]] = field(default_factory=dict)
    solver_status: str = "optimal"
    solve_seconds: float = 0.0
    num_variables: int = 0
    num_constraints: int = 0
    #: The collective the program was solved for (``None`` only for
    #: hand-built solution objects; :func:`repro.lp.solver.solve_steady_state_lp`
    #: always stamps the broadcast spec).  For reduce / gather the edge keys
    #: of :attr:`edge_messages` / :attr:`flows` are expressed on the
    #: *original* platform orientation (the solver maps the dual solution
    #: back), so ``n_{u,v}`` counts slices flowing ``u -> v`` toward the root.
    spec: "CollectiveSpec | None" = None

    def edge_weight(self, source: NodeName, target: NodeName) -> float:
        """``n_{u,v}`` for one edge (0 when the edge carries no message)."""
        return self.edge_messages.get((source, target), 0.0)

    def busiest_edges(self, count: int = 5) -> list[tuple[Edge, float]]:
        """The ``count`` edges carrying the most messages per time unit."""
        ranked = sorted(
            self.edge_messages.items(), key=lambda item: (-item[1], str(item[0]))
        )
        return ranked[:count]

    def used_edges(self, tolerance: float = 1e-9) -> list[Edge]:
        """Edges carrying more than ``tolerance`` messages per time unit."""
        return [edge for edge, n in self.edge_messages.items() if n > tolerance]

    def summary(self) -> str:
        """One-line human-readable description."""
        kind = (
            "SSB"
            if self.spec is None or self.spec.kind.value == "broadcast"
            else f"SSB[{self.spec.kind.value}]"
        )
        return (
            f"{kind} optimum: TP={self.throughput:.4f} slices/time-unit, "
            f"{len(self.used_edges())}/{len(self.edge_messages)} edges used, "
            f"{self.num_variables} variables, {self.num_constraints} constraints, "
            f"solved in {self.solve_seconds * 1000:.1f} ms ({self.solver_status})"
        )
