"""Batched, parallel, cached evaluation of platform ensembles.

The paper's headline artefacts (Figures 4a/4b/5, Table 3) all reduce to the
same shape of computation: *generate N platforms deterministically, evaluate
every heuristic on each, aggregate the records*.  This module turns that
shape into an explicit pipeline:

1. **Tasks** — :func:`random_ensemble_tasks` / :func:`tiers_ensemble_tasks`
   expand a :class:`~repro.experiments.config.PaperParameters` into a flat
   list of self-contained :class:`EnsembleTask` descriptions.  Each task
   carries its own seed (derived with
   :func:`repro.utils.rng.derive_seed`), so evaluation order — and therefore
   parallelism — cannot change the results.
2. **Executors** — :class:`SerialExecutor` runs tasks in-process;
   :class:`ProcessExecutor` fans them out over a
   :class:`concurrent.futures.ProcessPoolExecutor`.  Both preserve task
   order, so the record stream is identical whichever executor runs it.
3. **Cache** — :class:`ResultCache` is a two-level (in-memory + optional
   on-disk JSON) store keyed by a stable hash of the experiment parameters
   *and the library version*; changing any parameter field or upgrading the
   library is a cache miss, and corrupted disk entries are silently
   recomputed.

:class:`EvaluationPipeline` glues the three together and is what the
runner, the CLI (``--jobs`` / ``--cache-dir``) and the benchmarks use.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Protocol, Sequence

from .. import _version
from ..exceptions import ExperimentError
from ..platform.generators.random_graph import generate_random_platform
from ..platform.generators.tiers import generate_tiers_platform
from ..utils.rng import derive_seed
from .config import PaperParameters
from .evaluation import EvaluationRecord, evaluate_collective_platform, evaluate_platform

__all__ = [
    "EnsembleTask",
    "run_ensemble_task",
    "random_ensemble_tasks",
    "tiers_ensemble_tasks",
    "collective_ensemble_tasks",
    "SerialExecutor",
    "ProcessExecutor",
    "ResultCache",
    "EvaluationPipeline",
    "ensemble_cache_key",
]

NodeName = Any


# --------------------------------------------------------------------------- #
# Tasks
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class EnsembleTask:
    """One self-contained platform evaluation (picklable, order-free).

    The task embeds everything a worker needs: the generator kind and its
    parameters, the derived per-instance seed, and the evaluation options.
    Two tasks built from the same parameters are equal, whatever process
    builds them.
    """

    kind: str  # "random" | "tiers" | "collective"
    instance_index: int
    seed: int
    source: NodeName
    send_fraction: float
    include_multi_port: bool
    num_nodes: int = 0
    density: float = 0.0
    rate_mean: float = 0.0
    rate_deviation: float = 0.0
    slice_size_mb: float = 0.0
    tiers_size: int = 0
    collective: str = "broadcast"
    num_targets: int = 0


def random_ensemble_tasks(
    parameters: PaperParameters, *, include_multi_port: bool = True
) -> list[EnsembleTask]:
    """Tasks of the random-platform ensemble of Figures 4 and 5."""
    tasks: list[EnsembleTask] = []
    for num_nodes in parameters.node_counts:
        for density in parameters.densities:
            for instance in range(parameters.configurations_per_point):
                tasks.append(
                    EnsembleTask(
                        kind="random",
                        instance_index=instance,
                        seed=derive_seed(
                            parameters.seed,
                            "random",
                            num_nodes,
                            int(density * 1000),
                            instance,
                        ),
                        source=parameters.source,
                        send_fraction=parameters.send_fraction,
                        include_multi_port=include_multi_port,
                        num_nodes=num_nodes,
                        density=density,
                        rate_mean=parameters.rate_mean,
                        rate_deviation=parameters.rate_deviation,
                        slice_size_mb=parameters.slice_size_mb,
                    )
                )
    return tasks


def tiers_ensemble_tasks(parameters: PaperParameters) -> list[EnsembleTask]:
    """Tasks of the Tiers-like ensembles of Table 3 (one-port only)."""
    tasks: list[EnsembleTask] = []
    for size in parameters.tiers_sizes:
        for instance in range(parameters.tiers_platforms_per_size):
            tasks.append(
                EnsembleTask(
                    kind="tiers",
                    instance_index=instance,
                    seed=derive_seed(parameters.seed, "tiers", size, instance),
                    source=parameters.source,
                    send_fraction=parameters.send_fraction,
                    include_multi_port=False,
                    tiers_size=size,
                )
            )
    return tasks


def collective_ensemble_tasks(parameters: PaperParameters) -> list[EnsembleTask]:
    """Tasks of the collective-scaling sweep (throughput vs |targets|).

    Every instance index maps to *one* platform (the seed ignores the kind
    and the target count), so all points of a curve — and the multicast and
    scatter curves themselves — are measured on the same nested-target
    platforms; the monotonicity the shape check asserts is then exact.
    """
    tasks: list[EnsembleTask] = []
    for kind in ("multicast", "scatter"):
        for count in parameters.collective_target_counts:
            for instance in range(parameters.collective_instances):
                tasks.append(
                    EnsembleTask(
                        kind="collective",
                        instance_index=instance,
                        seed=derive_seed(parameters.seed, "collective", instance),
                        source=parameters.source,
                        send_fraction=parameters.send_fraction,
                        include_multi_port=False,
                        num_nodes=parameters.collective_nodes,
                        density=parameters.collective_density,
                        rate_mean=parameters.rate_mean,
                        rate_deviation=parameters.rate_deviation,
                        slice_size_mb=parameters.slice_size_mb,
                        collective=kind,
                        num_targets=count,
                    )
                )
    return tasks


def run_ensemble_task(task: EnsembleTask) -> list[EvaluationRecord]:
    """Evaluate one task; module-level so process pools can pickle it."""
    if task.kind == "collective":
        platform = generate_random_platform(
            num_nodes=task.num_nodes,
            density=task.density,
            rate_mean=task.rate_mean,
            rate_deviation=task.rate_deviation,
            slice_size_mb=task.slice_size_mb,
            send_fraction=task.send_fraction,
            seed=task.seed,
        )
        return evaluate_collective_platform(
            platform,
            task.source,
            collective=task.collective,
            num_targets=task.num_targets,
            instance_index=task.instance_index,
        )
    if task.kind == "random":
        platform = generate_random_platform(
            num_nodes=task.num_nodes,
            density=task.density,
            rate_mean=task.rate_mean,
            rate_deviation=task.rate_deviation,
            slice_size_mb=task.slice_size_mb,
            send_fraction=task.send_fraction,
            seed=task.seed,
        )
    elif task.kind == "tiers":
        platform = generate_tiers_platform(task.tiers_size, seed=task.seed)
    else:
        raise ExperimentError(f"unknown ensemble task kind {task.kind!r}")
    evaluation = evaluate_platform(
        platform,
        task.source,
        generator=task.kind,
        instance_index=task.instance_index,
        send_fraction=task.send_fraction,
        include_multi_port=task.include_multi_port,
    )
    return evaluation.records


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
class TaskExecutor(Protocol):
    """Order-preserving, lazily-consumable map over a task list."""

    jobs: int

    def map(
        self,
        function: Callable[[EnsembleTask], list[EvaluationRecord]],
        tasks: Sequence[EnsembleTask],
    ) -> Iterable[list[EvaluationRecord]]: ...


class SerialExecutor:
    """Evaluate tasks one after the other in the calling process."""

    jobs = 1

    def map(
        self,
        function: Callable[[EnsembleTask], list[EvaluationRecord]],
        tasks: Sequence[EnsembleTask],
    ) -> Iterator[list[EvaluationRecord]]:
        # Lazy so the pipeline can report progress as tasks complete.
        return (function(task) for task in tasks)


class ProcessExecutor:
    """Fan tasks out over a process pool, preserving task order."""

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def map(
        self,
        function: Callable[[EnsembleTask], list[EvaluationRecord]],
        tasks: Sequence[EnsembleTask],
    ) -> Iterator[list[EvaluationRecord]]:
        if not tasks:
            return iter(())
        # Modest chunks amortise pickling without starving short queues.
        chunksize = max(1, len(tasks) // (self.jobs * 8))

        def stream() -> Iterator[list[EvaluationRecord]]:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                yield from pool.map(function, tasks, chunksize=chunksize)

        return stream()


# --------------------------------------------------------------------------- #
# Cache
# --------------------------------------------------------------------------- #
def ensemble_cache_key(
    kind: str, parameters: PaperParameters, *, include_multi_port: bool = True
) -> str:
    """Stable cache key over *every* parameter field and the library version.

    Any change to a :class:`PaperParameters` field, to the ensemble kind or
    multi-port inclusion, or to ``repro.__version__`` yields a different
    key, so stale results can never be replayed.
    """
    payload = {
        "kind": kind,
        "include_multi_port": include_multi_port,
        "version": _version.__version__,
        "parameters": {
            f.name: getattr(parameters, f.name) for f in fields(parameters)
        },
    }
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Two-level record cache: in-memory dict plus optional on-disk JSON.

    The memory level returns the *same list object* for repeated lookups in
    one process (the three artefacts built from one ensemble share it); the
    disk level survives across processes.  Disk entries embed their key and
    the record rows; anything unreadable — truncated JSON, missing fields,
    a key mismatch after a version bump — is treated as a miss.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike[str] | None = None,
        *,
        memory: dict[str, list[EvaluationRecord]] | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None and self.cache_dir.exists() and not self.cache_dir.is_dir():
            raise ExperimentError(
                f"cache_dir {str(self.cache_dir)!r} exists and is not a directory"
            )
        self._memory: dict[str, list[EvaluationRecord]] = (
            memory if memory is not None else {}
        )

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"ensemble-{key}.json"

    def get(self, key: str) -> list[EvaluationRecord] | None:
        """Cached records for ``key``, or ``None`` on a miss.

        A memory hit still writes through to an absent disk entry, so a
        caller that adds ``cache_dir`` after the ensemble was computed
        in-process gets its records persisted rather than silently dropped.
        """
        if key in self._memory:
            records = self._memory[key]
            if self.cache_dir is not None and not self._path(key).exists():
                self._write_disk(key, records)
            return records
        if self.cache_dir is None:
            return None
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload["key"] != key:
                return None
            records = [EvaluationRecord.from_dict(row) for row in payload["records"]]
        except (OSError, ValueError, KeyError, TypeError):
            # Missing or corrupted entry: recompute rather than crash.
            return None
        self._memory[key] = records
        return records

    def put(self, key: str, records: list[EvaluationRecord]) -> None:
        """Store ``records`` in memory and (atomically) on disk."""
        self._memory[key] = records
        if self.cache_dir is not None:
            self._write_disk(key, records)

    def _write_disk(self, key: str, records: list[EvaluationRecord]) -> None:
        assert self.cache_dir is not None
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "version": _version.__version__,
            "records": [record.to_dict() for record in records],
        }
        # Unique temp name per writer: concurrent processes computing the
        # same key must not trample each other's rename source.
        descriptor, temporary = tempfile.mkstemp(
            dir=self.cache_dir, prefix=f"ensemble-{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload))
            os.replace(temporary, self._path(key))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temporary)
            raise

    def clear_memory(self) -> None:
        """Drop the in-memory level (disk entries are kept)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)


# --------------------------------------------------------------------------- #
# Pipeline
# --------------------------------------------------------------------------- #
class EvaluationPipeline:
    """Cached, executor-pluggable evaluation of platform ensembles.

    Parameters
    ----------
    jobs:
        Number of worker processes; 1 (the default) evaluates in-process.
    cache_dir:
        Optional directory for the on-disk result cache.
    cache:
        Pre-built :class:`ResultCache` (overrides ``cache_dir``); used by
        the runner to share one in-memory cache across pipelines.
    executor:
        Explicit executor instance (overrides ``jobs``).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: str | os.PathLike[str] | None = None,
        cache: ResultCache | None = None,
        executor: TaskExecutor | None = None,
    ) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        if executor is None:
            executor = SerialExecutor() if jobs == 1 else ProcessExecutor(jobs)
        self.executor = executor
        self.cache = cache if cache is not None else ResultCache(cache_dir)

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        kind: str,
        parameters: PaperParameters,
        *,
        include_multi_port: bool = True,
        progress: bool = False,
    ) -> list[EvaluationRecord]:
        """Evaluate the ``kind`` ensemble ("random" or "tiers") of ``parameters``.

        Returns the cached record list when the exact same experiment (all
        parameter fields, same library version) was evaluated before.
        """
        if kind == "random":
            tasks = random_ensemble_tasks(
                parameters, include_multi_port=include_multi_port
            )
        elif kind == "tiers":
            # Tiers ensembles are one-port only; normalise the flag so it
            # cannot split identical computations over two cache keys.
            include_multi_port = False
            tasks = tiers_ensemble_tasks(parameters)
        elif kind == "collective":
            include_multi_port = False
            tasks = collective_ensemble_tasks(parameters)
        else:
            raise ExperimentError(f"unknown ensemble kind {kind!r}")

        key = ensemble_cache_key(
            kind, parameters, include_multi_port=include_multi_port
        )
        cached = self.cache.get(key)
        if cached is not None:
            return cached

        records: list[EvaluationRecord] = []
        for task, task_records in zip(tasks, self.executor.map(run_ensemble_task, tasks)):
            records.extend(task_records)
            if progress and task_records:
                if task.kind == "random":
                    label = f"n={task.num_nodes} d={task.density:.2f}"
                elif task.kind == "collective":
                    label = f"{task.collective} |targets|={task.num_targets}"
                else:
                    label = f"size={task.tiers_size}"
                print(
                    f"[{task.kind}] {label} #{task.instance_index}: "
                    f"optimum={task_records[0].optimal_throughput:.4f}"
                )
        self.cache.put(key, records)
        return records
