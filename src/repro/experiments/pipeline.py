"""Batched, parallel, cached evaluation of platform ensembles.

The paper's headline artefacts (Figures 4a/4b/5, Table 3) all reduce to the
same shape of computation: *generate N platforms deterministically, evaluate
every heuristic on each, aggregate the records*.  This module turns that
shape into an explicit pipeline on top of the shared infrastructure of
:mod:`repro.runtime` and the :mod:`repro.api` facade:

1. **Tasks** — :func:`random_ensemble_tasks` / :func:`tiers_ensemble_tasks`
   expand a :class:`~repro.experiments.config.PaperParameters` into a flat
   list of self-contained :class:`EnsembleTask` descriptions.  Each task
   carries its own seed (derived with
   :func:`repro.utils.rng.derive_seed`), so evaluation order — and therefore
   parallelism — cannot change the results.
2. **Executors** — the order-preserving
   :class:`~repro.runtime.SerialExecutor` /
   :class:`~repro.runtime.ProcessExecutor` map shared with
   :class:`~repro.api.Session`.
3. **Cache** — :class:`ResultCache` specialises the two-level store of
   :mod:`repro.runtime` to :class:`EvaluationRecord` rows, keyed by a
   stable hash of the experiment parameters *and the library version*;
   changing any parameter field or upgrading the library is a cache miss,
   and corrupted disk entries are silently recomputed.

Each task runs as a list of declarative :class:`~repro.api.Job` solved
through a :class:`~repro.api.Session`, so the ensemble path and one-off
facade solves share the same code and the same LP-reuse behaviour.
Worker processes solve one task per call (:func:`run_ensemble_task`,
whose job groups are batched again inside the worker); the in-process
serial path instead shares one session across a *chunk* of tasks
(:func:`run_ensemble_tasks_batched`), handing
:meth:`Session.solve_many <repro.api.Session.solve_many>` the chunk's
whole job list at once so compatible jobs from different platforms can be
stacked into :class:`~repro.kernels.EnsembleBatch` sweeps.

:class:`EvaluationPipeline` glues the three together and is what the
runner, the CLI (``--jobs`` / ``--cache-dir``) and the benchmarks use.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import os
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, fields
from typing import Any, Iterator, Mapping

from .. import _version
from ..api import Job, PlatformRecipe, Session
from ..collectives import CollectiveSpec
from ..exceptions import ExperimentError
from ..runtime import (
    ProcessExecutor,
    ResultCache as _GenericResultCache,
    RetryPolicy,
    SerialExecutor,
    SupervisedExecutor,
    TaskExecutor,
    TaskFailure,
    make_executor,
    stable_key,
)
from ..utils.rng import spawn_seeds
from .config import PaperParameters
from .evaluation import (
    EvaluationRecord,
    broadcast_jobs,
    evaluate_collective_platform,
    evaluate_platform,
    record_from_result,
)

__all__ = [
    "EnsembleTask",
    "TaskErrorRecord",
    "run_ensemble_task",
    "run_ensemble_tasks_batched",
    "random_ensemble_tasks",
    "tiers_ensemble_tasks",
    "collective_ensemble_tasks",
    "SerialExecutor",
    "ProcessExecutor",
    "ResultCache",
    "EvaluationPipeline",
    "INTERRUPT_MANIFEST",
    "ensemble_cache_key",
    "ensemble_task_key",
]

NodeName = Any


# --------------------------------------------------------------------------- #
# Tasks
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class EnsembleTask:
    """One self-contained platform evaluation (picklable, order-free).

    The task embeds everything a worker needs: the generator kind and its
    parameters, the derived per-instance seed, and the evaluation options.
    Two tasks built from the same parameters are equal, whatever process
    builds them.
    """

    kind: str  # "random" | "tiers" | "collective"
    instance_index: int
    seed: int
    source: NodeName
    send_fraction: float
    include_multi_port: bool
    num_nodes: int = 0
    density: float = 0.0
    rate_mean: float = 0.0
    rate_deviation: float = 0.0
    slice_size_mb: float = 0.0
    tiers_size: int = 0
    collective: str = "broadcast"
    num_targets: int = 0

    def platform_recipe(self) -> PlatformRecipe:
        """The declarative platform description this task evaluates."""
        if self.kind == "tiers":
            return PlatformRecipe.of("tiers", size=self.tiers_size, seed=self.seed)
        return PlatformRecipe.of(
            "random",
            num_nodes=self.num_nodes,
            density=self.density,
            rate_mean=self.rate_mean,
            rate_deviation=self.rate_deviation,
            slice_size_mb=self.slice_size_mb,
            send_fraction=self.send_fraction,
            seed=self.seed,
        )


def ensemble_task_key(task: EnsembleTask) -> str:
    """Stable per-task cache key (task payload + library version).

    The key doubles as the task's supervision label, so retry jitter and
    the deterministic fault-injection harness key on task *identity*, not
    position: serial, chunked and process-pool runs, full campaigns and
    resumed ones all make the same per-task decisions.
    """
    return stable_key(
        {
            "task": {f.name: getattr(task, f.name) for f in fields(EnsembleTask)},
            "version": _version.__version__,
        }
    )


@dataclass(frozen=True)
class TaskErrorRecord:
    """One permanently failed ensemble task, as data (``--keep-going``).

    Pairs the full :class:`EnsembleTask` description (enough to re-derive
    and re-run the task) with its structured
    :class:`~repro.runtime.TaskFailure`; serializable so campaign reports
    can persist their failure manifest next to the records.
    """

    task: EnsembleTask
    failure: TaskFailure

    def describe(self) -> str:
        """One-line human summary for campaign logs."""
        task = self.task
        if task.kind == "random":
            what = f"random n={task.num_nodes} d={task.density:g}"
        elif task.kind == "tiers":
            what = f"tiers size={task.tiers_size}"
        else:
            what = f"{task.collective} |targets|={task.num_targets}"
        return f"[{what} #{task.instance_index}] {self.failure.summary()}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "task": {f.name: getattr(self.task, f.name) for f in fields(EnsembleTask)},
            "failure": self.failure.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskErrorRecord":
        return cls(
            task=EnsembleTask(**dict(data["task"])),
            failure=TaskFailure.from_dict(data["failure"]),
        )


def random_ensemble_tasks(
    parameters: PaperParameters, *, include_multi_port: bool = True
) -> list[EnsembleTask]:
    """Tasks of the random-platform ensemble of Figures 4 and 5."""
    tasks: list[EnsembleTask] = []
    for num_nodes in parameters.node_counts:
        for density in parameters.densities:
            seeds = spawn_seeds(
                parameters.seed,
                parameters.configurations_per_point,
                "random",
                num_nodes,
                int(density * 1000),
            )
            for instance, seed in enumerate(seeds):
                tasks.append(
                    EnsembleTask(
                        kind="random",
                        instance_index=instance,
                        seed=seed,
                        source=parameters.source,
                        send_fraction=parameters.send_fraction,
                        include_multi_port=include_multi_port,
                        num_nodes=num_nodes,
                        density=density,
                        rate_mean=parameters.rate_mean,
                        rate_deviation=parameters.rate_deviation,
                        slice_size_mb=parameters.slice_size_mb,
                    )
                )
    return tasks


def tiers_ensemble_tasks(parameters: PaperParameters) -> list[EnsembleTask]:
    """Tasks of the Tiers-like ensembles of Table 3 (one-port only)."""
    tasks: list[EnsembleTask] = []
    for size in parameters.tiers_sizes:
        seeds = spawn_seeds(
            parameters.seed, parameters.tiers_platforms_per_size, "tiers", size
        )
        for instance, seed in enumerate(seeds):
            tasks.append(
                EnsembleTask(
                    kind="tiers",
                    instance_index=instance,
                    seed=seed,
                    source=parameters.source,
                    send_fraction=parameters.send_fraction,
                    include_multi_port=False,
                    tiers_size=size,
                )
            )
    return tasks


def collective_ensemble_tasks(parameters: PaperParameters) -> list[EnsembleTask]:
    """Tasks of the collective-scaling sweep (throughput vs |targets|).

    Every instance index maps to *one* platform (the seed ignores the kind
    and the target count), so all points of a curve — and the multicast and
    scatter curves themselves — are measured on the same nested-target
    platforms; the monotonicity the shape check asserts is then exact.
    """
    tasks: list[EnsembleTask] = []
    instance_seeds = spawn_seeds(
        parameters.seed, parameters.collective_instances, "collective"
    )
    for kind in ("multicast", "scatter"):
        for count in parameters.collective_target_counts:
            for instance, seed in enumerate(instance_seeds):
                tasks.append(
                    EnsembleTask(
                        kind="collective",
                        instance_index=instance,
                        seed=seed,
                        source=parameters.source,
                        send_fraction=parameters.send_fraction,
                        include_multi_port=False,
                        num_nodes=parameters.collective_nodes,
                        density=parameters.collective_density,
                        rate_mean=parameters.rate_mean,
                        rate_deviation=parameters.rate_deviation,
                        slice_size_mb=parameters.slice_size_mb,
                        collective=kind,
                        num_targets=count,
                    )
                )
    return tasks


def run_ensemble_task(
    task: EnsembleTask, retry_policy: RetryPolicy | None = None
) -> list[EvaluationRecord]:
    """Evaluate one task; module-level so process pools can pickle it.

    Every task gets a fresh :class:`~repro.api.Session` (its platform and
    seed are unique to the task, so there is nothing to share across
    tasks) and runs its jobs through the facade: the per-platform LP is
    solved once and shared by every heuristic and by the relative
    performance reference.  ``retry_policy`` propagates the pipeline's
    policy to the session's own per-job supervision.
    """
    session = Session(retry_policy=retry_policy)
    if task.kind == "collective":
        return evaluate_collective_platform(
            task.platform_recipe(),
            task.source,
            collective=task.collective,
            num_targets=task.num_targets,
            instance_index=task.instance_index,
            session=session,
        )
    if task.kind not in ("random", "tiers"):
        raise ExperimentError(f"unknown ensemble task kind {task.kind!r}")
    evaluation = evaluate_platform(
        task.platform_recipe(),
        task.source,
        generator=task.kind,
        instance_index=task.instance_index,
        send_fraction=task.send_fraction,
        include_multi_port=task.include_multi_port,
        session=session,
    )
    return evaluation.records


#: Tasks per shared-session chunk on the in-process path.  Bounds the
#: session's platform / tree / LP caches while still giving
#: ``Session.solve_many`` dozens of compatible jobs to stack per ensemble
#: batch; matches the per-group platform limit of the worker protocol.
_BATCH_CHUNK_TASKS = 32


def _task_jobs(task: EnsembleTask, session: Session) -> list[Job]:
    """The declarative job list of one task.

    Mirrors exactly what :func:`run_ensemble_task` submits through
    :func:`~repro.experiments.evaluation.evaluate_platform` /
    :func:`~repro.experiments.evaluation.evaluate_collective_platform`, so
    the chunked path below solves the same jobs in the same order.
    """
    recipe = task.platform_recipe()
    if task.kind == "collective":
        resolved = session.platform(recipe)
        others = [node for node in resolved.nodes if node != task.source]
        spec = CollectiveSpec(
            task.collective, task.source, tuple(others[: task.num_targets])
        )
        return [Job(recipe, spec, heuristic="grow-tree", model="one-port")]
    if task.kind not in ("random", "tiers"):
        raise ExperimentError(f"unknown ensemble task kind {task.kind!r}")
    return broadcast_jobs(
        recipe,
        task.source,
        send_fraction=task.send_fraction,
        include_multi_port=task.include_multi_port,
    )


def run_ensemble_tasks_batched(
    tasks: list[EnsembleTask], *, chunk_tasks: int = _BATCH_CHUNK_TASKS
) -> Iterator[list[EvaluationRecord]]:
    """Yield each task's records, solving a chunk of tasks per session.

    The in-process twin of mapping :func:`run_ensemble_task`: instead of a
    fresh :class:`~repro.api.Session` per task, one session serves
    ``chunk_tasks`` consecutive tasks and receives the chunk's entire job
    list in a single :meth:`~repro.api.Session.solve_many` call, which
    stacks compatible jobs across platforms into
    :class:`~repro.kernels.EnsembleBatch` sweeps.  Results come back in
    submission order, so slicing them per task reproduces the per-task
    record lists bit-identically (timing fields aside).
    """
    for start in range(0, len(tasks), chunk_tasks):
        chunk = tasks[start : start + chunk_tasks]
        session = Session()
        job_lists = [_task_jobs(task, session) for task in chunk]
        results = session.solve_many([job for jobs in job_lists for job in jobs])
        position = 0
        for task, jobs in zip(chunk, job_lists):
            sliced = results[position : position + len(jobs)]
            position += len(jobs)
            yield [
                record_from_result(
                    result,
                    generator=task.kind,
                    instance_index=task.instance_index,
                )
                for result in sliced
            ]


# --------------------------------------------------------------------------- #
# Cache
# --------------------------------------------------------------------------- #
def ensemble_cache_key(
    kind: str, parameters: PaperParameters, *, include_multi_port: bool = True
) -> str:
    """Stable cache key over *every* parameter field and the library version.

    Any change to a :class:`PaperParameters` field, to the ensemble kind or
    multi-port inclusion, or to ``repro.__version__`` yields a different
    key, so stale results can never be replayed.
    """
    payload = {
        "kind": kind,
        "include_multi_port": include_multi_port,
        "version": _version.__version__,
        "parameters": {
            f.name: getattr(parameters, f.name) for f in fields(parameters)
        },
    }
    return stable_key(payload)


class ResultCache(_GenericResultCache):
    """Two-level :class:`EvaluationRecord` cache (in-memory + on-disk JSON).

    A thin specialisation of :class:`repro.runtime.ResultCache`: rows are
    encoded with :meth:`EvaluationRecord.to_dict` on the way to disk and
    rebuilt with :meth:`EvaluationRecord.from_dict` on the way back; every
    other behaviour (same-list memory hits, write-through, atomic writes,
    corrupted entries treated as misses) is inherited.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike[str] | None = None,
        *,
        memory: dict[str, list[EvaluationRecord]] | None = None,
    ) -> None:
        super().__init__(
            cache_dir,
            memory=memory,
            encode=lambda record: record.to_dict(),
            decode=EvaluationRecord.from_dict,
            prefix="ensemble",
            version=_version.__version__,
        )


# --------------------------------------------------------------------------- #
# Interrupts
# --------------------------------------------------------------------------- #
#: Manifest file a supervised campaign leaves in its cache directory when a
#: SIGINT/SIGTERM interrupts it mid-run.
INTERRUPT_MANIFEST = "interrupt-manifest.json"


class _campaign_interrupt_guard:
    """Turn SIGTERM into an exception so campaigns can exit cleanly.

    SIGINT already raises :class:`KeyboardInterrupt` between bytecodes;
    SIGTERM by default kills the process wherever it stands — including
    halfway through a cache write-through loop.  Inside the guard, SIGTERM
    raises :class:`SystemExit` (with the conventional ``128 + signum``
    code) instead, so the supervised loop's ``except`` path runs: the
    current atomic cache write completes, the interrupt manifest is
    written, and the process exits with campaign state on disk.

    Installs nothing when not on the main thread (``signal.signal`` is
    main-thread-only); the campaign then keeps the host application's
    handling.
    """

    def __init__(self) -> None:
        self._previous: Any = None
        self._installed = False

    @staticmethod
    def _raise_exit(signum: int, frame: Any) -> None:
        raise SystemExit(128 + signum)

    def __enter__(self) -> "_campaign_interrupt_guard":
        if threading.current_thread() is threading.main_thread():
            self._previous = signal.signal(signal.SIGTERM, self._raise_exit)
            self._installed = True
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._installed:
            signal.signal(signal.SIGTERM, self._previous)
            self._installed = False


# --------------------------------------------------------------------------- #
# Pipeline
# --------------------------------------------------------------------------- #
class EvaluationPipeline:
    """Cached, executor-pluggable evaluation of platform ensembles.

    Parameters
    ----------
    jobs:
        Number of worker processes; 1 (the default) evaluates in-process,
        ``> 1`` dispatches to the warm worker pool
        (:class:`~repro.pool.WarmPoolExecutor`) — long-lived workers that
        keep a warm session and attach published platform arrays over
        shared memory — falling back to the batched serial path (with a
        :class:`RuntimeWarning`) on single-CPU hosts.
    backend:
        Executor backend name (``"serial"``, ``"process"``,
        ``"warm-pool"``; see :func:`~repro.runtime.available_backends`)
        to force instead of the automatic ``jobs``-based choice.
        Mutually exclusive with ``executor``.
    cache_dir:
        Optional directory for the on-disk result cache.
    cache:
        Pre-built :class:`ResultCache` (overrides ``cache_dir``); used by
        the runner to share one in-memory cache across pipelines.
    executor:
        Explicit executor instance (overrides ``jobs`` and ``backend``).
    keep_going:
        Campaign semantics for permanent task failures: instead of
        aborting the whole evaluation, the failed task becomes a
        :class:`TaskErrorRecord` in :attr:`failures`, its batch-mates keep
        their results, and the campaign completes.  Successful tasks are
        written through to the disk cache *as they finish*, so a crashed
        or failed campaign resumes where it left off — a second invocation
        recomputes only the missing tasks.
    retry_policy:
        Supervision policy (:class:`~repro.runtime.RetryPolicy`) for the
        per-task retries/timeouts; setting it (or ``keep_going``) opts the
        pipeline into the supervised per-task path.

    Attributes
    ----------
    failures:
        :class:`TaskErrorRecord` list accumulated across
        :meth:`evaluate` calls under ``keep_going`` (empty otherwise).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        backend: str | None = None,
        cache_dir: str | os.PathLike[str] | None = None,
        cache: ResultCache | None = None,
        executor: TaskExecutor | None = None,
        keep_going: bool = False,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        if executor is not None and backend is not None:
            raise ExperimentError(
                "pass either an executor instance or a backend name, not both"
            )
        if executor is None:
            executor = make_executor(backend, jobs)
        self.executor = executor
        self.cache = cache if cache is not None else ResultCache(cache_dir)
        self.keep_going = bool(keep_going)
        self.retry_policy = retry_policy
        self.failures: list[TaskErrorRecord] = []

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the executor (stops warm-pool workers, unlinks segments)."""
        closer = getattr(self.executor, "close", None)
        if callable(closer):
            closer()

    def __enter__(self) -> "EvaluationPipeline":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        kind: str,
        parameters: PaperParameters,
        *,
        include_multi_port: bool = True,
        progress: bool = False,
    ) -> list[EvaluationRecord]:
        """Evaluate the ``kind`` ensemble ("random" or "tiers") of ``parameters``.

        Returns the cached record list when the exact same experiment (all
        parameter fields, same library version) was evaluated before.
        """
        if kind == "random":
            tasks = random_ensemble_tasks(
                parameters, include_multi_port=include_multi_port
            )
        elif kind == "tiers":
            # Tiers ensembles are one-port only; normalise the flag so it
            # cannot split identical computations over two cache keys.
            include_multi_port = False
            tasks = tiers_ensemble_tasks(parameters)
        elif kind == "collective":
            include_multi_port = False
            tasks = collective_ensemble_tasks(parameters)
        else:
            raise ExperimentError(f"unknown ensemble kind {kind!r}")

        key = ensemble_cache_key(
            kind, parameters, include_multi_port=include_multi_port
        )
        cached = self.cache.get(key)
        if cached is not None:
            return cached

        if self.keep_going or self.retry_policy is not None:
            return self._evaluate_supervised(tasks, key, progress)

        if type(self.executor) is SerialExecutor:
            # In-process runs share one session per chunk of tasks so that
            # solve_many can stack compatible jobs from different platforms
            # into ensemble batches (repro.kernels.batch).  Worker pools
            # keep the one-task-per-call protocol; their job groups are
            # batched again inside each worker.
            record_lists = run_ensemble_tasks_batched(tasks)
        else:
            record_lists = self.executor.map(run_ensemble_task, tasks)

        records: list[EvaluationRecord] = []
        for task, task_records in zip(tasks, record_lists):
            records.extend(task_records)
            if progress and task_records:
                self._print_progress(task, task_records)
        self.cache.put(key, records)
        return records

    @staticmethod
    def _print_progress(
        task: EnsembleTask, task_records: "list[EvaluationRecord]"
    ) -> None:
        if task.kind == "random":
            label = f"n={task.num_nodes} d={task.density:.2f}"
        elif task.kind == "collective":
            label = f"{task.collective} |targets|={task.num_targets}"
        else:
            label = f"size={task.tiers_size}"
        print(
            f"[{task.kind}] {label} #{task.instance_index}: "
            f"optimum={task_records[0].optimal_throughput:.4f}"
        )

    def _evaluate_supervised(
        self,
        tasks: "list[EnsembleTask]",
        campaign_key: str,
        progress: bool,
    ) -> "list[EvaluationRecord]":
        """Per-task supervised evaluation with resume and ``keep_going``.

        Each task is checked against its *own* cache entry first — a prior
        run (crashed, failed or simply interrupted) left one entry per
        completed task, so only the missing tasks are recomputed.  Fresh
        results are written through as they finish.  Permanent failures
        either re-raise (default) or, under ``keep_going``, land in
        :attr:`failures` as :class:`TaskErrorRecord` entries while the
        rest of the campaign completes.  The campaign-level cache entry is
        only written when every task succeeded, so a partial campaign can
        never be replayed as a complete one.
        """
        policy = self.retry_policy if self.retry_policy is not None else RetryPolicy()
        labels = [ensemble_task_key(task) for task in tasks]
        record_lists: "list[list[EvaluationRecord] | None]" = []
        pending: list[int] = []
        for i in range(len(tasks)):
            resumed = self.cache.get(labels[i])
            record_lists.append(resumed)
            if resumed is None:
                pending.append(i)
        failed = 0
        if pending:
            supervisor = SupervisedExecutor(self.executor, policy)
            # The task timeout bounds whole tasks here; the session inside
            # each task inherits the retry/backoff knobs but not the
            # timeout (a task is many jobs long).
            inner = dataclasses.replace(policy, task_timeout=None)
            outcomes = supervisor.map_outcomes(
                functools.partial(run_ensemble_task, retry_policy=inner),
                [tasks[i] for i in pending],
                labels=[labels[i] for i in pending],
            )
            try:
                with _campaign_interrupt_guard():
                    for outcome in outcomes:
                        i = pending[outcome.index]
                        if outcome.ok:
                            record_lists[i] = outcome.value
                            # Write-through per task: this is what resume reads.
                            self.cache.put(labels[i], outcome.value)
                            if progress:
                                self._print_progress(tasks[i], outcome.value)
                            continue
                        if not self.keep_going:
                            outcome.raise_if_failed()
                        failed += 1
                        self.failures.append(
                            TaskErrorRecord(tasks[i], outcome.failure)
                        )
                        if progress:
                            print(f"[failed] {self.failures[-1].describe()}")
            except (KeyboardInterrupt, SystemExit) as interruption:
                # Completed tasks are already on disk (each cache write is
                # atomic and happened before this point); record what state
                # the campaign stopped in, then let the interrupt proceed.
                self._write_interrupt_manifest(tasks, labels, record_lists, interruption)
                raise
        records = [
            record
            for task_records in record_lists
            if task_records is not None
            for record in task_records
        ]
        if not failed:
            self.cache.put(campaign_key, records)
        return records

    def _write_interrupt_manifest(
        self,
        tasks: "list[EnsembleTask]",
        labels: "list[str]",
        record_lists: "list[list[EvaluationRecord] | None]",
        interruption: BaseException,
    ) -> None:
        """Leave a resume manifest in the cache directory on interrupt.

        Records which tasks completed (and are on disk), which are still
        pending, and the structured failures collected so far — so an
        operator inspecting an interrupted campaign knows exactly what a
        re-run will recompute.  Written atomically (temp file + rename)
        next to the per-task entries; skipped silently when the pipeline
        has no disk cache (nothing survives the process then anyway).
        """
        cache_dir = getattr(self.cache, "cache_dir", None)
        if cache_dir is None:
            return
        manifest = {
            "interrupted_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "reason": type(interruption).__name__,
            "exit_code": (
                interruption.code
                if isinstance(interruption, SystemExit)
                else None
            ),
            "tasks_total": len(tasks),
            "tasks_completed": sum(
                1 for task_records in record_lists if task_records is not None
            ),
            "pending_labels": [
                labels[i]
                for i in range(len(tasks))
                if record_lists[i] is None
            ],
            "failures": [record.to_dict() for record in self.failures],
        }
        try:
            os.makedirs(cache_dir, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=cache_dir, prefix="interrupt-manifest.", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
            os.replace(temp_path, os.path.join(cache_dir, INTERRUPT_MANIFEST))
        except OSError:
            pass  # a full/readonly disk must not mask the interrupt itself
