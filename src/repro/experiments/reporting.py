"""Shape checks and report rendering for the reproduced experiments.

Reproducing the paper on a re-implemented substrate cannot (and should not)
match the absolute numbers of the original testbed; what must hold is the
*shape* of the results: which heuristics win, roughly by how much, and how
the ranking evolves with platform size / density.  This module encodes those
qualitative expectations as machine-checkable assertions
(:func:`check_figure4_shape`, :func:`check_figure5_shape`,
:func:`check_table3_shape`) used by the integration tests and the benchmark
harness, plus a helper to assemble the textual report written into
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ExperimentError
from .figures import FigureData
from .tables import TableData

__all__ = [
    "ShapeCheck",
    "check_figure4_shape",
    "check_figure5_shape",
    "check_table3_shape",
    "check_collective_scaling_shape",
    "check_dynamic_scaling_shape",
    "render_report",
]


@dataclass
class ShapeCheck:
    """Outcome of the qualitative comparison against the paper."""

    artefact: str
    passed: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)

    def record(self, description: str, condition: bool) -> None:
        """Record one expectation."""
        (self.passed if condition else self.failed).append(description)

    @property
    def ok(self) -> bool:
        """True when every expectation held."""
        return not self.failed

    def render(self) -> str:
        """Human-readable summary of the checks."""
        lines = [f"Shape checks for {self.artefact}:"]
        lines.extend(f"  [ok]   {item}" for item in self.passed)
        lines.extend(f"  [FAIL] {item}" for item in self.failed)
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        """Raise :class:`~repro.exceptions.ExperimentError` if a check failed."""
        if self.failed:
            raise ExperimentError(
                f"{self.artefact}: qualitative expectations violated: {self.failed}"
            )


def _mean(values: tuple[float, ...]) -> float:
    return sum(values) / len(values)


def check_figure4_shape(figure: FigureData) -> ShapeCheck:
    """Qualitative expectations shared by Figures 4(a) and 4(b).

    * the advanced heuristics (Prune Degree, Grow Tree, LP Prune, LP Grow
      Tree) stay well above half of the optimum on average;
    * the binomial tree is far below every topology-aware heuristic;
    * simple pruning never beats the refined pruning on average.
    """
    check = ShapeCheck(artefact=f"Figure {figure.figure_id}")
    advanced = ["Prune Platform Degree", "Grow Tree", "LP Prune", "LP Grow Tree"]
    for label in advanced:
        mean = _mean(figure.series_for(label))
        check.record(
            f"{label}: mean relative performance {mean:.2f} >= 0.55", mean >= 0.55
        )
    binomial = _mean(figure.series_for("Binomial Tree"))
    worst_advanced = min(_mean(figure.series_for(label)) for label in advanced)
    check.record(
        f"Binomial Tree ({binomial:.2f}) well below advanced heuristics ({worst_advanced:.2f})",
        binomial < worst_advanced - 0.15,
    )
    simple = _mean(figure.series_for("Prune Platform Simple"))
    refined = _mean(figure.series_for("Prune Platform Degree"))
    check.record(
        f"Prune Simple ({simple:.2f}) <= Prune Degree ({refined:.2f}) on average",
        simple <= refined + 1e-9,
    )
    return check


def check_figure5_shape(figure: FigureData) -> ShapeCheck:
    """Qualitative expectations of Figure 5 (multi-port model).

    * the multi-port-aware growing tree reaches (or exceeds) the one-port
      optimum on average;
    * every topology-aware heuristic beats the binomial tree;
    * the binomial tree fares better than under the one-port model is not
      directly checkable here (different figure), but it should at least
      stay above 0.2 of the optimum.
    """
    check = ShapeCheck(artefact="Figure 5")
    grow = _mean(figure.series_for("Multi Port Grow Tree"))
    check.record(f"Multi Port Grow Tree mean {grow:.2f} >= 0.9", grow >= 0.9)
    binomial = _mean(figure.series_for("Binomial Tree"))
    for label in ("Multi Port Grow Tree", "Multi Port Prune Degree", "LP Prune", "LP Grow Tree"):
        mean = _mean(figure.series_for(label))
        check.record(
            f"{label} ({mean:.2f}) above Binomial Tree ({binomial:.2f})", mean > binomial
        )
    check.record(f"Binomial Tree mean {binomial:.2f} >= 0.2", binomial >= 0.2)
    return check


def check_table3_shape(table: TableData) -> ShapeCheck:
    """Qualitative expectations of Table 3 (Tiers platforms).

    * advanced heuristics reach a large fraction of the optimum on both
      platform sizes;
    * the binomial tree collapses on hierarchical platforms;
    * relative performance does not improve when moving from 30 to 65 nodes
      for the advanced heuristics (larger platforms are harder).
    """
    check = ShapeCheck(artefact="Table 3")
    sizes = list(table.rows)
    advanced = ["Prune Platform Degree", "Grow Tree", "LP Prune", "LP Grow Tree"]
    for size in sizes:
        for label in advanced:
            mean = table.cell(size, label).mean
            check.record(
                f"{label} at {size} nodes: {mean:.2f} >= 0.5", mean >= 0.5
            )
        binomial = table.cell(size, "Binomial Tree").mean
        best_advanced = max(table.cell(size, label).mean for label in advanced)
        check.record(
            f"Binomial Tree at {size} nodes ({binomial:.2f}) far below best advanced "
            f"({best_advanced:.2f})",
            binomial < best_advanced - 0.3,
        )
    if len(sizes) >= 2:
        small, large = sizes[0], sizes[-1]
        for label in advanced:
            check.record(
                f"{label}: {large}-node mean <= {small}-node mean + 0.05",
                table.cell(large, label).mean <= table.cell(small, label).mean + 0.05,
            )
    return check


def check_collective_scaling_shape(figure: FigureData) -> ShapeCheck:
    """Structural expectations of the collective-scaling artefact.

    The target sets are nested (see
    :func:`repro.experiments.pipeline.collective_ensemble_tasks`), so these
    are theorems about the LP, not statistical tendencies:

    * each kind's optimum is non-increasing in the number of targets;
    * scatter never beats multicast on the same target set;
    * the single Steiner tree never beats the multi-tree optimum.
    """
    check = ShapeCheck(artefact="Collective scaling")
    tolerance = 1e-7
    for kind_label in ("Multicast optimum (LP)", "Scatter optimum (LP)"):
        values = figure.series_for(kind_label)
        monotone = all(a >= b - tolerance for a, b in zip(values, values[1:]))
        check.record(f"{kind_label} non-increasing in |targets|", monotone)
    multicast = figure.series_for("Multicast optimum (LP)")
    scatter = figure.series_for("Scatter optimum (LP)")
    check.record(
        "scatter optimum <= multicast optimum at every target count",
        all(s <= m + tolerance for s, m in zip(scatter, multicast)),
    )
    for kind, optimum_label, tree_label in (
        ("multicast", "Multicast optimum (LP)", "Multicast Grow Tree"),
        ("scatter", "Scatter optimum (LP)", "Scatter Grow Tree"),
    ):
        optima = figure.series_for(optimum_label)
        trees = figure.series_for(tree_label)
        check.record(
            f"{kind} tree throughput <= LP optimum at every target count",
            all(t <= o + tolerance for t, o in zip(trees, optima)),
        )
        ratio = sum(t / o for t, o in zip(trees, optima)) / len(optima)
        check.record(
            f"{kind} grow-tree stays above 40% of the optimum on average "
            f"({ratio:.2f})",
            ratio >= 0.4,
        )
    return check


def check_dynamic_scaling_shape(figure: "FigureData") -> ShapeCheck:
    """Structural expectations of the dynamic-scaling artefact.

    ``figure`` is a :class:`~repro.experiments.dynamics.DynamicScalingData`
    (duck-typed here: a :class:`FigureData` with ``replans`` /
    ``mean_ratios`` mappings riding along).

    * every ratio lies in ``[0, 1]`` — a single tree never beats that
      epoch's multi-tree LP optimum, and a re-planning charge only lowers
      it;
    * all policies start from the same baseline epoch (same initial tree);
    * adaptive's mean ratio is at least static's — monitoring drift and
      re-planning past the threshold must not lose to never re-planning;
    * the oracle re-plans at least as often as every other policy (it pays
      the re-plan charge every epoch, so its *ratio* may trail static on a
      mild trace — only its re-plan count is structurally extremal);
    * adaptive re-plans strictly fewer times than the per-epoch oracle —
      the whole point of the threshold is paying for fewer re-plans.
    """
    check = ShapeCheck(artefact="Dynamic scaling")
    tolerance = 1e-7
    for label, values in figure.series.items():
        check.record(
            f"{label}: every ratio within [0, 1]",
            all(-tolerance <= v <= 1.0 + tolerance for v in values),
        )
    baselines = {round(values[0], 9) for values in figure.series.values()}
    check.record(
        "all policies share the epoch-0 baseline ratio", len(baselines) == 1
    )
    replans = figure.replans
    mean_ratios = figure.mean_ratios
    check.record(
        f"adaptive mean ratio ({mean_ratios['adaptive']:.3f}) >= "
        f"static ({mean_ratios['static']:.3f})",
        mean_ratios["adaptive"] >= mean_ratios["static"] - tolerance,
    )
    check.record(
        f"oracle re-plans most often ({replans['oracle']:.2f})",
        all(count <= replans["oracle"] for count in replans.values()),
    )
    check.record(
        f"adaptive re-plans ({replans['adaptive']:.2f}) strictly below "
        f"oracle ({replans['oracle']:.2f})",
        replans["adaptive"] < replans["oracle"],
    )
    check.record(
        "static never re-plans", replans["static"] == 0.0
    )
    return check


def render_report(
    figures: list[FigureData], tables: list[TableData], checks: list[ShapeCheck]
) -> str:
    """Assemble a full textual report of the reproduced evaluation."""
    parts: list[str] = []
    for figure in figures:
        parts.append(figure.render())
    for table in tables:
        parts.append(table.render())
    for check in checks:
        parts.append(check.render())
    return "\n\n" + "\n\n".join(parts) + "\n"
