"""Single-platform evaluation: one LP reference plus every heuristic.

This module holds the *unit of work* of the experiment harness: evaluate
every paper heuristic on one platform against the steady-state LP optimum
and produce :class:`EvaluationRecord` rows.  The ensemble machinery — task
fan-out, executors, caching — lives in :mod:`repro.experiments.pipeline`;
keeping the unit of work separate lets worker processes import it without
dragging the whole pipeline along.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Sequence

from ..analysis.throughput import collective_throughput, tree_throughput
from ..collectives import CollectiveSpec
from ..core.registry import (
    PAPER_MULTI_PORT_HEURISTICS,
    PAPER_ONE_PORT_HEURISTICS,
    build_collective_tree,
    get_heuristic,
)
from ..lp.solver import solve_collective_lp, solve_steady_state_lp
from ..models.port_models import MultiPortModel, OnePortModel
from ..platform.graph import Platform

__all__ = [
    "EvaluationRecord",
    "PlatformEvaluation",
    "evaluate_platform",
    "evaluate_collective_platform",
]

NodeName = Any

#: Record fields that measure wall-clock time: they vary run to run and are
#: excluded from determinism comparisons (serial vs parallel, cache replay).
TIMING_FIELDS = ("build_seconds", "lp_seconds")


@dataclass(frozen=True)
class EvaluationRecord:
    """Relative performance of one heuristic on one platform instance.

    ``collective`` / ``num_targets`` locate the record inside the
    collective-scaling sweep (``"broadcast"`` / ``-1`` for the paper's
    broadcast ensembles, where every node is a destination).
    """

    generator: str
    platform_name: str
    num_nodes: int
    density: float
    instance_index: int
    heuristic: str
    model: str
    throughput: float
    optimal_throughput: float
    relative_performance: float
    build_seconds: float
    lp_seconds: float
    collective: str = "broadcast"
    num_targets: int = -1

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON friendly), used by the on-disk cache."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvaluationRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(**{name: data[name] for name in cls.__dataclass_fields__})

    def deterministic_payload(self) -> dict[str, Any]:
        """Record content minus the timing fields.

        Two runs of the same experiment at the same seed — serial or
        parallel, fresh or replayed from cache — must agree exactly on this
        payload.
        """
        payload = asdict(self)
        for name in TIMING_FIELDS:
            payload.pop(name)
        return payload


@dataclass
class PlatformEvaluation:
    """All records of one platform plus the LP reference."""

    platform: Platform
    source: NodeName
    optimal_throughput: float
    records: list[EvaluationRecord] = field(default_factory=list)


def evaluate_platform(
    platform: Platform,
    source: NodeName,
    *,
    generator: str = "custom",
    instance_index: int = 0,
    one_port_heuristics: Sequence[str] = PAPER_ONE_PORT_HEURISTICS,
    multi_port_heuristics: Sequence[str] = PAPER_MULTI_PORT_HEURISTICS,
    send_fraction: float = 0.8,
    include_multi_port: bool = True,
) -> PlatformEvaluation:
    """Evaluate every heuristic on one platform.

    The steady-state LP is solved exactly once; its throughput is the
    reference for every relative-performance number and its edge weights are
    reused by the LP-based heuristics (for both models, like in the paper:
    the reference optimum is always the one-port LP).
    """
    lp_start = time.perf_counter()
    lp_solution = solve_steady_state_lp(platform, source)
    lp_seconds = time.perf_counter() - lp_start
    optimal = lp_solution.throughput

    evaluation = PlatformEvaluation(
        platform=platform, source=source, optimal_throughput=optimal
    )

    model_plans: list[tuple[str, Any, Sequence[str]]] = [
        ("one-port", OnePortModel(), one_port_heuristics)
    ]
    if include_multi_port:
        model_plans.append(
            ("multi-port", MultiPortModel(send_fraction=send_fraction), multi_port_heuristics)
        )

    for model_name, model, heuristic_names in model_plans:
        for name in heuristic_names:
            heuristic = get_heuristic(name)
            kwargs: dict[str, Any] = {}
            if name.startswith("lp-"):
                kwargs["lp_solution"] = lp_solution
            build_start = time.perf_counter()
            tree = heuristic.build(
                platform, source, model=model, strict_model=False, **kwargs
            )
            build_seconds = time.perf_counter() - build_start
            throughput = tree_throughput(tree, model).throughput
            evaluation.records.append(
                EvaluationRecord(
                    generator=generator,
                    platform_name=platform.name,
                    num_nodes=platform.num_nodes,
                    density=platform.density,
                    instance_index=instance_index,
                    heuristic=name,
                    model=model_name,
                    throughput=throughput,
                    optimal_throughput=optimal,
                    relative_performance=throughput / optimal,
                    build_seconds=build_seconds,
                    lp_seconds=lp_seconds,
                )
            )
    return evaluation


def evaluate_collective_platform(
    platform: Platform,
    source: NodeName,
    *,
    collective: str,
    num_targets: int,
    heuristic: str = "grow-tree",
    generator: str = "collective",
    instance_index: int = 0,
) -> list[EvaluationRecord]:
    """One point of the collective-scaling sweep (one platform, one kind).

    The target set is the first ``num_targets`` non-source nodes in platform
    order, so the sets of a sweep are *nested*: the LP optimum is provably
    non-increasing in ``num_targets`` for each kind, which the shape check
    of the ``collective`` artefact asserts.
    """
    others = [node for node in platform.nodes if node != source]
    targets = tuple(others[:num_targets])
    spec = CollectiveSpec(collective, source, targets)

    lp_start = time.perf_counter()
    solution = solve_collective_lp(platform, spec)
    lp_seconds = time.perf_counter() - lp_start

    build_start = time.perf_counter()
    tree = build_collective_tree(platform, spec, heuristic=heuristic)
    build_seconds = time.perf_counter() - build_start
    throughput = collective_throughput(tree, spec).throughput

    return [
        EvaluationRecord(
            generator=generator,
            platform_name=platform.name,
            num_nodes=platform.num_nodes,
            density=platform.density,
            instance_index=instance_index,
            heuristic=heuristic,
            model="one-port",
            throughput=throughput,
            optimal_throughput=solution.throughput,
            relative_performance=throughput / solution.throughput,
            build_seconds=build_seconds,
            lp_seconds=lp_seconds,
            collective=collective,
            num_targets=num_targets,
        )
    ]
