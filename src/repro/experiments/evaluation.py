"""Single-platform evaluation: one LP reference plus every heuristic.

This module holds the *unit of work* of the experiment harness, expressed
on the :mod:`repro.api` facade: a platform evaluation is a list of
declarative :class:`~repro.api.Job` descriptions (one per heuristic and
port model) solved through one :class:`~repro.api.Session`, so the
steady-state LP is solved exactly once per platform and shared by the
relative-performance reference and the LP-guided heuristics.  The lazy
:class:`~repro.api.Result` views are flattened into
:class:`EvaluationRecord` rows, the stable on-disk/aggregation format the
figures and tables consume.

The ensemble machinery — task fan-out, executors, caching — lives in
:mod:`repro.experiments.pipeline`; keeping the unit of work separate lets
worker processes import it without dragging the whole pipeline along.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Sequence

from ..api import Job, PlatformRecipe, Result, Session
from ..collectives import CollectiveKind, CollectiveSpec
from ..core.registry import PAPER_MULTI_PORT_HEURISTICS, PAPER_ONE_PORT_HEURISTICS
from ..platform.graph import Platform

__all__ = [
    "EvaluationRecord",
    "PlatformEvaluation",
    "broadcast_jobs",
    "record_from_result",
    "evaluate_platform",
    "evaluate_collective_platform",
]

NodeName = Any

#: Record fields that measure wall-clock time: they vary run to run and are
#: excluded from determinism comparisons (serial vs parallel, cache replay).
TIMING_FIELDS = ("build_seconds", "lp_seconds")


@dataclass(frozen=True)
class EvaluationRecord:
    """Relative performance of one heuristic on one platform instance.

    ``collective`` / ``num_targets`` locate the record inside the
    collective-scaling sweep (``"broadcast"`` / ``-1`` for the paper's
    broadcast ensembles, where every node is a destination).
    """

    generator: str
    platform_name: str
    num_nodes: int
    density: float
    instance_index: int
    heuristic: str
    model: str
    throughput: float
    optimal_throughput: float
    relative_performance: float
    build_seconds: float
    lp_seconds: float
    collective: str = "broadcast"
    num_targets: int = -1

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON friendly), used by the on-disk cache."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EvaluationRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(**{name: data[name] for name in cls.__dataclass_fields__})

    def deterministic_payload(self) -> dict[str, Any]:
        """Record content minus the timing fields.

        Two runs of the same experiment at the same seed — serial or
        parallel, fresh or replayed from cache — must agree exactly on this
        payload.
        """
        payload = asdict(self)
        for name in TIMING_FIELDS:
            payload.pop(name)
        return payload


@dataclass
class PlatformEvaluation:
    """All records of one platform plus the LP reference."""

    platform: Platform
    source: NodeName
    optimal_throughput: float
    records: list[EvaluationRecord] = field(default_factory=list)


def broadcast_jobs(
    platform: "Platform | PlatformRecipe",
    source: NodeName,
    *,
    one_port_heuristics: Sequence[str] = PAPER_ONE_PORT_HEURISTICS,
    multi_port_heuristics: Sequence[str] = PAPER_MULTI_PORT_HEURISTICS,
    send_fraction: float = 0.8,
    include_multi_port: bool = True,
) -> list[Job]:
    """The paper's per-platform job list: every heuristic under its model.

    All jobs share the platform and the broadcast spec, so a session solves
    their reference LP once (for both models, like in the paper: the
    reference optimum is always the one-port LP).
    """
    spec = CollectiveSpec.broadcast(source)
    jobs = [
        Job(platform, spec, heuristic=name, model="one-port")
        for name in one_port_heuristics
    ]
    if include_multi_port:
        jobs.extend(
            Job(
                platform,
                spec,
                heuristic=name,
                model="multi-port",
                send_fraction=send_fraction,
            )
            for name in multi_port_heuristics
        )
    return jobs


def record_from_result(
    result: Result, *, generator: str = "custom", instance_index: int = 0
) -> EvaluationRecord:
    """Flatten one lazy :class:`~repro.api.Result` into a record row."""
    job = result.job
    platform = result.platform
    spec = job.collective
    if spec.kind is CollectiveKind.BROADCAST and spec.targets is None:
        num_targets = -1
    else:
        num_targets = len(spec.resolve_targets(platform))
    return EvaluationRecord(
        generator=generator,
        platform_name=platform.name,
        num_nodes=platform.num_nodes,
        density=platform.density,
        instance_index=instance_index,
        heuristic=job.heuristic,
        model=job.model,
        throughput=result.throughput,
        optimal_throughput=result.lp_bound,
        relative_performance=result.relative_performance,
        build_seconds=result.build_seconds,
        lp_seconds=result.lp_seconds,
        collective=spec.kind.value,
        num_targets=num_targets,
    )


def evaluate_platform(
    platform: "Platform | PlatformRecipe",
    source: NodeName,
    *,
    generator: str = "custom",
    instance_index: int = 0,
    one_port_heuristics: Sequence[str] = PAPER_ONE_PORT_HEURISTICS,
    multi_port_heuristics: Sequence[str] = PAPER_MULTI_PORT_HEURISTICS,
    send_fraction: float = 0.8,
    include_multi_port: bool = True,
    session: Session | None = None,
) -> PlatformEvaluation:
    """Evaluate every heuristic on one platform (inline or recipe).

    The work goes through a :class:`~repro.api.Session`: the steady-state
    LP is solved exactly once, its throughput is the reference for every
    relative-performance number, and its edge weights are reused by the
    LP-based heuristics.
    """
    session = session if session is not None else Session()
    jobs = broadcast_jobs(
        platform,
        source,
        one_port_heuristics=one_port_heuristics,
        multi_port_heuristics=multi_port_heuristics,
        send_fraction=send_fraction,
        include_multi_port=include_multi_port,
    )
    results = session.solve_many(jobs)
    records = [
        record_from_result(r, generator=generator, instance_index=instance_index)
        for r in results
    ]
    return PlatformEvaluation(
        platform=session.platform(platform),
        source=source,
        optimal_throughput=results[0].lp_bound if results else 0.0,
        records=records,
    )


def evaluate_collective_platform(
    platform: "Platform | PlatformRecipe",
    source: NodeName,
    *,
    collective: str,
    num_targets: int,
    heuristic: str = "grow-tree",
    generator: str = "collective",
    instance_index: int = 0,
    session: Session | None = None,
) -> list[EvaluationRecord]:
    """One point of the collective-scaling sweep (one platform, one kind).

    The target set is the first ``num_targets`` non-source nodes in platform
    order, so the sets of a sweep are *nested*: the LP optimum is provably
    non-increasing in ``num_targets`` for each kind, which the shape check
    of the ``collective`` artefact asserts.
    """
    session = session if session is not None else Session()
    resolved = session.platform(platform)
    others = [node for node in resolved.nodes if node != source]
    spec = CollectiveSpec(collective, source, tuple(others[:num_targets]))
    job = Job(platform, spec, heuristic=heuristic, model="one-port")
    results = session.solve_many([job])
    return [
        record_from_result(r, generator=generator, instance_index=instance_index)
        for r in results
    ]
