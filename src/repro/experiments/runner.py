"""Ensemble evaluation of the broadcast-tree heuristics.

The experiment harness mirrors Section 5 of the paper:

1. generate an ensemble of platforms (random platforms following Table 2,
   or Tiers-like hierarchical platforms),
2. for every platform, solve the steady-state LP once to obtain the MTP
   optimal throughput (the reference) and the communication-graph weights
   needed by the LP-based heuristics,
3. run every heuristic, compute its single-tree throughput under the
   relevant port model, and record the *relative performance* (heuristic
   throughput / LP optimum).

The records produced here are aggregated by :mod:`repro.experiments.figures`
and :mod:`repro.experiments.tables` into the paper's Figures 4(a), 4(b), 5
and Table 3.  Because the same random ensemble feeds three different
artefacts, the module keeps a process-wide cache of evaluated ensembles
keyed by the experiment parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..analysis.throughput import tree_throughput
from ..core.registry import (
    PAPER_MULTI_PORT_HEURISTICS,
    PAPER_ONE_PORT_HEURISTICS,
    get_heuristic,
)
from ..exceptions import ExperimentError
from ..lp.solver import solve_steady_state_lp
from ..models.port_models import MultiPortModel, OnePortModel
from ..platform.generators.random_graph import generate_random_platform
from ..platform.generators.tiers import generate_tiers_platform
from ..platform.graph import Platform
from ..utils.rng import derive_seed
from .config import PaperParameters

__all__ = [
    "EvaluationRecord",
    "PlatformEvaluation",
    "evaluate_platform",
    "random_ensemble_records",
    "tiers_ensemble_records",
    "clear_ensemble_cache",
    "filter_records",
]

NodeName = Any


@dataclass(frozen=True)
class EvaluationRecord:
    """Relative performance of one heuristic on one platform instance."""

    generator: str
    platform_name: str
    num_nodes: int
    density: float
    instance_index: int
    heuristic: str
    model: str
    throughput: float
    optimal_throughput: float
    relative_performance: float
    build_seconds: float
    lp_seconds: float


@dataclass
class PlatformEvaluation:
    """All records of one platform plus the LP reference."""

    platform: Platform
    source: NodeName
    optimal_throughput: float
    records: list[EvaluationRecord] = field(default_factory=list)


# --------------------------------------------------------------------------- #
# Single-platform evaluation
# --------------------------------------------------------------------------- #
def evaluate_platform(
    platform: Platform,
    source: NodeName,
    *,
    generator: str = "custom",
    instance_index: int = 0,
    one_port_heuristics: Sequence[str] = PAPER_ONE_PORT_HEURISTICS,
    multi_port_heuristics: Sequence[str] = PAPER_MULTI_PORT_HEURISTICS,
    send_fraction: float = 0.8,
    include_multi_port: bool = True,
) -> PlatformEvaluation:
    """Evaluate every heuristic on one platform.

    The steady-state LP is solved exactly once; its throughput is the
    reference for every relative-performance number and its edge weights are
    reused by the LP-based heuristics (for both models, like in the paper:
    the reference optimum is always the one-port LP).
    """
    lp_start = time.perf_counter()
    lp_solution = solve_steady_state_lp(platform, source)
    lp_seconds = time.perf_counter() - lp_start
    optimal = lp_solution.throughput

    evaluation = PlatformEvaluation(
        platform=platform, source=source, optimal_throughput=optimal
    )

    model_plans: list[tuple[str, Any, Sequence[str]]] = [
        ("one-port", OnePortModel(), one_port_heuristics)
    ]
    if include_multi_port:
        model_plans.append(
            ("multi-port", MultiPortModel(send_fraction=send_fraction), multi_port_heuristics)
        )

    for model_name, model, heuristic_names in model_plans:
        for name in heuristic_names:
            heuristic = get_heuristic(name)
            kwargs: dict[str, Any] = {}
            if name.startswith("lp-"):
                kwargs["lp_solution"] = lp_solution
            build_start = time.perf_counter()
            tree = heuristic.build(
                platform, source, model=model, strict_model=False, **kwargs
            )
            build_seconds = time.perf_counter() - build_start
            throughput = tree_throughput(tree, model).throughput
            evaluation.records.append(
                EvaluationRecord(
                    generator=generator,
                    platform_name=platform.name,
                    num_nodes=platform.num_nodes,
                    density=platform.density,
                    instance_index=instance_index,
                    heuristic=name,
                    model=model_name,
                    throughput=throughput,
                    optimal_throughput=optimal,
                    relative_performance=throughput / optimal,
                    build_seconds=build_seconds,
                    lp_seconds=lp_seconds,
                )
            )
    return evaluation


# --------------------------------------------------------------------------- #
# Ensembles
# --------------------------------------------------------------------------- #
_ENSEMBLE_CACHE: dict[tuple[str, str], list[EvaluationRecord]] = {}


def _cache_key(kind: str, parameters: PaperParameters) -> tuple[str, str]:
    return (kind, parameters.describe())


def clear_ensemble_cache() -> None:
    """Drop every cached ensemble evaluation (mostly useful in tests)."""
    _ENSEMBLE_CACHE.clear()


def random_ensemble_records(
    parameters: PaperParameters,
    *,
    include_multi_port: bool = True,
    progress: bool = False,
) -> list[EvaluationRecord]:
    """Evaluate the full random-platform ensemble of Figures 4 and 5.

    Results are cached per parameter set so that the three artefacts built
    from the same ensemble (Figure 4(a), Figure 4(b) and Figure 5) only pay
    for the LP solves once per process.
    """
    key = _cache_key("random" + ("+mp" if include_multi_port else ""), parameters)
    if key in _ENSEMBLE_CACHE:
        return _ENSEMBLE_CACHE[key]

    records: list[EvaluationRecord] = []
    for num_nodes in parameters.node_counts:
        for density in parameters.densities:
            for instance in range(parameters.configurations_per_point):
                seed = derive_seed(
                    parameters.seed, "random", num_nodes, int(density * 1000), instance
                )
                platform = generate_random_platform(
                    num_nodes=num_nodes,
                    density=density,
                    rate_mean=parameters.rate_mean,
                    rate_deviation=parameters.rate_deviation,
                    slice_size_mb=parameters.slice_size_mb,
                    send_fraction=parameters.send_fraction,
                    seed=seed,
                )
                evaluation = evaluate_platform(
                    platform,
                    parameters.source,
                    generator="random",
                    instance_index=instance,
                    send_fraction=parameters.send_fraction,
                    include_multi_port=include_multi_port,
                )
                records.extend(evaluation.records)
                if progress:
                    print(
                        f"[random] n={num_nodes} d={density:.2f} #{instance}: "
                        f"optimum={evaluation.optimal_throughput:.4f}"
                    )
    _ENSEMBLE_CACHE[key] = records
    return records


def tiers_ensemble_records(
    parameters: PaperParameters,
    *,
    progress: bool = False,
) -> list[EvaluationRecord]:
    """Evaluate the Tiers-like ensembles of Table 3 (one-port model only)."""
    key = _cache_key("tiers", parameters)
    if key in _ENSEMBLE_CACHE:
        return _ENSEMBLE_CACHE[key]

    records: list[EvaluationRecord] = []
    for size in parameters.tiers_sizes:
        for instance in range(parameters.tiers_platforms_per_size):
            seed = derive_seed(parameters.seed, "tiers", size, instance)
            platform = generate_tiers_platform(size, seed=seed)
            evaluation = evaluate_platform(
                platform,
                parameters.source,
                generator="tiers",
                instance_index=instance,
                send_fraction=parameters.send_fraction,
                include_multi_port=False,
            )
            records.extend(evaluation.records)
            if progress:
                print(
                    f"[tiers] size={size} #{instance}: "
                    f"optimum={evaluation.optimal_throughput:.4f}"
                )
    _ENSEMBLE_CACHE[key] = records
    return records


def filter_records(
    records: Iterable[EvaluationRecord],
    *,
    model: str | None = None,
    heuristic: str | None = None,
    num_nodes: int | None = None,
) -> list[EvaluationRecord]:
    """Select records matching the given criteria."""
    selected = list(records)
    if model is not None:
        selected = [r for r in selected if r.model == model]
    if heuristic is not None:
        selected = [r for r in selected if r.heuristic == heuristic]
    if num_nodes is not None:
        selected = [r for r in selected if r.num_nodes == num_nodes]
    if not selected:
        raise ExperimentError("no record matches the requested filter")
    return selected
