"""Ensemble evaluation of the broadcast-tree heuristics.

The experiment harness mirrors Section 5 of the paper:

1. generate an ensemble of platforms (random platforms following Table 2,
   or Tiers-like hierarchical platforms),
2. for every platform, solve the steady-state LP once to obtain the MTP
   optimal throughput (the reference) and the communication-graph weights
   needed by the LP-based heuristics,
3. run every heuristic, compute its single-tree throughput under the
   relevant port model, and record the *relative performance* (heuristic
   throughput / LP optimum).

The records produced here are aggregated by :mod:`repro.experiments.figures`
and :mod:`repro.experiments.tables` into the paper's Figures 4(a), 4(b), 5
and Table 3.  The heavy lifting is delegated to
:class:`~repro.experiments.pipeline.EvaluationPipeline`, whose unit of work
is a batch of declarative :class:`~repro.api.Job` descriptions solved
through a :class:`~repro.api.Session` (one LP solve per platform, shared by
every heuristic): the same random ensemble feeds three different artefacts,
so evaluations are shared through a process-wide in-memory cache, optionally
persisted on disk (``cache_dir``) and fanned out over worker processes
(``jobs``).  Per-task seeds are derived deterministically, so serial and
parallel runs produce identical records.
"""

from __future__ import annotations

import os
from typing import Iterable

from ..exceptions import ExperimentError
from .config import PaperParameters
from .evaluation import EvaluationRecord, PlatformEvaluation, evaluate_platform
from .pipeline import EvaluationPipeline, ResultCache

__all__ = [
    "EvaluationRecord",
    "PlatformEvaluation",
    "evaluate_platform",
    "random_ensemble_records",
    "tiers_ensemble_records",
    "collective_ensemble_records",
    "clear_ensemble_cache",
    "filter_records",
]

#: Process-wide in-memory record store shared by every pipeline the runner
#: builds, so Figure 4(a), Figure 4(b) and Figure 5 pay for their common
#: ensemble once per process whatever ``jobs`` / ``cache_dir`` they pass.
_SHARED_MEMORY: dict[str, list[EvaluationRecord]] = {}


def _pipeline(
    jobs: int, cache_dir: str | os.PathLike[str] | None
) -> EvaluationPipeline:
    cache = ResultCache(cache_dir, memory=_SHARED_MEMORY)
    return EvaluationPipeline(jobs=jobs, cache=cache)


def clear_ensemble_cache() -> None:
    """Drop every in-memory ensemble evaluation (mostly useful in tests)."""
    _SHARED_MEMORY.clear()


def random_ensemble_records(
    parameters: PaperParameters,
    *,
    include_multi_port: bool = True,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | os.PathLike[str] | None = None,
) -> list[EvaluationRecord]:
    """Evaluate the full random-platform ensemble of Figures 4 and 5.

    Results are cached per parameter set so that the three artefacts built
    from the same ensemble (Figure 4(a), Figure 4(b) and Figure 5) only pay
    for the LP solves once per process.  ``jobs`` fans the evaluation out
    over worker processes; ``cache_dir`` additionally persists the records
    on disk, keyed by the full parameter set and the library version.
    """
    return _pipeline(jobs, cache_dir).evaluate(
        "random",
        parameters,
        include_multi_port=include_multi_port,
        progress=progress,
    )


def tiers_ensemble_records(
    parameters: PaperParameters,
    *,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | os.PathLike[str] | None = None,
) -> list[EvaluationRecord]:
    """Evaluate the Tiers-like ensembles of Table 3 (one-port model only)."""
    return _pipeline(jobs, cache_dir).evaluate(
        "tiers", parameters, progress=progress
    )


def collective_ensemble_records(
    parameters: PaperParameters,
    *,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | os.PathLike[str] | None = None,
) -> list[EvaluationRecord]:
    """Evaluate the collective-scaling sweep (multicast / scatter vs |targets|).

    Goes through the same pipeline, executors and two-level cache as the
    paper ensembles: the sweep is keyed by the full parameter set and the
    library version, fans out over ``jobs`` worker processes, and replays
    from ``cache_dir`` on repeat runs.
    """
    return _pipeline(jobs, cache_dir).evaluate(
        "collective", parameters, progress=progress
    )


def filter_records(
    records: Iterable[EvaluationRecord],
    *,
    model: str | None = None,
    heuristic: str | None = None,
    num_nodes: int | None = None,
) -> list[EvaluationRecord]:
    """Select records matching the given criteria."""
    selected = list(records)
    if model is not None:
        selected = [r for r in selected if r.model == model]
    if heuristic is not None:
        selected = [r for r in selected if r.heuristic == heuristic]
    if num_nodes is not None:
        selected = [r for r in selected if r.num_nodes == num_nodes]
    if not selected:
        raise ExperimentError("no record matches the requested filter")
    return selected
