"""Ensemble evaluation of the broadcast-tree heuristics.

The experiment harness mirrors Section 5 of the paper:

1. generate an ensemble of platforms (random platforms following Table 2,
   or Tiers-like hierarchical platforms),
2. for every platform, solve the steady-state LP once to obtain the MTP
   optimal throughput (the reference) and the communication-graph weights
   needed by the LP-based heuristics,
3. run every heuristic, compute its single-tree throughput under the
   relevant port model, and record the *relative performance* (heuristic
   throughput / LP optimum).

The records produced here are aggregated by :mod:`repro.experiments.figures`
and :mod:`repro.experiments.tables` into the paper's Figures 4(a), 4(b), 5
and Table 3.  The heavy lifting is delegated to
:class:`~repro.experiments.pipeline.EvaluationPipeline`, whose unit of work
is a batch of declarative :class:`~repro.api.Job` descriptions solved
through a :class:`~repro.api.Session` (one LP solve per platform, shared by
every heuristic): the same random ensemble feeds three different artefacts,
so evaluations are shared through a process-wide in-memory cache, optionally
persisted on disk (``cache_dir``) and fanned out over worker processes
(``jobs``).  Per-task seeds are derived deterministically, so serial and
parallel runs produce identical records.
"""

from __future__ import annotations

import os
from typing import Iterable

from ..exceptions import ExperimentError
from ..runtime import RetryPolicy
from .config import PaperParameters
from .evaluation import EvaluationRecord, PlatformEvaluation, evaluate_platform
from .pipeline import EvaluationPipeline, ResultCache, TaskErrorRecord

__all__ = [
    "EvaluationRecord",
    "PlatformEvaluation",
    "TaskErrorRecord",
    "evaluate_platform",
    "random_ensemble_records",
    "tiers_ensemble_records",
    "collective_ensemble_records",
    "clear_ensemble_cache",
    "filter_records",
]

#: Process-wide in-memory record store shared by every pipeline the runner
#: builds, so Figure 4(a), Figure 4(b) and Figure 5 pay for their common
#: ensemble once per process whatever ``jobs`` / ``cache_dir`` they pass.
_SHARED_MEMORY: dict[str, list[EvaluationRecord]] = {}


def _pipeline(
    jobs: int,
    cache_dir: str | os.PathLike[str] | None,
    keep_going: bool = False,
    retry_policy: RetryPolicy | None = None,
) -> EvaluationPipeline:
    cache = ResultCache(cache_dir, memory=_SHARED_MEMORY)
    return EvaluationPipeline(
        jobs=jobs, cache=cache, keep_going=keep_going, retry_policy=retry_policy
    )


def _evaluate(
    kind: str,
    parameters: PaperParameters,
    *,
    include_multi_port: bool = True,
    progress: bool,
    jobs: int,
    cache_dir: str | os.PathLike[str] | None,
    keep_going: bool,
    retry_policy: RetryPolicy | None,
    failures: "list[TaskErrorRecord] | None",
) -> list[EvaluationRecord]:
    """One ensemble evaluation, surfacing failures into the caller's sink."""
    pipeline = _pipeline(jobs, cache_dir, keep_going, retry_policy)
    records = pipeline.evaluate(
        kind,
        parameters,
        include_multi_port=include_multi_port,
        progress=progress,
    )
    if failures is not None:
        failures.extend(pipeline.failures)
    return records


def clear_ensemble_cache() -> None:
    """Drop every in-memory ensemble evaluation (mostly useful in tests)."""
    _SHARED_MEMORY.clear()


def random_ensemble_records(
    parameters: PaperParameters,
    *,
    include_multi_port: bool = True,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | os.PathLike[str] | None = None,
    keep_going: bool = False,
    retry_policy: RetryPolicy | None = None,
    failures: "list[TaskErrorRecord] | None" = None,
) -> list[EvaluationRecord]:
    """Evaluate the full random-platform ensemble of Figures 4 and 5.

    Results are cached per parameter set so that the three artefacts built
    from the same ensemble (Figure 4(a), Figure 4(b) and Figure 5) only pay
    for the LP solves once per process.  ``jobs`` fans the evaluation out
    over worker processes; ``cache_dir`` additionally persists the records
    on disk, keyed by the full parameter set and the library version.
    ``keep_going`` / ``retry_policy`` opt into the supervised, resumable
    path (failed tasks append :class:`TaskErrorRecord` entries to the
    ``failures`` sink instead of aborting the campaign).
    """
    return _evaluate(
        "random",
        parameters,
        include_multi_port=include_multi_port,
        progress=progress,
        jobs=jobs,
        cache_dir=cache_dir,
        keep_going=keep_going,
        retry_policy=retry_policy,
        failures=failures,
    )


def tiers_ensemble_records(
    parameters: PaperParameters,
    *,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | os.PathLike[str] | None = None,
    keep_going: bool = False,
    retry_policy: RetryPolicy | None = None,
    failures: "list[TaskErrorRecord] | None" = None,
) -> list[EvaluationRecord]:
    """Evaluate the Tiers-like ensembles of Table 3 (one-port model only)."""
    return _evaluate(
        "tiers",
        parameters,
        progress=progress,
        jobs=jobs,
        cache_dir=cache_dir,
        keep_going=keep_going,
        retry_policy=retry_policy,
        failures=failures,
    )


def collective_ensemble_records(
    parameters: PaperParameters,
    *,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | os.PathLike[str] | None = None,
    keep_going: bool = False,
    retry_policy: RetryPolicy | None = None,
    failures: "list[TaskErrorRecord] | None" = None,
) -> list[EvaluationRecord]:
    """Evaluate the collective-scaling sweep (multicast / scatter vs |targets|).

    Goes through the same pipeline, executors and two-level cache as the
    paper ensembles: the sweep is keyed by the full parameter set and the
    library version, fans out over ``jobs`` worker processes, and replays
    from ``cache_dir`` on repeat runs.
    """
    return _evaluate(
        "collective",
        parameters,
        progress=progress,
        jobs=jobs,
        cache_dir=cache_dir,
        keep_going=keep_going,
        retry_policy=retry_policy,
        failures=failures,
    )


def filter_records(
    records: Iterable[EvaluationRecord],
    *,
    model: str | None = None,
    heuristic: str | None = None,
    num_nodes: int | None = None,
) -> list[EvaluationRecord]:
    """Select records matching the given criteria."""
    selected = list(records)
    if model is not None:
        selected = [r for r in selected if r.model == model]
    if heuristic is not None:
        selected = [r for r in selected if r.heuristic == heuristic]
    if num_nodes is not None:
        selected = [r for r in selected if r.num_nodes == num_nodes]
    if not selected:
        raise ExperimentError("no record matches the requested filter")
    return selected
