"""The dynamic-scaling artefact: re-scheduling policies under platform drift.

This campaign goes beyond the paper (whose platforms are static) and
exercises the :mod:`repro.dynamics` subsystem on the ensemble machinery: a
Monte-Carlo sweep over trace seeds on one fixed random platform, each seed
running the full static / oracle-per-epoch / adaptive(threshold) policy
comparison of :func:`repro.dynamics.run_dynamic`.  Per-epoch
achieved-vs-LP-bound ratios are averaged across seeds into a
:class:`DynamicScalingData` figure (a :class:`~repro.experiments.figures.FigureData`
with the per-policy re-plan counts riding along), whose expected shape the
reporting module checks:

* every ratio lies in ``[0, 1]`` (a single tree never beats the per-epoch
  multi-tree LP optimum);
* adaptive's mean ratio is at least static's (re-planning on drift can
  only help, net of the re-planning charge);
* adaptive re-plans strictly fewer times than the per-epoch oracle.

Campaigns are deterministic (trace seeds are spawned from the master seed)
and cache-keyed on the full job payload — platform recipe, trace spec and
seed, controller knobs, library version — so re-running an identical sweep
replays from the per-job cache, and serial and warm-pool runs agree
bit-for-bit (wall-clock timings are stripped in the worker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from .. import _version
from ..api import DynamicJob, PlatformRecipe
from ..dynamics.adaptive import POLICIES
from ..dynamics.trace import TraceSpec
from ..exceptions import ExperimentError
from ..runtime import (
    ResultCache as _GenericResultCache,
    RetryPolicy,
    SupervisedExecutor,
    TaskFailure,
    make_executor,
)
from ..utils.rng import derive_seed, spawn_seeds
from .config import PaperParameters
from .figures import FigureData

__all__ = [
    "DynamicScalingData",
    "DynamicErrorRecord",
    "dynamic_jobs",
    "dynamic_ensemble_records",
    "dynamic_scaling",
]

#: Display labels of the policy series, in plot order.
POLICY_LABELS: dict[str, str] = {
    "static": "Static (plan once)",
    "oracle": "Oracle (re-plan every epoch)",
    "adaptive": "Adaptive (drift threshold)",
}


@dataclass(frozen=True)
class DynamicErrorRecord:
    """One permanently failed dynamic campaign seed, as data (``--keep-going``)."""

    job: DynamicJob
    failure: TaskFailure

    def describe(self) -> str:
        """One-line human summary for campaign logs."""
        return f"[{self.job.describe()}] {self.failure.summary()}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "job": self.job.canonical_payload(),
            "failure": self.failure.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DynamicErrorRecord":
        return cls(
            job=DynamicJob.from_dict(data["job"]),
            failure=TaskFailure.from_dict(data["failure"]),
        )


def dynamic_trace_spec(parameters: PaperParameters, seed: int) -> TraceSpec:
    """The trace spec of one Monte-Carlo instance of ``parameters``."""
    return TraceSpec(
        seed=seed,
        horizon=parameters.dynamic_horizon,
        drift=parameters.dynamic_drift,
        congestion_rate=parameters.dynamic_congestion,
        churn_rate=parameters.dynamic_churn,
    )


def dynamic_platform_recipe(parameters: PaperParameters) -> PlatformRecipe:
    """The one shared platform recipe every trace seed perturbs."""
    return PlatformRecipe.of(
        "random",
        num_nodes=parameters.dynamic_nodes,
        density=parameters.dynamic_density,
        rate_mean=parameters.rate_mean,
        rate_deviation=parameters.rate_deviation,
        slice_size_mb=parameters.slice_size_mb,
        send_fraction=parameters.send_fraction,
        seed=derive_seed(parameters.seed, "dynamic-platform"),
    )


def dynamic_jobs(parameters: PaperParameters) -> list[DynamicJob]:
    """The campaign's job list: one :class:`DynamicJob` per trace seed.

    All jobs share one platform recipe (so the Monte-Carlo spread isolates
    the *trace* randomness) and differ only in the trace seed, spawned from
    the master seed with :func:`~repro.utils.rng.spawn_seeds`.
    """
    recipe = dynamic_platform_recipe(parameters)
    seeds = spawn_seeds(parameters.seed, parameters.dynamic_seeds, "dynamic-trace")
    return [
        DynamicJob(
            recipe,
            trace=dynamic_trace_spec(parameters, seed),
            source=parameters.source,
            send_fraction=parameters.send_fraction,
            threshold=parameters.dynamic_threshold,
            replan_cost=parameters.dynamic_replan_cost,
        )
        for seed in seeds
    ]


def _solve_dynamic_task(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Run one dynamic job; module-level so worker pools can pickle it.

    Runs on the warm worker's persistent session (or, on the serial path,
    the caller's process-global warm session), and strips the wall-clock
    field so serial and pooled campaigns return bit-identical records.
    """
    from ..api.session import _warm_worker_session  # local: avoid cycle

    job = DynamicJob.from_dict(payload)
    record = dict(_warm_worker_session().dynamic_payload_for(job))
    record.pop("solve_seconds", None)
    return record


class _DynamicCache(_GenericResultCache):
    """Two-level payload-dict cache keyed by ``DynamicJob.cache_key()``."""

    def __init__(self, cache_dir: Any = None) -> None:
        super().__init__(
            cache_dir,
            encode=dict,
            decode=dict,
            prefix="dynamic",
            version=_version.__version__,
        )


def dynamic_ensemble_records(
    parameters: PaperParameters,
    *,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | None = None,
    keep_going: bool = False,
    retry_policy: "RetryPolicy | None" = None,
    failures: "list[DynamicErrorRecord] | None" = None,
) -> list[dict[str, Any]]:
    """The campaign's deterministic per-seed payload records.

    Each record is checked against its own cache entry first (write-through
    as seeds finish, so interrupted campaigns resume), and the sweep fans
    out through the warm worker pool when ``jobs > 1``.  Under
    ``keep_going`` a permanently failed seed becomes a
    :class:`DynamicErrorRecord` in ``failures`` instead of aborting.
    """
    campaign = dynamic_jobs(parameters)
    cache = _DynamicCache(cache_dir)
    records: "list[dict[str, Any] | None]" = []
    pending: list[int] = []
    for index, job in enumerate(campaign):
        rows = cache.get(job.cache_key())
        records.append(dict(rows[0]) if rows else None)
        if rows is None:
            pending.append(index)

    if pending:
        policy = retry_policy if retry_policy is not None else RetryPolicy()
        executor = make_executor(None, jobs, warn_single_cpu=False)
        try:
            supervisor = SupervisedExecutor(executor, policy)
            outcomes = supervisor.map_outcomes(
                _solve_dynamic_task,
                [campaign[i].canonical_payload() for i in pending],
                labels=[campaign[i].cache_key() for i in pending],
            )
            for outcome in outcomes:
                index = pending[outcome.index]
                job = campaign[index]
                if outcome.ok:
                    records[index] = outcome.value
                    cache.put(job.cache_key(), [outcome.value])
                    if progress:
                        timelines = outcome.value["timelines"]
                        summary = ", ".join(
                            f"{policy_name}={timelines[policy_name]['mean_ratio']:.3f}"
                            for policy_name in outcome.value["policies"]
                        )
                        print(f"[dynamic] trace seed {job.trace.seed}: {summary}")
                    continue
                if not keep_going:
                    outcome.raise_if_failed()
                record = DynamicErrorRecord(job, outcome.failure)
                if failures is not None:
                    failures.append(record)
                if progress:
                    print(f"[failed] {record.describe()}")
        finally:
            closer = getattr(executor, "close", None)
            if callable(closer):
                closer()

    return [record for record in records if record is not None]


@dataclass(frozen=True)
class DynamicScalingData(FigureData):
    """The dynamic artefact: per-policy ratio curves plus re-plan counts.

    Extends :class:`~repro.experiments.figures.FigureData` (x axis: epoch
    time, series: mean achieved-vs-bound ratio per policy) with the
    campaign's re-plan statistics and the trace description, which the
    shape check and the CLI rendering both need.
    """

    replans: Mapping[str, float]
    mean_ratios: Mapping[str, float]
    trace_description: str

    def render(self) -> str:
        lines = [super().render(), "", "mean re-plans per campaign:"]
        for policy in POLICIES:
            if policy in self.replans:
                lines.append(
                    f"  {POLICY_LABELS[policy]}: {self.replans[policy]:.2f} "
                    f"(mean ratio {self.mean_ratios[policy]:.3f})"
                )
        lines.append(f"trace: {self.trace_description}")
        return "\n".join(lines)


def _mean(values: "list[float]") -> float:
    return sum(values) / len(values)


def _std(values: "list[float]") -> float:
    mean = _mean(values)
    return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5


def dynamic_scaling(
    parameters: PaperParameters | None = None,
    records: "Iterable[Mapping[str, Any]] | None" = None,
    *,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | None = None,
    keep_going: bool = False,
    retry_policy: "RetryPolicy | None" = None,
    failures: "list[DynamicErrorRecord] | None" = None,
) -> DynamicScalingData:
    """Achieved-vs-bound ratio over time for each re-scheduling policy.

    Each policy contributes one series over the shared epoch-time axis:
    the per-epoch ratio of its (charged) achieved throughput to that
    epoch's LP optimum, averaged across the campaign's trace seeds.
    """
    parameters = parameters or PaperParameters()
    if records is None:
        records = dynamic_ensemble_records(
            parameters,
            progress=progress,
            jobs=jobs,
            cache_dir=cache_dir,
            keep_going=keep_going,
            retry_policy=retry_policy,
            failures=failures,
        )
    selected = list(records)
    if not selected:
        raise ExperimentError("no dynamic campaign records available")
    times = tuple(float(t) for t in selected[0]["times"])
    for record in selected:
        if tuple(float(t) for t in record["times"]) != times:
            raise ExperimentError(
                "dynamic campaign records disagree on the epoch axis; "
                "mixed-parameter records cannot be aggregated"
            )

    series: dict[str, tuple[float, ...]] = {}
    deviations: dict[str, tuple[float, ...]] = {}
    samples: dict[str, tuple[int, ...]] = {}
    replans: dict[str, float] = {}
    mean_ratios: dict[str, float] = {}
    for policy in POLICIES:
        if any(policy not in record["timelines"] for record in selected):
            continue
        per_seed = [record["timelines"][policy] for record in selected]
        label = POLICY_LABELS[policy]
        ratio_rows = [
            [sample["ratio"] for sample in timeline["samples"]]
            for timeline in per_seed
        ]
        series[label] = tuple(
            _mean([row[i] for row in ratio_rows]) for i in range(len(times))
        )
        deviations[label] = tuple(
            _std([row[i] for row in ratio_rows]) for i in range(len(times))
        )
        samples[label] = tuple(len(ratio_rows) for _ in times)
        replans[policy] = _mean([float(t["replans"]) for t in per_seed])
        mean_ratios[policy] = _mean([float(t["mean_ratio"]) for t in per_seed])

    spec = dynamic_trace_spec(parameters, 0)
    return DynamicScalingData(
        figure_id="dynamic",
        title=(
            "Dynamic scaling - one-port model, random platform "
            f"(n={parameters.dynamic_nodes}, d={parameters.dynamic_density}, "
            f"{len(selected)} trace seeds): achieved / LP-bound throughput "
            "ratio vs time under bandwidth drift"
        ),
        x_label="time",
        x_values=times,
        series=series,
        deviations=deviations,
        samples_per_point=samples,
        replans=replans,
        mean_ratios=mean_ratios,
        trace_description=(
            f"horizon={spec.horizon}, window={spec.window:g}, "
            f"drift={spec.drift:g} (rho={spec.drift_rho:g}), "
            f"congestion={spec.congestion_rate:g}x{spec.congestion_factor:g}, "
            f"churn={spec.churn_rate:g}; threshold={parameters.dynamic_threshold:g}, "
            f"replan_cost={parameters.dynamic_replan_cost:g}"
        ),
    )
