"""Regeneration of the paper's Table 3 (Tiers platforms, one-port model).

Table 3 reports, for two ensembles of Tiers-generated platforms (30 and 65
nodes), the average relative performance (and deviation) of the six
one-port heuristics.  The layout below mirrors the paper: one row per
platform size, one column per heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..analysis.metrics import SummaryStatistics, summarize
from ..core.registry import PAPER_ONE_PORT_HEURISTICS, get_heuristic
from ..exceptions import ExperimentError
from ..utils.ascii_plot import format_table
from .config import PaperParameters
from ..runtime import RetryPolicy
from .pipeline import TaskErrorRecord
from .runner import EvaluationRecord, tiers_ensemble_records

__all__ = ["TableData", "table_3"]


@dataclass(frozen=True)
class TableData:
    """One reproduced table: per (row, column) summary statistics."""

    table_id: str
    title: str
    row_label: str
    rows: tuple[object, ...]
    columns: tuple[str, ...]
    cells: Mapping[tuple[object, str], SummaryStatistics]

    def cell(self, row: object, column: str) -> SummaryStatistics:
        """The statistics of one (row, column) cell."""
        try:
            return self.cells[(row, column)]
        except KeyError as exc:
            raise ExperimentError(
                f"table {self.table_id} has no cell ({row!r}, {column!r})"
            ) from exc

    def to_text(self, as_percentage: bool = True) -> str:
        """Aligned plain-text rendering in the paper's layout."""
        headers = [self.row_label, *self.columns]
        body = []
        for row in self.rows:
            body.append(
                [row, *(self.cell(row, column).format(as_percentage) for column in self.columns)]
            )
        return format_table(headers, body)

    def render(self) -> str:
        """Title plus table."""
        return f"{self.title}\n\n{self.to_text()}"


def table_3(
    parameters: PaperParameters | None = None,
    records: Iterable[EvaluationRecord] | None = None,
    *,
    heuristics: Sequence[str] = PAPER_ONE_PORT_HEURISTICS,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | None = None,
    keep_going: bool = False,
    retry_policy: "RetryPolicy | None" = None,
    failures: "list[TaskErrorRecord] | None" = None,
) -> TableData:
    """Table 3: one-port heuristics on Tiers-like platforms (30 / 65 nodes)."""
    parameters = parameters or PaperParameters()
    if records is None:
        records = tiers_ensemble_records(
            parameters,
            progress=progress,
            jobs=jobs,
            cache_dir=cache_dir,
            keep_going=keep_going,
            retry_policy=retry_policy,
            failures=failures,
        )
    selected = [
        r for r in records
        if r.generator == "tiers" and r.model == "one-port" and r.heuristic in set(heuristics)
    ]
    if not selected:
        raise ExperimentError("no Tiers one-port records available for Table 3")

    sizes = tuple(sorted({r.num_nodes for r in selected}))
    columns = tuple(get_heuristic(name).paper_label for name in heuristics)
    cells: dict[tuple[object, str], SummaryStatistics] = {}
    for size in sizes:
        for name, column in zip(heuristics, columns):
            ratios = [
                r.relative_performance
                for r in selected
                if r.num_nodes == size and r.heuristic == name
            ]
            if not ratios:
                raise ExperimentError(
                    f"Table 3: heuristic {name!r} has no record for size {size}"
                )
            cells[(size, column)] = summarize(ratios)

    return TableData(
        table_id="3",
        title=(
            "Table 3 - performance of the one-port heuristics on Tiers-generated "
            "platforms (average relative performance +/- deviation)"
        ),
        row_label="nodes",
        rows=sizes,
        columns=columns,
        cells=cells,
    )
