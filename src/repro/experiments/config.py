"""Experiment configuration objects.

:class:`PaperParameters` encodes the exact experimental setup of Section 5
(Table 2 plus the Tiers ensembles), and :func:`scaled_parameters` derives a
smaller but same-shaped setup for quick runs: the full paper ensemble needs
hundreds of LP solves, which is fine for a dedicated benchmark run but too
slow for continuous testing.  The scale factor can also be set through the
``REPRO_EXPERIMENT_SCALE`` environment variable (used by the benchmark
harness), so `pytest benchmarks/ --benchmark-only` can be dialled from a
quick sanity run up to the full paper reproduction without editing code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from ..exceptions import ConfigError

__all__ = ["PaperParameters", "scaled_parameters", "parameters_from_environment", "SCALE_ENV_VAR"]

#: Environment variable controlling the experiment scale (float, default 1.0
#: meaning "exactly the paper's ensemble sizes").
SCALE_ENV_VAR = "REPRO_EXPERIMENT_SCALE"


@dataclass(frozen=True)
class PaperParameters:
    """The evaluation parameters of Section 5.

    Attributes mirror Table 2 and the Tiers paragraph of Section 5.1:
    random platforms with 10–50 nodes and densities 0.04–0.20 (10
    configurations per parameter point), Gaussian link rates
    (mean 100 MB/s, deviation 20 MB/s), multi-port send overheads at 80 % of
    the fastest outgoing link, and two Tiers ensembles of 100 platforms with
    30 and 65 nodes.
    """

    node_counts: tuple[int, ...] = (10, 20, 30, 40, 50)
    densities: tuple[float, ...] = (0.04, 0.08, 0.12, 0.16, 0.20)
    configurations_per_point: int = 10
    rate_mean: float = 100.0
    rate_deviation: float = 20.0
    slice_size_mb: float = 100.0
    send_fraction: float = 0.8
    tiers_sizes: tuple[int, ...] = (30, 65)
    tiers_platforms_per_size: int = 100
    source: int = 0
    seed: int = 20041146  # LIP research report number, for flavour.
    #: Collective-scaling artefact (beyond the paper): platform family and
    #: nested target-set sizes of the throughput-vs-|targets| sweep.
    collective_nodes: int = 20
    collective_density: float = 0.15
    collective_target_counts: tuple[int, ...] = (2, 4, 8, 12, 16, 19)
    collective_instances: int = 5
    #: Dynamic-platform artefact (beyond the paper): platform family, trace
    #: shape and controller knobs of the static/oracle/adaptive comparison
    #: (:func:`repro.experiments.dynamics.dynamic_scaling`).
    dynamic_nodes: int = 16
    dynamic_density: float = 0.3
    dynamic_seeds: int = 6
    dynamic_horizon: int = 8
    dynamic_drift: float = 0.2
    dynamic_congestion: float = 0.2
    dynamic_churn: float = 0.0
    dynamic_threshold: float = 0.15
    dynamic_replan_cost: float = 0.05
    extra: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.node_counts or min(self.node_counts) < 2:
            raise ConfigError("node_counts must contain values >= 2")
        if not self.densities or not all(0 < d <= 1 for d in self.densities):
            raise ConfigError("densities must be in (0, 1]")
        if self.configurations_per_point < 1:
            raise ConfigError("configurations_per_point must be >= 1")
        if self.tiers_platforms_per_size < 1:
            raise ConfigError("tiers_platforms_per_size must be >= 1")
        if self.collective_instances < 1:
            raise ConfigError("collective_instances must be >= 1")
        if not self.collective_target_counts or not all(
            1 <= c < self.collective_nodes for c in self.collective_target_counts
        ):
            raise ConfigError(
                "collective_target_counts must lie in [1, collective_nodes)"
            )
        if self.dynamic_nodes < 2:
            raise ConfigError("dynamic_nodes must be >= 2")
        if not 0 < self.dynamic_density <= 1:
            raise ConfigError("dynamic_density must be in (0, 1]")
        if self.dynamic_seeds < 1:
            raise ConfigError("dynamic_seeds must be >= 1")
        if self.dynamic_horizon < 1:
            raise ConfigError("dynamic_horizon must be >= 1")
        if self.dynamic_drift < 0 or self.dynamic_congestion < 0:
            raise ConfigError("dynamic_drift and dynamic_congestion must be >= 0")
        if not 0 <= self.dynamic_churn <= 1:
            raise ConfigError("dynamic_churn must be in [0, 1]")
        if self.dynamic_threshold <= 0:
            raise ConfigError("dynamic_threshold must be positive")
        if not 0 <= self.dynamic_replan_cost < 1:
            raise ConfigError("dynamic_replan_cost must lie in [0, 1)")

    @property
    def total_random_platforms(self) -> int:
        """Number of random platforms in the full Figure 4 / 5 sweep."""
        return len(self.node_counts) * len(self.densities) * self.configurations_per_point

    @property
    def total_tiers_platforms(self) -> int:
        """Number of Tiers platforms in the full Table 3 sweep."""
        return len(self.tiers_sizes) * self.tiers_platforms_per_size

    def describe(self) -> str:
        """Human-readable summary used in benchmark output."""
        return (
            f"nodes={list(self.node_counts)}, densities={list(self.densities)}, "
            f"{self.configurations_per_point} configs/point "
            f"({self.total_random_platforms} random platforms), "
            f"Tiers sizes={list(self.tiers_sizes)} x {self.tiers_platforms_per_size} "
            f"({self.total_tiers_platforms} Tiers platforms), seed={self.seed}"
        )


def scaled_parameters(scale: float = 1.0, *, seed: int | None = None) -> PaperParameters:
    """Derive a ``PaperParameters`` with ensemble sizes scaled by ``scale``.

    ``scale=1.0`` is the full paper setup; smaller values shrink the number
    of configurations per point and the number of Tiers platforms (never
    below 1) while keeping the parameter grid itself intact, so the shape of
    the curves is preserved.  Values above 1 increase the ensemble sizes.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    base = PaperParameters()
    params = replace(
        base,
        configurations_per_point=max(1, round(base.configurations_per_point * scale)),
        tiers_platforms_per_size=max(1, round(base.tiers_platforms_per_size * scale)),
        collective_instances=max(1, round(base.collective_instances * scale)),
        dynamic_seeds=max(1, round(base.dynamic_seeds * scale)),
    )
    if seed is not None:
        params = replace(params, seed=seed)
    return params


def parameters_from_environment(default_scale: float = 0.3) -> PaperParameters:
    """Build parameters from the ``REPRO_EXPERIMENT_SCALE`` environment variable.

    The default scale (0.3) keeps benchmark runs affordable (3 random
    configurations per parameter point, 30 Tiers platforms per size) while
    remaining statistically meaningful; set the variable to 1.0 to reproduce
    the paper's full ensembles.
    """
    raw = os.environ.get(SCALE_ENV_VAR)
    if raw is None:
        return scaled_parameters(default_scale)
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ConfigError(
            f"{SCALE_ENV_VAR} must be a float, got {raw!r}"
        ) from exc
    return scaled_parameters(scale)
