"""Experiment harness regenerating every figure and table of the paper."""

from .config import (
    SCALE_ENV_VAR,
    PaperParameters,
    parameters_from_environment,
    scaled_parameters,
)
from .collectives import COLLECTIVE_SERIES, collective_scaling
from .figures import FigureData, figure_4a, figure_4b, figure_5
from .pipeline import (
    EnsembleTask,
    TaskErrorRecord,
    collective_ensemble_tasks,
    EvaluationPipeline,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    ensemble_cache_key,
    ensemble_task_key,
    random_ensemble_tasks,
    run_ensemble_task,
    tiers_ensemble_tasks,
)
from .reporting import (
    ShapeCheck,
    check_collective_scaling_shape,
    check_figure4_shape,
    check_figure5_shape,
    check_table3_shape,
    render_report,
)
from .runner import (
    EvaluationRecord,
    PlatformEvaluation,
    clear_ensemble_cache,
    collective_ensemble_records,
    evaluate_platform,
    filter_records,
    random_ensemble_records,
    tiers_ensemble_records,
)
from .tables import TableData, table_3

__all__ = [
    "SCALE_ENV_VAR",
    "PaperParameters",
    "parameters_from_environment",
    "scaled_parameters",
    "COLLECTIVE_SERIES",
    "collective_scaling",
    "FigureData",
    "figure_4a",
    "figure_4b",
    "figure_5",
    "EnsembleTask",
    "TaskErrorRecord",
    "collective_ensemble_tasks",
    "EvaluationPipeline",
    "ProcessExecutor",
    "ResultCache",
    "SerialExecutor",
    "ensemble_cache_key",
    "ensemble_task_key",
    "random_ensemble_tasks",
    "run_ensemble_task",
    "tiers_ensemble_tasks",
    "ShapeCheck",
    "check_collective_scaling_shape",
    "check_figure4_shape",
    "check_figure5_shape",
    "check_table3_shape",
    "render_report",
    "EvaluationRecord",
    "PlatformEvaluation",
    "clear_ensemble_cache",
    "collective_ensemble_records",
    "evaluate_platform",
    "filter_records",
    "random_ensemble_records",
    "tiers_ensemble_records",
    "TableData",
    "table_3",
]
