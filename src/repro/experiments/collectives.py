"""The collective-scaling artefact: throughput vs number of targets.

This sweep goes beyond the paper (whose evaluation is broadcast-only) and
exercises the :mod:`repro.collectives` subsystem end to end on the ensemble
pipeline: for a family of random platforms, multicast and scatter are solved
(LP optimum) and built (spec-aware grow-tree) over *nested* target sets of
increasing size.  Nested sets make the expected shape exact, not
statistical:

* each kind's LP optimum is non-increasing in ``|targets|`` (more
  commodities only add constraints);
* scatter never beats multicast on the same target set (its nesting
  equality dominates the multicast inequalities);
* the multicast optimum at full targets *is* the broadcast optimum;
* the single-tree throughput never exceeds the multi-tree LP optimum.

The artefact reuses :class:`~repro.experiments.figures.FigureData` so the
CLI renders it like the paper figures.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..exceptions import ExperimentError
from .config import PaperParameters
from .figures import FigureData
from ..runtime import RetryPolicy
from .pipeline import TaskErrorRecord
from .runner import EvaluationRecord, collective_ensemble_records

__all__ = ["collective_scaling", "COLLECTIVE_SERIES"]

#: Series labels of the artefact, per collective kind.
COLLECTIVE_SERIES: dict[str, tuple[str, str]] = {
    "multicast": ("Multicast optimum (LP)", "Multicast Grow Tree"),
    "scatter": ("Scatter optimum (LP)", "Scatter Grow Tree"),
}


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _std(values: Sequence[float]) -> float:
    mean = _mean(values)
    return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5


def collective_scaling(
    parameters: PaperParameters | None = None,
    records: Iterable[EvaluationRecord] | None = None,
    *,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | None = None,
    keep_going: bool = False,
    retry_policy: "RetryPolicy | None" = None,
    failures: "list[TaskErrorRecord] | None" = None,
) -> FigureData:
    """Throughput vs ``|targets|`` for multicast and scatter.

    Each kind contributes two series over the shared x axis (number of
    targets): the MTP optimum of the spec-parameterised LP, and the
    steady-state throughput of the spec-aware grow-tree heuristic's single
    Steiner tree (instances averaged).
    """
    parameters = parameters or PaperParameters()
    if records is None:
        records = collective_ensemble_records(
            parameters,
            progress=progress,
            jobs=jobs,
            cache_dir=cache_dir,
            keep_going=keep_going,
            retry_policy=retry_policy,
            failures=failures,
        )
    selected = [r for r in records if r.generator == "collective"]
    if not selected:
        raise ExperimentError("no collective-scaling records available")
    x_values = tuple(sorted({r.num_targets for r in selected}))

    series: dict[str, tuple[float, ...]] = {}
    deviations: dict[str, tuple[float, ...]] = {}
    samples: dict[str, tuple[int, ...]] = {}
    for kind, (optimum_label, tree_label) in COLLECTIVE_SERIES.items():
        kind_records = [r for r in selected if r.collective == kind]
        if not kind_records:
            continue
        for label, value_of in (
            (optimum_label, lambda r: r.optimal_throughput),
            (tree_label, lambda r: r.throughput),
        ):
            means: list[float] = []
            stds: list[float] = []
            counts: list[int] = []
            for x in x_values:
                values = [value_of(r) for r in kind_records if r.num_targets == x]
                if not values:
                    raise ExperimentError(
                        f"collective artefact: kind {kind!r} has no record at "
                        f"|targets|={x}"
                    )
                means.append(_mean(values))
                stds.append(_std(values))
                counts.append(len(values))
            series[label] = tuple(means)
            deviations[label] = tuple(stds)
            samples[label] = tuple(counts)

    return FigureData(
        figure_id="collective",
        title=(
            "Collective scaling - one-port model, random platforms "
            f"(n={parameters.collective_nodes}, d={parameters.collective_density}): "
            "steady-state throughput (rounds/time-unit) vs number of targets"
        ),
        x_label="targets",
        x_values=tuple(float(x) for x in x_values),
        series=series,
        deviations=deviations,
        samples_per_point=samples,
    )
