"""Regeneration of the paper's figures (4a, 4b and 5).

Each function aggregates the ensemble records produced by
:mod:`repro.experiments.runner` into the series plotted in the paper:

* **Figure 4(a)** — one-port model, random platforms: average relative
  performance of each heuristic as a function of the number of nodes
  (densities and instances averaged together);
* **Figure 4(b)** — same ensemble, aggregated by density instead;
* **Figure 5** — multi-port model, random platforms: average relative
  performance (still against the *one-port* LP optimum, as in the paper,
  which is why ratios above 1 are possible) as a function of the number of
  nodes.

The result objects know how to render themselves as plain-text tables and
ASCII charts; the benchmark harness prints those renderings so the curves
can be compared with the paper by eye.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..analysis.metrics import summarize
from ..core.registry import PAPER_MULTI_PORT_HEURISTICS, PAPER_ONE_PORT_HEURISTICS, get_heuristic
from ..exceptions import ExperimentError
from ..utils.ascii_plot import ascii_chart, format_series_table
from .config import PaperParameters
from ..runtime import RetryPolicy
from .pipeline import TaskErrorRecord
from .runner import EvaluationRecord, random_ensemble_records

__all__ = ["FigureData", "figure_4a", "figure_4b", "figure_5"]


@dataclass(frozen=True)
class FigureData:
    """Data behind one figure: named series over a shared x axis."""

    figure_id: str
    title: str
    x_label: str
    x_values: tuple[float, ...]
    series: Mapping[str, tuple[float, ...]]
    deviations: Mapping[str, tuple[float, ...]]
    samples_per_point: Mapping[str, tuple[int, ...]]

    def series_for(self, label: str) -> tuple[float, ...]:
        """Mean relative performance of one heuristic across the x axis."""
        try:
            return self.series[label]
        except KeyError as exc:
            raise ExperimentError(
                f"figure {self.figure_id} has no series {label!r}; "
                f"available: {sorted(self.series)}"
            ) from exc

    def to_table(self) -> str:
        """Aligned plain-text table of the series."""
        return format_series_table(self.x_label, list(self.x_values), dict(self.series))

    def to_chart(self, width: int = 64, height: int = 16) -> str:
        """ASCII chart approximating the paper's plot."""
        return ascii_chart(
            list(self.x_values), dict(self.series), width=width, height=height
        )

    def render(self) -> str:
        """Table plus chart, suitable for benchmark output."""
        return f"{self.title}\n\n{self.to_table()}\n\n{self.to_chart()}"


def _aggregate(
    records: Iterable[EvaluationRecord],
    *,
    figure_id: str,
    title: str,
    model: str,
    heuristics: Sequence[str],
    x_label: str,
    x_of: str,
) -> FigureData:
    """Group records of ``model`` by heuristic and by the ``x_of`` attribute."""
    selected = [r for r in records if r.model == model and r.heuristic in set(heuristics)]
    if not selected:
        raise ExperimentError(f"no {model} records available for figure {figure_id}")
    x_values = tuple(sorted({round(getattr(r, x_of), 6) for r in selected}))

    series: dict[str, tuple[float, ...]] = {}
    deviations: dict[str, tuple[float, ...]] = {}
    samples: dict[str, tuple[int, ...]] = {}
    for heuristic in heuristics:
        label = get_heuristic(heuristic).paper_label
        means: list[float] = []
        stds: list[float] = []
        counts: list[int] = []
        for x in x_values:
            ratios = [
                r.relative_performance
                for r in selected
                if r.heuristic == heuristic and round(getattr(r, x_of), 6) == x
            ]
            if not ratios:
                raise ExperimentError(
                    f"figure {figure_id}: heuristic {heuristic!r} has no record at "
                    f"{x_label}={x}"
                )
            stats = summarize(ratios)
            means.append(stats.mean)
            stds.append(stats.std)
            counts.append(stats.count)
        series[label] = tuple(means)
        deviations[label] = tuple(stds)
        samples[label] = tuple(counts)

    return FigureData(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        x_values=x_values,
        series=series,
        deviations=deviations,
        samples_per_point=samples,
    )


def figure_4a(
    parameters: PaperParameters | None = None,
    records: Iterable[EvaluationRecord] | None = None,
    *,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | None = None,
    keep_going: bool = False,
    retry_policy: "RetryPolicy | None" = None,
    failures: "list[TaskErrorRecord] | None" = None,
) -> FigureData:
    """Figure 4(a): one-port relative performance vs number of nodes."""
    parameters = parameters or PaperParameters()
    if records is None:
        records = random_ensemble_records(
            parameters,
            progress=progress,
            jobs=jobs,
            cache_dir=cache_dir,
            keep_going=keep_going,
            retry_policy=retry_policy,
            failures=failures,
        )
    return _aggregate(
        records,
        figure_id="4a",
        title=(
            "Figure 4(a) - one-port model, random platforms: relative performance "
            "(heuristic throughput / MTP optimum) vs number of nodes"
        ),
        model="one-port",
        heuristics=PAPER_ONE_PORT_HEURISTICS,
        x_label="nodes",
        x_of="num_nodes",
    )


def figure_4b(
    parameters: PaperParameters | None = None,
    records: Iterable[EvaluationRecord] | None = None,
    *,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | None = None,
    keep_going: bool = False,
    retry_policy: "RetryPolicy | None" = None,
    failures: "list[TaskErrorRecord] | None" = None,
) -> FigureData:
    """Figure 4(b): one-port relative performance vs platform density."""
    parameters = parameters or PaperParameters()
    if records is None:
        records = random_ensemble_records(
            parameters,
            progress=progress,
            jobs=jobs,
            cache_dir=cache_dir,
            keep_going=keep_going,
            retry_policy=retry_policy,
            failures=failures,
        )
    # Group by the *requested* density bucket rather than the achieved
    # density (which varies slightly per instance): round to the grid.
    bucketed: list[EvaluationRecord] = []
    grid = sorted(parameters.densities)
    for record in records:
        closest = min(grid, key=lambda d: abs(d - record.density))
        bucketed.append(
            EvaluationRecord(
                **{
                    **record.__dict__,
                    "density": closest,
                }
            )
        )
    return _aggregate(
        bucketed,
        figure_id="4b",
        title=(
            "Figure 4(b) - one-port model, random platforms: relative performance "
            "(heuristic throughput / MTP optimum) vs edge density"
        ),
        model="one-port",
        heuristics=PAPER_ONE_PORT_HEURISTICS,
        x_label="density",
        x_of="density",
    )


def figure_5(
    parameters: PaperParameters | None = None,
    records: Iterable[EvaluationRecord] | None = None,
    *,
    progress: bool = False,
    jobs: int = 1,
    cache_dir: str | None = None,
    keep_going: bool = False,
    retry_policy: "RetryPolicy | None" = None,
    failures: "list[TaskErrorRecord] | None" = None,
) -> FigureData:
    """Figure 5: multi-port relative performance vs number of nodes.

    The reference is still the one-port LP optimum, so ratios above 1 are
    expected for the multi-port-aware heuristics on well-connected
    platforms.
    """
    parameters = parameters or PaperParameters()
    if records is None:
        records = random_ensemble_records(
            parameters,
            progress=progress,
            jobs=jobs,
            cache_dir=cache_dir,
            keep_going=keep_going,
            retry_policy=retry_policy,
            failures=failures,
        )
    return _aggregate(
        records,
        figure_id="5",
        title=(
            "Figure 5 - multi-port model, random platforms: relative performance "
            "(heuristic throughput / one-port MTP optimum) vs number of nodes"
        ),
        model="multi-port",
        heuristics=PAPER_MULTI_PORT_HEURISTICS,
        x_label="nodes",
        x_of="num_nodes",
    )
