"""Communication-graph pruning (``LP-Prune``, Algorithm 6 of the paper).

The LP-based heuristics first solve the steady-state linear program of
Section 4.1 and read, for every edge, the number of message slices
``n_{u,v}`` crossing it per time unit in the optimal multi-tree solution.
The platform graph weighted by ``n_{u,v}`` is called the *communication
graph*: it tells which edges the optimal solution finds useful and how
useful they are.

``LP-Prune`` prunes the communication graph down to a spanning tree by
repeatedly deleting the edge carrying the *fewest* messages whose removal
keeps every node reachable from the source.  (The printed pseudo-code sorts
edges "by non-increasing value of ``n_{u,v}``" before scanning, which would
remove the busiest edges first and contradicts both the surrounding text —
"we delete the edges which ... have minimum weight, i.e. edges carrying the
fewest messages" — and the very purpose of the heuristic; we follow the
text.)
"""

from __future__ import annotations

from typing import Any

from ..collectives import CollectiveSpec
from ..exceptions import HeuristicError
from ..kernels.spanning import SpanningOracle
from ..lp.solution import SteadyStateSolution
from ..lp.solver import solve_collective_lp, solve_steady_state_lp
from ..models.port_models import PortModel
from ..platform.graph import Platform
from ..utils.graph_utils import (
    adjacency_from_edges,
    edge_removal_keeps_spanning,
    sort_edges_by_weight,
)
from .base import TreeHeuristic
from .tree import BroadcastTree

__all__ = ["LPCommunicationGraphPruning"]

NodeName = Any
Edge = tuple[NodeName, NodeName]


class LPCommunicationGraphPruning(TreeHeuristic):
    """``LP-PRUNE`` — prune the LP communication graph, least-used edges first.

    Parameters
    ----------
    fast:
        Answer the per-candidate reachability question through the
        integer-indexed :class:`~repro.kernels.spanning.SpanningOracle`
        (the default) instead of the name-keyed set traversal; the removal
        sequence is identical (it is the same question, sorted once).
    """

    name = "lp-prune"
    paper_label = "LP Prune"
    uses_lp_solution = True

    def __init__(self, fast: bool = True) -> None:
        self.fast = fast

    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        lp_solution: SteadyStateSolution | None = None,
        targets: tuple[NodeName, ...] | None = None,
        **kwargs: Any,
    ) -> BroadcastTree:
        if kwargs:
            raise HeuristicError(f"unexpected options for {self.name!r}: {sorted(kwargs)}")
        if lp_solution is None:
            # build() pre-solves the LP of the actual spec (scatter specs get
            # the distinct-message program); this fallback only serves direct
            # _build calls, where multicast is the best available guess.
            if targets is None:
                lp_solution = solve_steady_state_lp(platform, source, size)
            else:
                lp_solution = solve_collective_lp(
                    platform, CollectiveSpec.multicast(source, targets), size
                )
        elif lp_solution.source != source:
            raise HeuristicError(
                f"the provided LP solution was computed for source "
                f"{lp_solution.source!r}, not {source!r}"
            )
        if self.fast:
            return self._build_fast(platform, source, size, lp_solution, targets)

        nodes = platform.nodes
        required = list(nodes) if targets is None else list(targets)
        target_edges = len(nodes) - 1 if targets is None else 0
        messages: dict[Edge, float] = {
            edge: lp_solution.edge_weight(*edge) for edge in platform.edges
        }
        remaining: set[Edge] = set(messages)
        adjacency = adjacency_from_edges(nodes, remaining)

        while len(remaining) > target_edges:
            removed_this_pass = 0
            # Least-used edges first (ascending n_{u,v}).
            for edge in sort_edges_by_weight(remaining, messages, descending=False):
                if len(remaining) <= target_edges:
                    break
                if edge_removal_keeps_spanning(source, required, adjacency, edge):
                    remaining.discard(edge)
                    adjacency[edge[0]].discard(edge[1])
                    removed_this_pass += 1
            if removed_this_pass == 0:
                if targets is not None:
                    break  # minimal Steiner edge set reached
                raise HeuristicError(
                    "LP-Prune is stuck: no edge can be removed while keeping the "
                    "platform broadcast-feasible"
                )

        return BroadcastTree.from_edges(
            platform, source, remaining, name=self.name, targets=targets
        )

    def _build_fast(
        self,
        platform: Platform,
        source: NodeName,
        size: float | None,
        lp_solution: SteadyStateSolution,
        targets: tuple[NodeName, ...] | None = None,
    ) -> BroadcastTree:
        """Oracle-backed pruning; same removal sequence as the loop above."""
        view = platform.compiled(size)
        target_edges = view.num_nodes - 1 if targets is None else 0
        oracle = SpanningOracle(
            view,
            view.index_of(source),
            None if targets is None else [view.index_of(t) for t in targets],
        )
        edges = view.edge_list
        # Candidate order is fixed once: ascending (n_{u,v}, str(edge)), the
        # exact key of sort_edges_by_weight; each while-pass of the reference
        # re-sorts the same weights, so a filtered re-scan is identical.
        order = sorted(
            range(view.num_edges),
            key=lambda e: (lp_solution.edge_weight(*edges[e]), str(edges[e])),
        )

        alive = view.num_edges
        while alive > target_edges:
            removed_this_pass = 0
            for edge_id in order:
                if alive <= target_edges:
                    break
                if not oracle.is_alive(edge_id):
                    continue
                if oracle.keeps_spanning(edge_id):
                    oracle.remove(edge_id)
                    alive -= 1
                    removed_this_pass += 1
            if removed_this_pass == 0:
                if targets is not None:
                    break  # minimal Steiner edge set reached
                raise HeuristicError(
                    "LP-Prune is stuck: no edge can be removed while keeping the "
                    "platform broadcast-feasible"
                )

        remaining = [edges[e] for e in oracle.alive_edge_ids()]
        return BroadcastTree.from_edges(
            platform, source, remaining, name=self.name, targets=targets
        )
