"""Multi-port growing tree (Algorithm 5 of the paper).

Same greedy growth as
:class:`~repro.core.grow_tree.GrowingMinimumOutDegreeTree`, but the cost of
adopting a new child reflects the multi-port steady-state period of the
sender (Section 3.2): a node ``u`` with children ``v_1..v_k`` forwards one
slice to each child every

``T_period(u) = max(k * send_u, max_i T_{u,v_i})``

time units, because the per-send overheads ``send_u`` are serialised while
the link occupations overlap.  The candidate edge minimising the resulting
period of its sender is added at every step.

The printed pseudo-code of Algorithm 5 updates ``cost(u, v)`` (the edge just
added) instead of ``cost(u, w)`` (the remaining candidates) — an obvious
typo; we compute the intended quantity, i.e. the period ``u`` would have
*after* adopting the candidate child.
"""

from __future__ import annotations

from typing import Any

from ..exceptions import HeuristicError
from ..kernels.frontier import LazyFrontier
from ..models.port_models import MultiPortModel, PortModel, PortModelKind
from ..platform.graph import Platform
from .base import TreeHeuristic
from .tree import BroadcastTree, steiner_prune

__all__ = ["MultiPortGrowingTree"]

NodeName = Any
Edge = tuple[NodeName, NodeName]


class MultiPortGrowingTree(TreeHeuristic):
    """``MULTIPORT-GROWING-MINIMUM-WEIGHTED-OUT-DEGREE-TREE``.

    Parameters
    ----------
    fast:
        Select the best frontier edge through a lazy min-heap keyed on the
        candidate period (the default) instead of rescanning every platform
        edge per iteration.  A node's candidate period only grows as it
        adopts children, which is exactly the monotonicity the lazy heap
        needs; both paths pick the same edges in the same order.
    """

    name = "multiport-grow-tree"
    paper_label = "Multi Port Grow Tree"
    supported_models = (PortModelKind.MULTI_PORT,)

    def __init__(self, fast: bool = True) -> None:
        self.fast = fast

    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        targets: tuple[NodeName, ...] | None = None,
        **kwargs: Any,
    ) -> BroadcastTree:
        if kwargs:
            raise HeuristicError(f"unexpected options for {self.name!r}: {sorted(kwargs)}")
        if not isinstance(model, MultiPortModel):
            # ``strict_model=False`` callers still need a multi-port view of
            # the platform to evaluate the node periods.
            model = MultiPortModel()

        weights: dict[Edge, float] = model.edge_weight_map(platform, size)
        send_time: dict[NodeName, float] = model.node_send_times(platform, size)

        in_tree: set[NodeName] = {source}
        children: dict[NodeName, list[NodeName]] = {node: [] for node in platform.nodes}
        tree_edges: list[Edge] = []
        needed = (
            set(platform.nodes) if targets is None else set(targets)
        ) - in_tree

        frontier: LazyFrontier | None = None
        if self.fast:
            out_edges_of = platform.compiled(size).out_edges_by_node
            frontier = LazyFrontier(
                lambda edge: self._candidate_period(weights, send_time, children, edge)
            )
            frontier.push_all(out_edges_of[source])

        while needed:
            if frontier is not None:
                best_edge = frontier.pop_best(in_tree)
            else:
                best_edge = self._best_candidate(weights, send_time, children, in_tree)
            if best_edge is None:
                raise HeuristicError(
                    "multi-port growing tree is stuck: no edge leaves the current tree"
                )
            u, v = best_edge
            tree_edges.append(best_edge)
            children[u].append(v)
            in_tree.add(v)
            needed.discard(v)
            if frontier is not None:
                frontier.push_all(out_edges_of[v])

        if targets is not None:
            parents = steiner_prune({v: u for u, v in tree_edges}, source, targets)
            tree_edges = [(u, v) for v, u in parents.items()]
        return BroadcastTree.from_edges(
            platform, source, tree_edges, name=self.name, targets=targets
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _candidate_period(
        weights: dict[Edge, float],
        send_time: dict[NodeName, float],
        children: dict[NodeName, list[NodeName]],
        edge: Edge,
    ) -> float:
        """Period of ``edge``'s sender after adopting the candidate child."""
        u, v = edge
        current_children = children[u]
        longest_link = max(
            (weights[(u, child)] for child in current_children), default=0.0
        )
        longest_link = max(longest_link, weights[edge])
        serialized_sends = (len(current_children) + 1) * send_time.get(u, 0.0)
        return max(serialized_sends, longest_link)

    @classmethod
    def _best_candidate(
        cls,
        weights: dict[Edge, float],
        send_time: dict[NodeName, float],
        children: dict[NodeName, list[NodeName]],
        in_tree: set[NodeName],
    ) -> Edge | None:
        """Frontier edge minimising the resulting sender period."""
        best: Edge | None = None
        best_key: tuple[float, str] | None = None
        for edge in weights:
            u, v = edge
            if u in in_tree and v not in in_tree:
                key = (cls._candidate_period(weights, send_time, children, edge), str(edge))
                if best_key is None or key < best_key:
                    best, best_key = edge, key
        return best
