"""Common interface of the broadcast-tree heuristics.

Every heuristic of Sections 3 and 4 of the paper is implemented as a
subclass of :class:`TreeHeuristic` exposing a single
:meth:`TreeHeuristic.build` method that takes a platform and a source node
and returns a :class:`~repro.core.tree.BroadcastTree`.  Heuristics are
stateless; per-call tuning knobs are constructor parameters, so a configured
heuristic instance can be reused across platforms (as the experiment runner
does).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from ..collectives import CollectiveSpec
from ..exceptions import HeuristicError
from ..models.port_models import PortModel, PortModelKind, get_port_model
from ..platform.graph import Platform
from .tree import BroadcastTree

__all__ = ["TreeHeuristic", "HeuristicResult"]

NodeName = Any


@dataclass(frozen=True)
class HeuristicResult:
    """A built tree together with provenance metadata.

    The experiment runner stores these so that reports can show which
    heuristic (and which configuration of it) produced which tree.
    """

    tree: BroadcastTree
    heuristic_name: str
    model_name: str
    parameters: dict[str, Any]


class TreeHeuristic(ABC):
    """Base class of all broadcast-tree heuristics.

    Class attributes
    ----------------
    name:
        Canonical registry name (e.g. ``"grow-tree"``).
    paper_label:
        The label used in the paper's figures (e.g. ``"Grow Tree"``).
    supported_models:
        Port-model kinds the heuristic is designed for; calling it with an
        unsupported model raises :class:`~repro.exceptions.HeuristicError`
        unless ``strict_model=False`` is passed to :meth:`build`.
    """

    name: str = "abstract"
    paper_label: str = "Abstract"
    supported_models: tuple[PortModelKind, ...] = (
        PortModelKind.ONE_PORT,
        PortModelKind.MULTI_PORT,
    )
    #: Whether :meth:`_build` consumes an ``lp_solution`` keyword (the
    #: LP-guided heuristics).  When a collective spec is passed to
    #: :meth:`build` and no solution was supplied, the base class solves the
    #: LP *of that spec* up front so scatter trees are guided by the
    #: distinct-message optimum, not a multicast surrogate.
    uses_lp_solution: bool = False

    # ------------------------------------------------------------------ #
    def build(
        self,
        platform: Platform,
        source: NodeName = None,
        *,
        spec: CollectiveSpec | None = None,
        model: PortModel | str | None = None,
        size: float | None = None,
        strict_model: bool = True,
        **kwargs: Any,
    ) -> BroadcastTree:
        """Build a broadcast (or collective) tree rooted at ``source``.

        Parameters
        ----------
        platform:
            The platform graph; every node (or, with a spec, every target)
            must be reachable from the source.
        source:
            Root of the broadcast.  May be omitted when ``spec`` carries it.
        spec:
            Optional :class:`~repro.collectives.CollectiveSpec` for the
            forward collective kinds.  A multicast / scatter spec relaxes
            the coverage requirement to its target set: growth stops once
            every target is adopted and non-target leaves are Steiner-pruned,
            yielding a partial (Steiner) tree.  Reduce / gather specs are
            rejected here — use
            :func:`~repro.core.registry.build_collective_tree`, which solves
            the dual on the reversed platform.
        model:
            Port model (instance, name or ``None`` for one-port); used by
            the model-aware heuristics and recorded on the result.
        size:
            Message-slice size used to evaluate edge weights; defaults to
            the platform's slice size.
        strict_model:
            When true (default), building with a model outside
            :attr:`supported_models` raises.
        kwargs:
            Heuristic-specific extras (e.g. a precomputed LP solution for
            the LP-based heuristics).
        """
        port_model = get_port_model(model)
        if strict_model and port_model.kind not in self.supported_models:
            raise HeuristicError(
                f"heuristic {self.name!r} does not support the {port_model.name} model; "
                f"supported: {[kind.value for kind in self.supported_models]}"
            )
        if spec is not None:
            if spec.is_reversed:
                raise HeuristicError(
                    f"heuristics build forward trees only; solve the "
                    f"{spec.kind.value!r} spec through build_collective_tree, "
                    "which reverses the platform first"
                )
            if source is None:
                source = spec.source
            elif source != spec.source:
                raise HeuristicError(
                    f"source {source!r} conflicts with the spec source {spec.source!r}"
                )
        if not platform.has_node(source):
            raise HeuristicError(f"source {source!r} is not a node of the platform")
        if spec is not None:
            spec.validate(platform)
            targets = spec.resolve_targets(platform)
            platform.require_targets_reachable(
                source, targets, operation=f"a {spec.kind.value} tree"
            )
            kwargs["targets"] = tuple(targets)
            if self.uses_lp_solution and kwargs.get("lp_solution") is None:
                from ..lp.solver import solve_collective_lp  # local: avoid cycle

                kwargs["lp_solution"] = solve_collective_lp(platform, spec, size)
        else:
            platform.require_broadcast_feasible(source)
        tree = self._build(platform, source, port_model, size, **kwargs)
        tree.name = self.name
        return tree

    def __call__(self, platform: Platform, source: NodeName, **kwargs: Any) -> BroadcastTree:
        """Alias for :meth:`build`."""
        return self.build(platform, source, **kwargs)

    # ------------------------------------------------------------------ #
    @abstractmethod
    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        **kwargs: Any,
    ) -> BroadcastTree:
        """Heuristic-specific construction (inputs are already validated)."""

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-line description used by reports."""
        return f"{self.paper_label} ({self.name})"

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
