"""Refined platform pruning (Algorithm 2 of the paper).

The refinement over :class:`~repro.core.prune_simple.SimplePlatformPruning`
is the pruning criterion: what limits the pipelined throughput of a node is
its *weighted out-degree* (the sum of the transfer times of its remaining
outgoing edges), not the weight of any single edge.  The heuristic therefore
repeatedly picks the node with the largest weighted out-degree and removes
its heaviest removable outgoing edge, until ``p - 1`` edges remain.

The same idea transfers to the multi-port model by replacing the weighted
out-degree with the multi-port node period
``max(k * send_u, max_i T_{u,v_i})``; this is the ``Multiport-Prune-Degree``
variant shown in Figure 5 of the paper and implemented in
:mod:`repro.core.multiport_prune`.
"""

from __future__ import annotations

from typing import Any

from ..exceptions import HeuristicError
from ..kernels.spanning import SpanningOracle, heaviest_first_candidates
from ..models.port_models import PortModel
from ..platform.graph import Platform
from ..utils.graph_utils import adjacency_from_edges, edge_removal_keeps_spanning
from .base import TreeHeuristic
from .tree import BroadcastTree

__all__ = ["RefinedPlatformPruning"]

NodeName = Any
Edge = tuple[NodeName, NodeName]


class RefinedPlatformPruning(TreeHeuristic):
    """``REFINED-PLATFORM-PRUNING`` — prune the busiest node's heaviest edge.

    Parameters
    ----------
    fast:
        Run the integer-indexed implementation (the default): weighted
        out-degrees live in a maintained per-node array, per-node candidate
        orders are sorted once instead of per removal, and reachability is
        answered by the :class:`~repro.kernels.spanning.SpanningOracle`.
        The scan order and removal sequence are identical to the reference
        loops, which are kept for the equivalence tests.
    """

    name = "prune-degree"
    paper_label = "Prune Platform Degree"

    def __init__(self, fast: bool = True) -> None:
        self.fast = fast

    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        targets: tuple[NodeName, ...] | None = None,
        **kwargs: Any,
    ) -> BroadcastTree:
        if kwargs:
            raise HeuristicError(f"unexpected options for {self.name!r}: {sorted(kwargs)}")
        if self.fast and type(model).edge_weight is PortModel.edge_weight:
            return self._build_fast(platform, source, size, targets)
        nodes = platform.nodes
        required = list(nodes) if targets is None else list(targets)
        target_edges = len(nodes) - 1 if targets is None else 0
        weights: dict[Edge, float] = model.edge_weight_map(platform, size)
        out_edges_of = platform.compiled(size).out_edges_by_node
        remaining: set[Edge] = set(weights)
        adjacency = adjacency_from_edges(nodes, remaining)
        out_degree: dict[NodeName, float] = {node: 0.0 for node in nodes}
        for (u, _v), weight in weights.items():
            out_degree[u] += weight

        while len(remaining) > target_edges:
            removed = self._remove_one_edge(
                source, nodes, remaining, adjacency, weights, out_degree, out_edges_of,
                required,
            )
            if removed is None:
                if targets is not None:
                    break  # minimal Steiner edge set reached
                raise HeuristicError(
                    "refined platform pruning is stuck: no edge can be removed while "
                    "keeping the platform broadcast-feasible"
                )

        return BroadcastTree.from_edges(
            platform, source, remaining, name=self.name, targets=targets
        )

    def _build_fast(
        self,
        platform: Platform,
        source: NodeName,
        size: float | None,
        targets: tuple[NodeName, ...] | None = None,
    ) -> BroadcastTree:
        """Array-backed Algorithm 2; same removal sequence as the reference.

        Only valid for models using the plain transfer time as edge weight
        (both canonical models do); others take the dict-based loop above.
        """
        view = platform.compiled(size)
        num_nodes = view.num_nodes
        target_edges = num_nodes - 1 if targets is None else 0
        edges = view.edge_list
        weights = view.transfer_times
        oracle = SpanningOracle(
            view,
            view.index_of(source),
            None if targets is None else [view.index_of(t) for t in targets],
        )

        # Maintained per-node weighted out-degree array (same accumulation
        # order as the reference's dict fill: edge insertion order).
        out_degree = view.weighted_out_degrees.copy()
        node_keys = [str(name) for name in view.node_names]
        # Per-node candidate edges by non-increasing (weight, str(edge)),
        # sorted once — the weights never change, only edge liveness does.
        candidates = heaviest_first_candidates(view, weights.tolist())

        alive = view.num_edges
        while alive > target_edges:
            order = sorted(
                range(num_nodes),
                key=lambda i: (float(out_degree[i]), node_keys[i]),
                reverse=True,
            )
            removed = False
            for node in order:
                for edge_id in candidates[node]:
                    if not oracle.is_alive(edge_id):
                        continue
                    if oracle.keeps_spanning(edge_id):
                        oracle.remove(edge_id)
                        out_degree[node] -= weights[edge_id]
                        alive -= 1
                        removed = True
                        break
                if removed:
                    break
            if not removed:
                if targets is not None:
                    break  # minimal Steiner edge set reached
                raise HeuristicError(
                    "refined platform pruning is stuck: no edge can be removed while "
                    "keeping the platform broadcast-feasible"
                )

        remaining = [edges[e] for e in oracle.alive_edge_ids()]
        return BroadcastTree.from_edges(
            platform, source, remaining, name=self.name, targets=targets
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _remove_one_edge(
        source: NodeName,
        nodes: list[NodeName],
        remaining: set[Edge],
        adjacency: dict[NodeName, set[NodeName]],
        weights: dict[Edge, float],
        out_degree: dict[NodeName, float],
        out_edges_of: dict[NodeName, list[Edge]],
        required: list[NodeName] | None = None,
    ) -> Edge | None:
        """One iteration of the outer loop of Algorithm 2.

        Nodes are scanned by non-increasing weighted out-degree; for each
        node its remaining outgoing edges are scanned by non-increasing
        weight; the first edge whose removal keeps every ``required`` node
        (every node, for broadcast) reachable from the source is removed and
        returned.  ``None`` means no edge of any node can be removed.
        """
        if required is None:
            required = nodes
        sorted_nodes = sorted(
            nodes, key=lambda node: (out_degree[node], str(node)), reverse=True
        )
        for node in sorted_nodes:
            out_edges = sorted(
                (edge for edge in out_edges_of[node] if edge in remaining),
                key=lambda edge: (weights[edge], str(edge)),
                reverse=True,
            )
            for edge in out_edges:
                if edge_removal_keeps_spanning(source, required, adjacency, edge):
                    remaining.discard(edge)
                    adjacency[edge[0]].discard(edge[1])
                    out_degree[node] -= weights[edge]
                    return edge
        return None
