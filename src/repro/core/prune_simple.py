"""Simple platform pruning (Algorithm 1 of the paper).

Start from the full platform graph and repeatedly delete the heaviest edge
(largest per-slice transfer time ``T_{u,v}``) whose removal keeps every node
reachable from the source, until exactly ``p - 1`` edges remain.  The
surviving edges necessarily form a spanning arborescence rooted at the
source (every non-source node keeps exactly one incoming edge).

The paper's Figure 4 shows this heuristic behaves well on small platforms
but collapses (down to ~20 % of the optimum) on larger ones, because the
maximum edge weight is a poor proxy for the real bottleneck, the weighted
out-degree of a node.
"""

from __future__ import annotations

from typing import Any

from ..exceptions import HeuristicError
from ..models.port_models import PortModel
from ..platform.graph import Platform
from ..utils.graph_utils import (
    adjacency_from_edges,
    edge_removal_keeps_spanning,
    sort_edges_by_weight,
)
from .base import TreeHeuristic
from .tree import BroadcastTree

__all__ = ["SimplePlatformPruning"]

NodeName = Any


class SimplePlatformPruning(TreeHeuristic):
    """``SIMPLE-PLATFORM-PRUNING`` — delete heaviest removable edges first."""

    name = "prune-simple"
    paper_label = "Prune Platform Simple"

    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        targets: tuple[NodeName, ...] | None = None,
        **kwargs: Any,
    ) -> BroadcastTree:
        if kwargs:
            raise HeuristicError(f"unexpected options for {self.name!r}: {sorted(kwargs)}")
        nodes = platform.nodes
        weights = model.edge_weight_map(platform, size)
        remaining = set(weights)
        adjacency = adjacency_from_edges(nodes, remaining)

        # Broadcast keeps every node reachable and stops at the spanning
        # edge count; a collective target set only protects the targets and
        # prunes until no edge is removable (the survivors then form a
        # Steiner arborescence over source, targets and the kept relays).
        required = list(nodes) if targets is None else list(targets)
        target_edges = len(nodes) - 1 if targets is None else 0

        while len(remaining) > target_edges:
            removed_this_pass = 0
            for edge in sort_edges_by_weight(remaining, weights, descending=True):
                if len(remaining) <= target_edges:
                    break
                if edge_removal_keeps_spanning(source, required, adjacency, edge):
                    remaining.discard(edge)
                    adjacency[edge[0]].discard(edge[1])
                    removed_this_pass += 1
            if removed_this_pass == 0:
                if targets is not None:
                    break  # minimal Steiner edge set reached
                raise HeuristicError(
                    "simple platform pruning is stuck: no edge can be removed while "
                    "keeping the platform broadcast-feasible (this should be impossible "
                    "on a feasible platform)"
                )

        return BroadcastTree.from_edges(
            platform, source, remaining, name=self.name, targets=targets
        )
