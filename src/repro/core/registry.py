"""Registry of the broadcast-tree heuristics.

The registry maps stable string names to heuristic factories so that the
experiment harness, the benchmarks and the examples can all select
heuristics by name (e.g. from a configuration file or a CLI flag).  The
default registry contains every heuristic of the paper; users can register
their own implementations with :func:`register_heuristic`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..collectives import CollectiveSpec, effective_problem
from ..exceptions import UnknownHeuristicError
from ..models.port_models import PortModel
from ..platform.graph import Platform
from .base import TreeHeuristic
from .binomial import BinomialTreeHeuristic
from .grow_tree import GrowingMinimumOutDegreeTree
from .local_search import LocalSearchImprovement
from .lp_grow import LPGrowTree
from .lp_prune import LPCommunicationGraphPruning
from .multiport_grow import MultiPortGrowingTree
from .multiport_prune import MultiPortRefinedPruning
from .prune_refined import RefinedPlatformPruning
from .prune_simple import SimplePlatformPruning
from .tree import BroadcastTree

__all__ = [
    "HEURISTICS",
    "PAPER_ONE_PORT_HEURISTICS",
    "PAPER_MULTI_PORT_HEURISTICS",
    "register_heuristic",
    "get_heuristic",
    "available_heuristics",
    "build_broadcast_tree",
    "build_collective_tree",
    "heuristics_for_names",
]

HeuristicFactory = Callable[[], TreeHeuristic]

#: Default factories, keyed by canonical heuristic name.
HEURISTICS: dict[str, HeuristicFactory] = {
    SimplePlatformPruning.name: SimplePlatformPruning,
    RefinedPlatformPruning.name: RefinedPlatformPruning,
    GrowingMinimumOutDegreeTree.name: GrowingMinimumOutDegreeTree,
    BinomialTreeHeuristic.name: BinomialTreeHeuristic,
    MultiPortGrowingTree.name: MultiPortGrowingTree,
    MultiPortRefinedPruning.name: MultiPortRefinedPruning,
    LPCommunicationGraphPruning.name: LPCommunicationGraphPruning,
    LPGrowTree.name: LPGrowTree,
    "grow-tree+local-search": lambda: LocalSearchImprovement(GrowingMinimumOutDegreeTree()),
    "prune-degree+local-search": lambda: LocalSearchImprovement(RefinedPlatformPruning()),
    "binomial+local-search": lambda: LocalSearchImprovement(BinomialTreeHeuristic()),
}

#: The six heuristics compared in Figure 4 and Table 3 (one-port model).
PAPER_ONE_PORT_HEURISTICS: tuple[str, ...] = (
    "prune-simple",
    "prune-degree",
    "grow-tree",
    "lp-grow-tree",
    "lp-prune",
    "binomial",
)

#: The five heuristics compared in Figure 5 (multi-port model).
PAPER_MULTI_PORT_HEURISTICS: tuple[str, ...] = (
    "multiport-prune-degree",
    "multiport-grow-tree",
    "lp-grow-tree",
    "lp-prune",
    "binomial",
)


def register_heuristic(
    name: str, factory: HeuristicFactory, *, overwrite: bool = False
) -> None:
    """Register a custom heuristic factory under ``name``."""
    if name in HEURISTICS and not overwrite:
        raise ValueError(
            f"heuristic {name!r} is already registered; pass overwrite=True to replace it"
        )
    HEURISTICS[name] = factory


def available_heuristics() -> list[str]:
    """Sorted list of registered heuristic names."""
    return sorted(HEURISTICS)


def get_heuristic(name: str | TreeHeuristic) -> TreeHeuristic:
    """Instantiate a heuristic from its registry name.

    An existing :class:`TreeHeuristic` instance is returned unchanged, which
    lets callers pass either names or pre-configured instances everywhere.
    """
    if isinstance(name, TreeHeuristic):
        return name
    try:
        factory = HEURISTICS[name]
    except KeyError:
        raise UnknownHeuristicError(
            f"unknown heuristic {name!r}; available: {available_heuristics()}"
        ) from None
    return factory()


def build_broadcast_tree(
    platform: Platform,
    source: Any,
    heuristic: str | TreeHeuristic = "grow-tree",
    *,
    model: PortModel | str | None = None,
    size: float | None = None,
    **kwargs: Any,
) -> BroadcastTree:
    """One-call convenience API: build a broadcast tree with a named heuristic.

    Example
    -------
    >>> from repro import generate_random_platform, build_broadcast_tree
    >>> platform = generate_random_platform(num_nodes=12, density=0.3, seed=0)
    >>> tree = build_broadcast_tree(platform, source=0, heuristic="prune-degree")
    >>> tree.num_nodes
    12
    """
    return get_heuristic(heuristic).build(
        platform, source, model=model, size=size, **kwargs
    )


def build_collective_tree(
    platform: Platform,
    spec: CollectiveSpec,
    heuristic: str | TreeHeuristic = "grow-tree",
    *,
    model: PortModel | str | None = None,
    size: float | None = None,
    **kwargs: Any,
) -> BroadcastTree:
    """Build a tree for any :class:`~repro.collectives.CollectiveSpec`.

    Broadcast / multicast / scatter build directly on ``platform`` (multicast
    and scatter as Steiner trees covering the spec's target set).  Reduce and
    gather build the dual forward tree on ``platform.reversed()``: the
    returned tree's :attr:`~BroadcastTree.platform` is the reversed view and
    each tree edge ``u -> v`` means "``v`` sends its (partial) slices to
    ``u``" on the original platform.

    Example
    -------
    >>> from repro import generate_random_platform, build_collective_tree
    >>> from repro.collectives import CollectiveSpec
    >>> platform = generate_random_platform(num_nodes=12, density=0.3, seed=0)
    >>> tree = build_collective_tree(platform, CollectiveSpec.multicast(0, [1, 3, 5]))
    >>> set([1, 3, 5]) <= set(tree.nodes)
    True
    """
    effective_platform, effective_spec = effective_problem(platform, spec)
    if spec.is_reversed and kwargs.get("lp_solution") is not None:
        # solve_collective_lp reports reduce/gather flows on the *original*
        # edge orientation; the heuristic runs on the reversed platform, so
        # flip the guide back before it looks up edge weights.
        from ..lp.solver import _reverse_solution  # local: avoid cycle

        kwargs["lp_solution"] = _reverse_solution(
            kwargs["lp_solution"], effective_spec
        )
    return get_heuristic(heuristic).build(
        effective_platform, spec=effective_spec, model=model, size=size, **kwargs
    )


def heuristics_for_names(names: Iterable[str | TreeHeuristic]) -> list[TreeHeuristic]:
    """Instantiate several heuristics, preserving order."""
    return [get_heuristic(name) for name in names]
