"""Growing a tree over the communication graph (``LP-Grow-Tree``, Algorithm 7).

Like :class:`~repro.core.lp_prune.LPCommunicationGraphPruning`, this
heuristic starts from the solution of the steady-state linear program of
Section 4.1, which assigns to every edge the number of message slices
``n_{u,v}`` it carries per time unit in the optimal multi-tree broadcast.

``LP-Grow-Tree`` then grows a spanning tree from the source, greedily adding
at every step the frontier edge (from a covered node to an uncovered one)
carrying the *most* messages in the LP solution — i.e. the edge the optimal
solution relies on the most.
"""

from __future__ import annotations

from typing import Any

from ..collectives import CollectiveSpec
from ..exceptions import HeuristicError
from ..lp.solution import SteadyStateSolution
from ..lp.solver import solve_collective_lp, solve_steady_state_lp
from ..models.port_models import PortModel
from ..platform.graph import Platform
from .base import TreeHeuristic
from .tree import BroadcastTree, steiner_prune

__all__ = ["LPGrowTree"]

NodeName = Any
Edge = tuple[NodeName, NodeName]


class LPGrowTree(TreeHeuristic):
    """``LP-GROW-TREE`` — grow a tree along the most-used LP edges."""

    name = "lp-grow-tree"
    paper_label = "LP Grow Tree"
    uses_lp_solution = True

    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        lp_solution: SteadyStateSolution | None = None,
        targets: tuple[NodeName, ...] | None = None,
        **kwargs: Any,
    ) -> BroadcastTree:
        if kwargs:
            raise HeuristicError(f"unexpected options for {self.name!r}: {sorted(kwargs)}")
        if lp_solution is None:
            # build() pre-solves the LP of the actual spec (scatter specs get
            # the distinct-message program); this fallback only serves direct
            # _build calls, where multicast is the best available guess.
            if targets is None:
                lp_solution = solve_steady_state_lp(platform, source, size)
            else:
                lp_solution = solve_collective_lp(
                    platform, CollectiveSpec.multicast(source, targets), size
                )
        elif lp_solution.source != source:
            raise HeuristicError(
                f"the provided LP solution was computed for source "
                f"{lp_solution.source!r}, not {source!r}"
            )

        messages: dict[Edge, float] = {
            edge: lp_solution.edge_weight(*edge) for edge in platform.edges
        }

        in_tree: set[NodeName] = {source}
        tree_edges: list[Edge] = []
        needed = (
            set(platform.nodes) if targets is None else set(targets)
        ) - in_tree

        while needed:
            best: Edge | None = None
            best_key: tuple[float, str] | None = None
            for edge, weight in messages.items():
                u, v = edge
                if u in in_tree and v not in in_tree:
                    # Maximise n_{u,v}; deterministic tie-break on the edge.
                    key = (-weight, str(edge))
                    if best_key is None or key < best_key:
                        best, best_key = edge, key
            if best is None:
                raise HeuristicError(
                    "LP-Grow-Tree is stuck: no edge leaves the current tree, yet some "
                    "nodes are not covered"
                )
            tree_edges.append(best)
            in_tree.add(best[1])
            needed.discard(best[1])

        if targets is not None:
            parents = steiner_prune({v: u for u, v in tree_edges}, source, targets)
            tree_edges = [(u, v) for v, u in parents.items()]
        return BroadcastTree.from_edges(
            platform, source, tree_edges, name=self.name, targets=targets
        )
