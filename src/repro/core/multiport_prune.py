"""Multi-port refined pruning (``Multiport-Prune-Degree`` of Figure 5).

Section 5.2.2 of the paper notes that "other heuristics, such as
Topo-Prune-Degree, can be adapted to the multi-port model, and give good
results too"; the corresponding curve in Figure 5 is labelled
``Multi Port Prune Degree``.  The adaptation mirrors
:class:`~repro.core.prune_refined.RefinedPlatformPruning` with the node
metric replaced by the multi-port steady-state period

``period(u) = max(deg_out(u) * send_u, max_v T_{u,v})``

evaluated on the *remaining* outgoing edges of ``u``.  The heuristic
repeatedly removes, from the node with the largest period, the outgoing edge
whose removal decreases that period the most while keeping every node
reachable from the source.
"""

from __future__ import annotations

from typing import Any

from ..exceptions import HeuristicError
from ..models.port_models import MultiPortModel, PortModel, PortModelKind
from ..platform.graph import Platform
from ..utils.graph_utils import adjacency_from_edges, edge_removal_keeps_spanning
from .base import TreeHeuristic
from .tree import BroadcastTree

__all__ = ["MultiPortRefinedPruning"]

NodeName = Any
Edge = tuple[NodeName, NodeName]


class MultiPortRefinedPruning(TreeHeuristic):
    """``MULTIPORT-PRUNE-DEGREE`` — refined pruning under the multi-port metric."""

    name = "multiport-prune-degree"
    paper_label = "Multi Port Prune Degree"
    supported_models = (PortModelKind.MULTI_PORT,)

    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        **kwargs: Any,
    ) -> BroadcastTree:
        if kwargs:
            raise HeuristicError(f"unexpected options for {self.name!r}: {sorted(kwargs)}")
        if not isinstance(model, MultiPortModel):
            model = MultiPortModel()

        nodes = platform.nodes
        target_edges = len(nodes) - 1
        weights: dict[Edge, float] = model.edge_weight_map(platform, size)
        send_time: dict[NodeName, float] = model.node_send_times(platform, size)
        out_edges_of = platform.compiled(size).out_edges_by_node
        remaining: set[Edge] = set(weights)
        adjacency = adjacency_from_edges(nodes, remaining)

        def node_period(node: NodeName) -> float:
            out_edges = [edge for edge in out_edges_of[node] if edge in remaining]
            if not out_edges:
                return 0.0
            return max(
                len(out_edges) * send_time.get(node, 0.0),
                max(weights[edge] for edge in out_edges),
            )

        while len(remaining) > target_edges:
            removed = False
            for node in sorted(nodes, key=lambda n: (node_period(n), str(n)), reverse=True):
                out_edges = sorted(
                    (edge for edge in out_edges_of[node] if edge in remaining),
                    key=lambda edge: (weights[edge], str(edge)),
                    reverse=True,
                )
                for edge in out_edges:
                    if edge_removal_keeps_spanning(source, nodes, adjacency, edge):
                        remaining.discard(edge)
                        adjacency[edge[0]].discard(edge[1])
                        removed = True
                        break
                if removed:
                    break
            if not removed:
                raise HeuristicError(
                    "multi-port refined pruning is stuck: no edge can be removed while "
                    "keeping the platform broadcast-feasible"
                )

        return BroadcastTree.from_edges(platform, source, remaining, name=self.name)
