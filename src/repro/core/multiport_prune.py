"""Multi-port refined pruning (``Multiport-Prune-Degree`` of Figure 5).

Section 5.2.2 of the paper notes that "other heuristics, such as
Topo-Prune-Degree, can be adapted to the multi-port model, and give good
results too"; the corresponding curve in Figure 5 is labelled
``Multi Port Prune Degree``.  The adaptation mirrors
:class:`~repro.core.prune_refined.RefinedPlatformPruning` with the node
metric replaced by the multi-port steady-state period

``period(u) = max(deg_out(u) * send_u, max_v T_{u,v})``

evaluated on the *remaining* outgoing edges of ``u``.  The heuristic
repeatedly removes, from the node with the largest period, the outgoing edge
whose removal decreases that period the most while keeping every node
reachable from the source.
"""

from __future__ import annotations

from typing import Any

from ..exceptions import HeuristicError
from ..kernels.spanning import SpanningOracle, heaviest_first_candidates
from ..models.port_models import MultiPortModel, PortModel, PortModelKind
from ..platform.graph import Platform
from ..utils.graph_utils import adjacency_from_edges, edge_removal_keeps_spanning
from .base import TreeHeuristic
from .tree import BroadcastTree

__all__ = ["MultiPortRefinedPruning"]

NodeName = Any
Edge = tuple[NodeName, NodeName]


class MultiPortRefinedPruning(TreeHeuristic):
    """``MULTIPORT-PRUNE-DEGREE`` — refined pruning under the multi-port metric.

    Parameters
    ----------
    fast:
        Answer reachability through the integer-indexed
        :class:`~repro.kernels.spanning.SpanningOracle` with once-sorted
        per-node candidate orders (the default) instead of the name-keyed
        set traversal; the scan order and removal sequence are identical
        (the equivalence tests assert it).
    """

    name = "multiport-prune-degree"
    paper_label = "Multi Port Prune Degree"
    supported_models = (PortModelKind.MULTI_PORT,)

    def __init__(self, fast: bool = True) -> None:
        self.fast = fast

    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        targets: tuple[NodeName, ...] | None = None,
        **kwargs: Any,
    ) -> BroadcastTree:
        if kwargs:
            raise HeuristicError(f"unexpected options for {self.name!r}: {sorted(kwargs)}")
        if not isinstance(model, MultiPortModel):
            model = MultiPortModel()
        if self.fast:
            return self._build_fast(platform, source, model, size, targets)

        nodes = platform.nodes
        required = list(nodes) if targets is None else list(targets)
        target_edges = len(nodes) - 1 if targets is None else 0
        weights: dict[Edge, float] = model.edge_weight_map(platform, size)
        send_time: dict[NodeName, float] = model.node_send_times(platform, size)
        out_edges_of = platform.compiled(size).out_edges_by_node
        remaining: set[Edge] = set(weights)
        adjacency = adjacency_from_edges(nodes, remaining)

        def node_period(node: NodeName) -> float:
            out_edges = [edge for edge in out_edges_of[node] if edge in remaining]
            if not out_edges:
                return 0.0
            return max(
                len(out_edges) * send_time.get(node, 0.0),
                max(weights[edge] for edge in out_edges),
            )

        while len(remaining) > target_edges:
            removed = False
            for node in sorted(nodes, key=lambda n: (node_period(n), str(n)), reverse=True):
                out_edges = sorted(
                    (edge for edge in out_edges_of[node] if edge in remaining),
                    key=lambda edge: (weights[edge], str(edge)),
                    reverse=True,
                )
                for edge in out_edges:
                    if edge_removal_keeps_spanning(source, required, adjacency, edge):
                        remaining.discard(edge)
                        adjacency[edge[0]].discard(edge[1])
                        removed = True
                        break
                if removed:
                    break
            if not removed:
                if targets is not None:
                    break  # minimal Steiner edge set reached
                raise HeuristicError(
                    "multi-port refined pruning is stuck: no edge can be removed while "
                    "keeping the platform broadcast-feasible"
                )

        return BroadcastTree.from_edges(
            platform, source, remaining, name=self.name, targets=targets
        )

    def _build_fast(
        self,
        platform: Platform,
        source: NodeName,
        model: MultiPortModel,
        size: float | None,
        targets: tuple[NodeName, ...] | None = None,
    ) -> BroadcastTree:
        """Oracle-backed scan; same removal sequence as the loop above."""
        view = platform.compiled(size)
        num_nodes = view.num_nodes
        target_edges = num_nodes - 1 if targets is None else 0
        edges = view.edge_list
        # Aligned with edge ids; honours edge_weight / node_send_time
        # overrides of subclasses (the canonical model reads both straight
        # off the compiled arrays).
        weight_map = model.edge_weight_map(platform, size)
        weights = [weight_map[edge] for edge in edges]
        send_map = model.node_send_times(platform, size)
        send_times = [send_map.get(name, 0.0) for name in view.node_names]
        oracle = SpanningOracle(
            view,
            view.index_of(source),
            None if targets is None else [view.index_of(t) for t in targets],
        )
        node_keys = [str(name) for name in view.node_names]
        candidates = heaviest_first_candidates(view, weights)

        def node_period(node: int) -> float:
            out_edges = [e for e in candidates[node] if oracle.is_alive(e)]
            if not out_edges:
                return 0.0
            return max(
                len(out_edges) * send_times[node],
                max(weights[e] for e in out_edges),
            )

        alive = view.num_edges
        while alive > target_edges:
            removed = False
            order = sorted(
                range(num_nodes), key=lambda i: (node_period(i), node_keys[i]), reverse=True
            )
            for node in order:
                for edge_id in candidates[node]:
                    if not oracle.is_alive(edge_id):
                        continue
                    if oracle.keeps_spanning(edge_id):
                        oracle.remove(edge_id)
                        alive -= 1
                        removed = True
                        break
                if removed:
                    break
            if not removed:
                if targets is not None:
                    break  # minimal Steiner edge set reached
                raise HeuristicError(
                    "multi-port refined pruning is stuck: no edge can be removed while "
                    "keeping the platform broadcast-feasible"
                )

        remaining = [edges[e] for e in oracle.alive_edge_ids()]
        return BroadcastTree.from_edges(
            platform, source, remaining, name=self.name, targets=targets
        )
