"""The paper's primary contribution: broadcast-tree heuristics for the STP problem."""

from .base import HeuristicResult, TreeHeuristic
from .binomial import BinomialTreeHeuristic
from .grow_tree import GrowingMinimumOutDegreeTree
from .local_search import LocalSearchImprovement, improve_tree
from .lp_grow import LPGrowTree
from .lp_prune import LPCommunicationGraphPruning
from .multiport_grow import MultiPortGrowingTree
from .multiport_prune import MultiPortRefinedPruning
from .prune_refined import RefinedPlatformPruning
from .prune_simple import SimplePlatformPruning
from .registry import (
    HEURISTICS,
    PAPER_MULTI_PORT_HEURISTICS,
    PAPER_ONE_PORT_HEURISTICS,
    available_heuristics,
    build_broadcast_tree,
    build_collective_tree,
    get_heuristic,
    heuristics_for_names,
    register_heuristic,
)
from .tree import BroadcastTree, Route, steiner_prune

__all__ = [
    "HeuristicResult",
    "TreeHeuristic",
    "BinomialTreeHeuristic",
    "GrowingMinimumOutDegreeTree",
    "LocalSearchImprovement",
    "improve_tree",
    "LPGrowTree",
    "LPCommunicationGraphPruning",
    "MultiPortGrowingTree",
    "MultiPortRefinedPruning",
    "RefinedPlatformPruning",
    "SimplePlatformPruning",
    "HEURISTICS",
    "PAPER_MULTI_PORT_HEURISTICS",
    "PAPER_ONE_PORT_HEURISTICS",
    "available_heuristics",
    "build_broadcast_tree",
    "build_collective_tree",
    "get_heuristic",
    "heuristics_for_names",
    "register_heuristic",
    "BroadcastTree",
    "Route",
    "steiner_prune",
]
