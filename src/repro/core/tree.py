"""Broadcast trees (and, more generally, routed broadcast structures).

A *broadcast tree* is the object every heuristic of the paper produces: a
spanning arborescence of the platform graph rooted at the source processor.
Message slices flow from each node to its children, in a pipelined fashion.

Two refinements are needed to cover the whole paper:

* The **binomial-tree heuristic** (Algorithm 4) builds its tree over
  processor *indices*, ignoring the topology; when the logical edge
  ``(u, v)`` does not exist in the platform the transfer is routed along the
  shortest path from ``u`` to ``v``.  The logical structure is still a tree,
  but each logical edge maps to a *route*, i.e. a list of physical edges,
  and the same physical edge may be used by several logical transfers.
* Throughput analysis and simulation therefore need, for every node, the
  multiset of physical transfers it performs per broadcast period
  (``(peer, T, multiplicity)`` triples), not only its logical children.

:class:`BroadcastTree` stores the logical parent structure plus the route of
every logical edge (defaulting to the single direct physical edge) and
derives everything else.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

import networkx as nx

from ..exceptions import NotASpanningTreeError, TreeError
from ..platform.graph import Platform

__all__ = ["BroadcastTree", "Route", "steiner_prune"]

NodeName = Any
Edge = tuple[NodeName, NodeName]
#: A route is the ordered list of physical edges implementing one logical
#: transfer; for normal tree edges it is just ``[(parent, child)]``.
Route = tuple[Edge, ...]

#: Sentinel distinguishing "no parent entry" from legitimate ``None`` names.
_MISSING = object()


def steiner_prune(
    parents: Mapping[NodeName, NodeName],
    source: NodeName,
    targets: Iterable[NodeName],
) -> dict[NodeName, NodeName]:
    """Drop non-target leaves from a parent map, repeatedly.

    The target-aware growing heuristics stop as soon as every target is
    covered, but the nodes adopted along the way that never ended up feeding
    a target are dead weight: they cost their parent one transfer per period
    without serving the collective.  This peels them off until every leaf is
    a target (the source is never removed).
    """
    keep = dict(parents)
    target_set = set(targets)
    child_count: Counter[NodeName] = Counter(keep.values())
    removable = [
        n for n in keep if child_count[n] == 0 and n not in target_set
    ]
    while removable:
        node = removable.pop()
        parent = keep.pop(node)
        child_count[parent] -= 1
        if parent != source and child_count[parent] == 0 and parent not in target_set:
            removable.append(parent)
    return keep


@dataclass
class BroadcastTree:
    """A spanning broadcast structure rooted at ``source``.

    Parameters
    ----------
    platform:
        The platform the tree lives on; all physical edges of every route
        must exist in this platform.
    source:
        The root processor (the node initially holding the data).
    parents:
        Mapping from every non-source node to its logical parent.  Every
        node of the platform except the source must appear exactly once.
    routes:
        Optional mapping from logical edges ``(parent, child)`` to their
        physical route.  Missing entries default to the direct edge
        ``((parent, child),)``, which must then exist in the platform.
    name:
        Optional label (usually the heuristic that produced the tree).
    targets:
        ``None`` (the default) keeps the paper's invariant: the tree must
        span *every* platform node.  A tuple of node names relaxes it to
        Steiner coverage — the tree must cover all the targets, and may
        additionally contain relay nodes, but no other platform node needs a
        parent.  This is what the multicast / scatter heuristics of
        :mod:`repro.collectives` produce; :attr:`nodes` then lists only the
        covered nodes.
    """

    platform: Platform
    source: NodeName
    parents: dict[NodeName, NodeName]
    routes: dict[Edge, Route] = field(default_factory=dict)
    name: str = "broadcast-tree"
    targets: tuple[NodeName, ...] | None = None

    def __post_init__(self) -> None:
        self.parents = dict(self.parents)
        self.routes = {edge: tuple(route) for edge, route in self.routes.items()}
        if self.targets is not None:
            self.targets = tuple(self.targets)
        self._children: dict[NodeName, list[NodeName]] = {}
        self.validate()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        platform: Platform,
        source: NodeName,
        edges: Iterable[Edge],
        *,
        name: str = "broadcast-tree",
        targets: Iterable[NodeName] | None = None,
    ) -> "BroadcastTree":
        """Build a tree from a set of directed edges forming an arborescence.

        This is the natural constructor for the pruning and growing
        heuristics, which all end with exactly ``p - 1`` directed edges such
        that every node is reachable from the source (or, with ``targets``,
        a Steiner arborescence covering the target set).
        """
        parents: dict[NodeName, NodeName] = {}
        for u, v in edges:
            if v in parents:
                raise NotASpanningTreeError(
                    f"node {v!r} has two parents ({parents[v]!r} and {u!r}); "
                    "the edge set is not an arborescence"
                )
            if v == source:
                raise NotASpanningTreeError(
                    f"edge {u!r} -> {v!r} enters the source; not an arborescence"
                )
            parents[v] = u
        return cls(
            platform=platform,
            source=source,
            parents=parents,
            name=name,
            targets=None if targets is None else tuple(targets),
        )

    @classmethod
    def from_logical_transfers(
        cls,
        platform: Platform,
        source: NodeName,
        transfers: Sequence[Edge],
        *,
        name: str = "broadcast-tree",
        targets: Iterable[NodeName] | None = None,
    ) -> "BroadcastTree":
        """Build a routed tree from logical transfers (binomial heuristic).

        ``transfers`` lists logical edges ``(u, v)`` meaning "``u`` forwards
        the message to ``v``"; when the platform does not contain the edge
        ``(u, v)`` the transfer is routed along the shortest path, as
        prescribed by Algorithm 4.
        """
        parents: dict[NodeName, NodeName] = {}
        routes: dict[Edge, Route] = {}
        for u, v in transfers:
            if v in parents:
                raise NotASpanningTreeError(
                    f"node {v!r} receives from both {parents[v]!r} and {u!r}"
                )
            parents[v] = u
            if platform.has_link(u, v):
                routes[(u, v)] = ((u, v),)
            else:
                path = platform.shortest_path(u, v)
                routes[(u, v)] = tuple(zip(path[:-1], path[1:]))
        return cls(
            platform=platform,
            source=source,
            parents=parents,
            routes=routes,
            name=name,
            targets=None if targets is None else tuple(targets),
        )

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check the (spanning or Steiner) arborescence invariants; raise on failure."""
        if not self.platform.has_node(self.source):
            raise TreeError(f"source {self.source!r} is not a node of the platform")
        platform_nodes = set(self.platform.nodes)
        declared = set(self.parents)
        if self.source in declared:
            raise NotASpanningTreeError("the source must not have a parent")
        if self.targets is None:
            expected = platform_nodes - {self.source}
            missing = expected - declared
            if missing:
                raise NotASpanningTreeError(
                    f"nodes {sorted(map(repr, missing))} have no parent; the tree is not spanning"
                )
        else:
            expected = (set(self.targets) & platform_nodes) - {self.source}
            missing = expected - declared
            if missing:
                raise NotASpanningTreeError(
                    f"target nodes {sorted(map(repr, missing))} have no parent; "
                    "the tree does not cover its target set"
                )
        extra = declared - (platform_nodes - {self.source})
        if extra:
            raise NotASpanningTreeError(
                f"parent map mentions unknown nodes {sorted(map(repr, extra))}"
            )

        # Every node must reach the source by following parent pointers
        # (this also rules out cycles and parents outside the tree).
        for node in declared:
            seen = {node}
            current = node
            while current != self.source:
                current = self.parents.get(current, _MISSING)
                if current is _MISSING:
                    raise NotASpanningTreeError(
                        f"parent chain of {node!r} leaves the tree before "
                        "reaching the source"
                    )
                if current in seen:
                    raise NotASpanningTreeError(
                        f"cycle detected in parent pointers around {current!r}"
                    )
                seen.add(current)

        # Routes must be consistent and use existing physical links.
        for child, parent in self.parents.items():
            route = self.routes.get((parent, child), ((parent, child),))
            if not route:
                raise TreeError(f"empty route for logical edge {(parent, child)!r}")
            if route[0][0] != parent or route[-1][1] != child:
                raise TreeError(
                    f"route {route!r} does not go from {parent!r} to {child!r}"
                )
            for (a, b), (c, _d) in zip(route, route[1:]):
                if b != c:
                    raise TreeError(f"route {route!r} is not a contiguous path")
            for a, b in route:
                if not self.platform.has_link(a, b):
                    raise TreeError(
                        f"route of {(parent, child)!r} uses missing platform link {(a, b)!r}"
                    )

        # Cache children lists in a deterministic order.
        children: dict[NodeName, list[NodeName]] = {node: [] for node in platform_nodes}
        for child, parent in self.parents.items():
            children[parent].append(child)
        for node in children:
            children[node].sort(key=str)
        self._children = children

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> list[NodeName]:
        """Nodes covered by the tree, in platform (insertion) order.

        For spanning trees (``targets is None``) this is every platform
        node; for Steiner trees it is the source, the targets and the relay
        nodes the heuristic kept.
        """
        if self.targets is None:
            return self.platform.nodes
        return [
            n for n in self.platform.nodes if n == self.source or n in self.parents
        ]

    @property
    def num_nodes(self) -> int:
        """Number of nodes covered by the tree."""
        if self.targets is None:
            return self.platform.num_nodes
        return len(self.parents) + 1

    @property
    def is_spanning(self) -> bool:
        """Whether the tree covers every platform node."""
        return len(self.parents) + 1 == self.platform.num_nodes

    @property
    def logical_edges(self) -> list[Edge]:
        """Logical edges ``(parent, child)``."""
        return [(parent, child) for child, parent in self.parents.items()]

    def parent(self, node: NodeName) -> NodeName | None:
        """Logical parent of ``node`` (``None`` for the source)."""
        if node == self.source:
            return None
        try:
            return self.parents[node]
        except KeyError as exc:
            raise TreeError(f"unknown node {node!r}") from exc

    def children(self, node: NodeName) -> list[NodeName]:
        """Logical children of ``node`` in deterministic order."""
        try:
            return list(self._children[node])
        except KeyError as exc:
            raise TreeError(f"unknown node {node!r}") from exc

    def route(self, parent: NodeName, child: NodeName) -> Route:
        """Physical route implementing the logical edge ``(parent, child)``."""
        if self.parents.get(child) != parent:
            raise TreeError(f"{(parent, child)!r} is not a logical edge of this tree")
        return self.routes.get((parent, child), ((parent, child),))

    @property
    def is_direct(self) -> bool:
        """True when every logical edge is a single physical edge."""
        return all(len(self.route(p, c)) == 1 for p, c in self.logical_edges)

    def leaves(self) -> list[NodeName]:
        """Nodes without logical children."""
        return [node for node in self.nodes if not self._children[node]]

    def depth(self, node: NodeName) -> int:
        """Number of logical edges between the source and ``node``."""
        depth = 0
        current = node
        while current != self.source:
            current = self.parents[current]
            depth += 1
        return depth

    @property
    def height(self) -> int:
        """Maximum node depth."""
        return max(self.depth(node) for node in self.nodes)

    def bfs_order(self) -> list[NodeName]:
        """Nodes in breadth-first order from the source."""
        order: list[NodeName] = []
        queue: deque[NodeName] = deque([self.source])
        while queue:
            node = queue.popleft()
            order.append(node)
            queue.extend(self.children(node))
        return order

    def subtree_nodes(self, node: NodeName) -> set[NodeName]:
        """All nodes of the subtree rooted at ``node`` (including it)."""
        result: set[NodeName] = set()
        queue: deque[NodeName] = deque([node])
        while queue:
            current = queue.popleft()
            result.add(current)
            queue.extend(self.children(current))
        return result

    # ------------------------------------------------------------------ #
    # Compiled (array-backed) view
    # ------------------------------------------------------------------ #
    def compiled(self, size: float | None = None):
        """Array-backed :class:`~repro.kernels.tree.CompiledTree` of this tree.

        Cached per message size.  The tree's logical structure is immutable
        after validation, so the only invalidation concern is the underlying
        platform: a platform mutation rebuilds its compiled view, which is
        detected here by identity and triggers a recompile.
        """
        from ..kernels.tree import CompiledTree  # local import: avoid cycle

        cache = self.__dict__.setdefault("_compiled_tree_cache", {})
        key = self.platform.slice_size if size is None else float(size)
        entry = cache.get(key)
        if entry is None or entry.view is not self.platform.compiled(size):
            entry = CompiledTree.from_tree(self, size)
            cache[key] = entry
        return entry

    # ------------------------------------------------------------------ #
    # Physical transfer accounting (used by throughput analysis)
    # ------------------------------------------------------------------ #
    def physical_edge_multiplicities(self) -> Counter[Edge]:
        """How many logical transfers cross each physical edge per period."""
        counter: Counter[Edge] = Counter()
        for parent, child in self.logical_edges:
            for edge in self.route(parent, child):
                counter[edge] += 1
        return counter

    def transfer_tables(
        self,
        size: float | None = None,
        multiplicities: Mapping[Edge, int] | None = None,
    ) -> tuple[
        dict[NodeName, list[tuple[NodeName, float, int]]],
        dict[NodeName, list[tuple[NodeName, float, int]]],
    ]:
        """Outgoing and incoming transfer lists of *every* active node in one pass.

        Equivalent to calling :meth:`outgoing_transfers` /
        :meth:`incoming_transfers` for each node (same entries, same order)
        but computes the edge multiplicities once and reads the transfer
        times from the platform's compiled arrays; the throughput analysis
        uses this on the hot ensemble-evaluation path.

        ``multiplicities`` overrides the per-physical-edge message counts
        (default: :meth:`physical_edge_multiplicities`, one per logical
        transfer crossing the edge) — the distinct-message analysis passes
        subtree target counts instead.  Both returned dicts share one key
        set: the covered nodes plus any route-relay endpoint that carries
        traffic (a Steiner tree built from routed transfers may relay
        through nodes outside its logical coverage, and their port
        occupation still bounds the throughput).
        """
        times = self.platform.compiled(size).edge_weight_map
        if multiplicities is None:
            multiplicities = self.physical_edge_multiplicities()
        outgoing: dict[NodeName, list[tuple[NodeName, float, int]]] = {
            node: [] for node in self.nodes
        }
        incoming: dict[NodeName, list[tuple[NodeName, float, int]]] = {
            node: [] for node in self.nodes
        }
        for (u, v), count in sorted(
            multiplicities.items(), key=lambda item: str(item[0])
        ):
            time = times[(u, v)]
            for endpoint in (u, v):
                if endpoint not in outgoing:
                    outgoing[endpoint] = []
                    incoming[endpoint] = []
            outgoing[u].append((v, time, count))
            incoming[v].append((u, time, count))
        return outgoing, incoming

    def outgoing_transfers(
        self, node: NodeName, size: float | None = None
    ) -> list[tuple[NodeName, float, int]]:
        """Physical transfers sent by ``node`` per period: ``(target, T, count)``."""
        transfers: list[tuple[NodeName, float, int]] = []
        for (u, v), count in sorted(
            self.physical_edge_multiplicities().items(), key=lambda item: str(item[0])
        ):
            if u == node:
                transfers.append((v, self.platform.transfer_time(u, v, size), count))
        return transfers

    def incoming_transfers(
        self, node: NodeName, size: float | None = None
    ) -> list[tuple[NodeName, float, int]]:
        """Physical transfers received by ``node`` per period: ``(source, T, count)``."""
        transfers: list[tuple[NodeName, float, int]] = []
        for (u, v), count in sorted(
            self.physical_edge_multiplicities().items(), key=lambda item: str(item[0])
        ):
            if v == node:
                transfers.append((u, self.platform.transfer_time(u, v, size), count))
        return transfers

    def weighted_out_degree(self, node: NodeName, size: float | None = None) -> float:
        """Sum of ``count * T`` over the physical transfers sent by ``node``."""
        return sum(time * count for _, time, count in self.outgoing_transfers(node, size))

    # ------------------------------------------------------------------ #
    # Export / misc
    # ------------------------------------------------------------------ #
    def to_networkx(self, size: float | None = None) -> nx.DiGraph:
        """Logical tree as a :class:`networkx.DiGraph` with ``weight`` attributes.

        Edge weights are the total route transfer time of each logical edge.
        """
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        for parent, child in self.logical_edges:
            weight = sum(
                self.platform.transfer_time(a, b, size) for a, b in self.route(parent, child)
            )
            graph.add_edge(parent, child, weight=weight)
        return graph

    def describe(self, size: float | None = None) -> str:
        """Human-readable indented rendering of the tree."""
        lines: list[str] = [f"{self.name} (source={self.source!r})"]

        def visit(node: NodeName, prefix: str) -> None:
            children = self.children(node)
            for index, child in enumerate(children):
                last = index == len(children) - 1
                connector = "`-- " if last else "|-- "
                route = self.route(node, child)
                weight = sum(self.platform.transfer_time(a, b, size) for a, b in route)
                hops = "" if len(route) == 1 else f" via {len(route)} hops"
                lines.append(f"{prefix}{connector}{child!r}  (T={weight:.3f}{hops})")
                visit(child, prefix + ("    " if last else "|   "))

        visit(self.source, "")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[NodeName]:
        return iter(self.bfs_order())

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"BroadcastTree(name={self.name!r}, source={self.source!r}, "
            f"nodes={self.num_nodes}, height={self.height})"
        )

    def to_parent_dict(self) -> dict[NodeName, NodeName]:
        """Copy of the parent map (for serialization / comparison)."""
        return dict(self.parents)

    def same_structure_as(self, other: "BroadcastTree") -> bool:
        """Whether two trees have identical logical structure and routes."""
        if self.source != other.source or self.parents != other.parents:
            return False
        return all(
            self.route(p, c) == other.route(p, c) for p, c in self.logical_edges
        )
