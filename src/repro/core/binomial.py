"""Binomial-tree heuristic (Algorithm 4 of the paper).

This is the topology-oblivious baseline: the classical MPI broadcast
algorithm builds a binomial tree over processor *indices* (the source has
index 0), doubling the set of informed processors at every stage.  The first
``2^m`` processors (``m = floor(log2 p)``) form the binomial tree; each
remaining processor ``x`` receives the message from processor ``x - 2^m`` in
a final stage.

Because indices ignore the platform topology, a logical transfer ``(u, v)``
may involve two processors that are not adjacent; the transfer is then
routed along the shortest path (by transfer time) from ``u`` to ``v``, and
the intermediate nodes relay the slices.  The relaying cost is exactly why
this heuristic performs poorly under the one-port model (Figure 4 of the
paper) and less poorly under the multi-port model (Figure 5).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from ..exceptions import HeuristicError
from ..models.port_models import PortModel
from ..platform.graph import Platform
from .base import TreeHeuristic
from .tree import BroadcastTree

__all__ = ["BinomialTreeHeuristic"]

NodeName = Any


class BinomialTreeHeuristic(TreeHeuristic):
    """``BINOMIAL-TREE`` — index-based MPI-style broadcast tree.

    Parameters
    ----------
    index_order:
        Optional explicit ordering of the platform nodes used as the MPI
        "rank" order.  The source is always moved to rank 0 (the paper
        assumes the source has index 0).  By default nodes are ordered by
        their string representation, which for the integer-named generated
        platforms matches the natural processor numbering.
    """

    name = "binomial"
    paper_label = "Binomial Tree"

    def __init__(self, index_order: Sequence[NodeName] | None = None) -> None:
        self.index_order = list(index_order) if index_order is not None else None

    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        targets: tuple[NodeName, ...] | None = None,
        **kwargs: Any,
    ) -> BroadcastTree:
        if kwargs:
            raise HeuristicError(f"unexpected options for {self.name!r}: {sorted(kwargs)}")
        ranks = self._rank_order(platform, source, targets)
        transfers = [
            (ranks[src_index], ranks[dst_index])
            for src_index, dst_index in self.logical_transfers(len(ranks))
        ]
        return BroadcastTree.from_logical_transfers(
            platform, source, transfers, name=self.name, targets=targets
        )

    # ------------------------------------------------------------------ #
    def _rank_order(
        self,
        platform: Platform,
        source: NodeName,
        targets: tuple[NodeName, ...] | None = None,
    ) -> list[NodeName]:
        """Node list indexed by MPI rank, with the source at rank 0.

        With a target set only the targets get a rank — the binomial
        structure is built over the participants alone, and non-participant
        processors appear only as shortest-path relays of routed transfers.
        """
        if self.index_order is not None:
            order = list(self.index_order)
            if set(order) != set(platform.nodes):
                raise HeuristicError(
                    "index_order must be a permutation of the platform nodes"
                )
        else:
            order = sorted(platform.nodes, key=str)
        if targets is not None:
            keep = set(targets)
            order = [node for node in order if node in keep]
        if source in order:
            order.remove(source)
        return [source, *order]

    @staticmethod
    def logical_transfers(num_nodes: int) -> list[tuple[int, int]]:
        """Logical (sender rank, receiver rank) pairs of Algorithm 4.

        The first ``2^m`` ranks are covered by the classical binomial
        doubling; every remaining rank ``u`` receives from rank ``u - 2^m``.
        """
        if num_nodes < 1:
            raise HeuristicError(f"num_nodes must be >= 1, got {num_nodes}")
        if num_nodes == 1:
            return []
        m = int(math.floor(math.log2(num_nodes)))
        transfers: list[tuple[int, int]] = []
        for stage in range(m):
            span = 2 ** (m - stage)
            for block in range(2**stage):
                sender = block * span
                receiver = sender + span // 2
                if receiver < num_nodes:
                    transfers.append((sender, receiver))
        for rank in range(2**m, num_nodes):
            transfers.append((rank - 2**m, rank))
        return transfers
