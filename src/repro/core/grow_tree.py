"""Growing a minimum weighted-out-degree tree (Algorithm 3 of the paper).

This heuristic adapts Prim's algorithm to the pipelined-broadcast metric.
Prim grows a spanning tree by always adding the cheapest edge leaving the
current tree; here "cheapest" means the edge whose addition increases the
*weighted out-degree of its sender* the least, because under the one-port
model the tree throughput is the inverse of the maximum weighted out-degree.

The cost of a candidate edge ``(u, w)`` (``u`` in the tree, ``w`` outside)
is the weighted out-degree ``u`` would have after adopting ``w``::

    cost(u, w) = T_{u,w} + sum of T_{u,c} over current tree children c of u

The paper's printed pseudo-code maintains this quantity incrementally with
the update ``cost(u, w) += cost(u, v)`` after adding edge ``(u, v)``; when
``u`` already has children this adds the *accumulated* cost instead of the
new edge's weight ``T_{u,v}``, which over-penalises high-degree nodes.  The
textual definition ("the sum of the weights of the current tree edges
outgoing from ``P_u``") corresponds to adding ``T_{u,v}`` only.  We
implement the textual metric by default and keep the literal update
available through ``literal_cost_update=True`` for ablation (see the
``bench_ablation`` benchmark).
"""

from __future__ import annotations

from typing import Any

from ..exceptions import HeuristicError
from ..kernels.frontier import LazyFrontier
from ..models.port_models import PortModel
from ..platform.graph import Platform
from .base import TreeHeuristic
from .tree import BroadcastTree, steiner_prune

__all__ = ["GrowingMinimumOutDegreeTree"]

NodeName = Any
Edge = tuple[NodeName, NodeName]


class GrowingMinimumOutDegreeTree(TreeHeuristic):
    """``GROWING-MINIMUM-WEIGHTED-OUT-DEGREE-TREE`` (Prim-like growth).

    Parameters
    ----------
    literal_cost_update:
        When true, reproduce the printed pseudo-code update
        ``cost(u, w) += cost(u, v)`` verbatim instead of the textual metric
        (see the module docstring).  Defaults to false.
    fast:
        Select the cheapest frontier edge through the lazy min-heap of
        :class:`~repro.kernels.frontier.LazyFrontier` (the default) instead
        of rescanning every candidate edge per iteration.  Both paths pick
        the same edges in the same order; the rescan is kept for the
        equivalence tests and benchmarks.
    """

    name = "grow-tree"
    paper_label = "Grow Tree"

    def __init__(self, literal_cost_update: bool = False, fast: bool = True) -> None:
        self.literal_cost_update = literal_cost_update
        self.fast = fast

    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        targets: tuple[NodeName, ...] | None = None,
        **kwargs: Any,
    ) -> BroadcastTree:
        if kwargs:
            raise HeuristicError(f"unexpected options for {self.name!r}: {sorted(kwargs)}")
        weights: dict[Edge, float] = model.edge_weight_map(platform, size)
        out_edges_of = platform.compiled(size).out_edges_by_node
        # cost of each candidate edge; kept in sync as the tree grows.
        cost: dict[Edge, float] = dict(weights)

        in_tree: set[NodeName] = {source}
        tree_edges: list[Edge] = []
        tree_edge_set: set[Edge] = set()
        # Coverage goal: every platform node for broadcast, the target set
        # for a collective spec (relays are adopted on the way and
        # Steiner-pruned afterwards if they never fed a target).
        needed = (
            set(platform.nodes) if targets is None else set(targets)
        ) - in_tree

        frontier: LazyFrontier | None = None
        if self.fast:
            frontier = LazyFrontier(cost.__getitem__)
            frontier.push_all(out_edges_of[source])

        while needed:
            if frontier is not None:
                best_edge = frontier.pop_best(in_tree)
            else:
                best_edge = self._cheapest_frontier_edge(cost, in_tree)
            if best_edge is None:
                raise HeuristicError(
                    "growing tree is stuck: no edge leaves the current tree, yet some "
                    "nodes are not covered (platform should have been validated as "
                    "broadcast-feasible)"
                )
            u, v = best_edge
            tree_edges.append(best_edge)
            tree_edge_set.add(best_edge)
            in_tree.add(v)
            needed.discard(v)
            if frontier is not None:
                frontier.push_all(out_edges_of[v])
            # Adding (u, v) increases u's weighted out-degree; reflect that in
            # the cost of u's other candidate edges.
            increase = cost[best_edge] if self.literal_cost_update else weights[best_edge]
            for edge in out_edges_of[u]:
                if edge != best_edge and edge not in tree_edge_set:
                    cost[edge] += increase

        if targets is not None:
            parents = steiner_prune(
                {v: u for u, v in tree_edges}, source, targets
            )
            tree_edges = [(u, v) for v, u in parents.items()]
        return BroadcastTree.from_edges(
            platform, source, tree_edges, name=self.name, targets=targets
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _cheapest_frontier_edge(
        cost: dict[Edge, float], in_tree: set[NodeName]
    ) -> Edge | None:
        """Cheapest edge from a tree node to a non-tree node (deterministic)."""
        best: Edge | None = None
        best_key: tuple[float, str] | None = None
        for edge, edge_cost in cost.items():
            u, v = edge
            if u in in_tree and v not in in_tree:
                key = (edge_cost, str(edge))
                if best_key is None or key < best_key:
                    best, best_key = edge, key
        return best
