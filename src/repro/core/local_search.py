"""Local-search improvement of a broadcast tree (extension).

The paper's conclusion suggests that plugging better topology information
into the heuristics should improve them further.  This module implements a
natural post-processing step in that spirit (it is *not* part of the paper's
evaluation and is benchmarked separately as an ablation): starting from any
spanning broadcast tree, repeatedly try to *re-parent* one child of the
bottleneck node — the node whose steady-state period limits the throughput —
to a less loaded node, as long as the tree period strictly decreases.

Each move keeps the structure a valid spanning tree:

* the new parent must have a direct platform link to the moved child,
* the new parent must not belong to the subtree rooted at the child
  (otherwise the move would create a cycle).

The search is greedy; :func:`improve_tree` scores every candidate move
through the delta evaluation of
:class:`~repro.kernels.periods.PeriodTracker` — a re-parenting only changes
three node periods, so there is no need to rebuild a tree and recompute
every period per candidate.  :func:`improve_tree_reference` keeps the
original full-recompute loop; both visit and accept the exact same move
sequence (the tracker re-evaluates the affected periods through the same
``node_period`` arithmetic), which the test suite asserts.
"""

from __future__ import annotations

from typing import Any

from ..analysis.throughput import tree_throughput
from ..exceptions import HeuristicError
from ..kernels.periods import PeriodTracker
from ..models.port_models import PortModel, get_port_model
from ..platform.graph import Platform
from .base import TreeHeuristic
from .tree import BroadcastTree

__all__ = ["improve_tree", "improve_tree_reference", "LocalSearchImprovement"]

NodeName = Any


def _candidate_moves(
    tree: BroadcastTree, bottleneck: NodeName
) -> list[tuple[NodeName, NodeName]]:
    """Possible ``(child, new_parent)`` re-parenting moves for the bottleneck."""
    platform = tree.platform
    covered = set(tree.nodes)
    moves: list[tuple[NodeName, NodeName]] = []
    for child in tree.children(bottleneck):
        forbidden = tree.subtree_nodes(child)
        for new_parent in platform.in_neighbors(child):
            if new_parent == bottleneck or new_parent in forbidden:
                continue
            if new_parent not in covered:
                # Partial (Steiner) trees: re-parenting under a node outside
                # the tree would silently grow the covered set.
                continue
            moves.append((child, new_parent))
    return moves


def _apply_move(tree: BroadcastTree, child: NodeName, new_parent: NodeName) -> BroadcastTree:
    """Return a new tree with ``child`` re-parented under ``new_parent``."""
    parents = tree.to_parent_dict()
    parents[child] = new_parent
    return BroadcastTree(
        platform=tree.platform,
        source=tree.source,
        parents=parents,
        name=tree.name,
        targets=tree.targets,
    )


def _flatten_routed(tree: BroadcastTree) -> BroadcastTree:
    """Direct-tree projection of a routed tree (see :func:`improve_tree`)."""
    used_edges = set(tree.physical_edge_multiplicities())
    successors: dict[NodeName, list[NodeName]] = {}
    for a, b in sorted(used_edges, key=str):
        successors.setdefault(a, []).append(b)
    parents: dict[NodeName, NodeName] = {}
    frontier = [tree.source]
    visited = {tree.source}
    while frontier:
        node = frontier.pop(0)
        for successor in successors.get(node, []):
            if successor not in visited:
                visited.add(successor)
                parents[successor] = node
                frontier.append(successor)
    return BroadcastTree(
        platform=tree.platform,
        source=tree.source,
        parents=parents,
        name=tree.name,
        targets=tree.targets,
    )


def improve_tree(
    tree: BroadcastTree,
    model: PortModel | str | None = None,
    size: float | None = None,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-12,
) -> BroadcastTree:
    """Greedy bottleneck re-parenting until no move improves the throughput.

    Only direct (non-routed) trees are improved; a routed tree (produced by
    the binomial heuristic) is first flattened into a direct tree by taking a
    breadth-first arborescence over the physical edges its routes use (so
    every transfer of the flattened tree was already a transfer of the routed
    one), then improved.
    """
    base = tree if tree.is_direct else _flatten_routed(tree)
    port_model = get_port_model(model)
    tracker = PeriodTracker(base, port_model, size)
    platform = base.platform
    current_throughput = tracker.throughput()

    # A light structural view shared with _candidate_moves: children and
    # subtree queries are answered by the tracker, link queries by the
    # platform.  The expensive per-candidate tree rebuild of the reference
    # implementation disappears entirely.
    for _ in range(max_iterations):
        bottleneck = tracker.bottleneck()
        best_move: tuple[NodeName, NodeName] | None = None
        best_throughput = current_throughput
        best_affected: dict | None = None
        for child in tracker.children[bottleneck]:
            forbidden = tracker.subtree_nodes(child)
            for new_parent in platform.in_neighbors(child):
                if new_parent == bottleneck or new_parent in forbidden:
                    continue
                if new_parent not in tracker.children:
                    # Outside a partial tree's covered set (see _candidate_moves).
                    continue
                throughput, affected = tracker.evaluate_move(child, new_parent)
                if throughput > best_throughput + tolerance:
                    best_move = (child, new_parent)
                    best_throughput = throughput
                    best_affected = affected
        if best_move is None:
            break
        tracker.apply_move(*best_move, best_affected)
        current_throughput = best_throughput

    improved = BroadcastTree(
        platform=platform,
        source=base.source,
        parents=tracker.parents,
        name=f"{tree.name}+local-search",
        targets=base.targets,
    )
    return improved


def improve_tree_reference(
    tree: BroadcastTree,
    model: PortModel | str | None = None,
    size: float | None = None,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-12,
) -> BroadcastTree:
    """Reference full-recompute loop of :func:`improve_tree`.

    Builds and re-analyses a complete tree per candidate move; kept as the
    specification the delta evaluation is tested against.
    """
    if not tree.is_direct:
        tree = _flatten_routed(tree)
    port_model = get_port_model(model)
    current = tree
    current_report = tree_throughput(current, port_model, size)

    for _ in range(max_iterations):
        moves = _candidate_moves(current, current_report.bottleneck)
        best_tree: BroadcastTree | None = None
        best_report = current_report
        for child, new_parent in moves:
            candidate = _apply_move(current, child, new_parent)
            report = tree_throughput(candidate, port_model, size)
            if report.throughput > best_report.throughput + tolerance:
                best_tree, best_report = candidate, report
        if best_tree is None:
            break
        current, current_report = best_tree, best_report

    current.name = f"{tree.name}+local-search"
    return current


class LocalSearchImprovement(TreeHeuristic):
    """Wrap any heuristic with the greedy re-parenting post-pass.

    Parameters
    ----------
    base:
        The heuristic producing the initial tree.
    max_iterations:
        Maximum number of accepted moves.
    """

    def __init__(self, base: TreeHeuristic, max_iterations: int = 100) -> None:
        if not isinstance(base, TreeHeuristic):
            raise HeuristicError("base must be a TreeHeuristic instance")
        self.base = base
        self.max_iterations = max_iterations
        self.name = f"{base.name}+local-search"
        self.paper_label = f"{base.paper_label} + Local Search"
        self.supported_models = base.supported_models
        self.uses_lp_solution = base.uses_lp_solution

    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        **kwargs: Any,
    ) -> BroadcastTree:
        tree = self.base._build(platform, source, model, size, **kwargs)
        tree.name = self.base.name
        return improve_tree(
            tree, model, size, max_iterations=self.max_iterations
        )
