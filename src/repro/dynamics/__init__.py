"""Dynamic-platform subsystem: traces, replay, and adaptive re-scheduling.

The paper's model is static — one platform, one steady-state tree.  This
package asks what happens when the platform moves: link bandwidths drift,
congestion episodes flare, nodes churn.  It provides

* :mod:`~repro.dynamics.trace` — seeded, serializable platform traces;
* :mod:`~repro.dynamics.replay` — epoch-batched trace application and
  fixed-tree replay against per-epoch LP bounds;
* :mod:`~repro.dynamics.adaptive` — the static / oracle / adaptive
  re-scheduling policy comparison.
"""

from .adaptive import (
    POLICIES,
    DynamicOutcome,
    PolicyDecision,
    PolicyTimeline,
    run_dynamic,
)
from .replay import (
    EpochSample,
    ReplaySeries,
    TraceReplayer,
    achieved_throughput,
    build_epoch_tree,
    epoch_bound,
    epoch_spec,
    replay_tree,
)
from .trace import (
    TRACE_FORMAT_VERSION,
    PlatformTrace,
    TraceEvent,
    TraceSpec,
    generate_trace,
)

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TraceSpec",
    "TraceEvent",
    "PlatformTrace",
    "generate_trace",
    "EpochSample",
    "ReplaySeries",
    "TraceReplayer",
    "achieved_throughput",
    "build_epoch_tree",
    "epoch_bound",
    "epoch_spec",
    "replay_tree",
    "POLICIES",
    "PolicyDecision",
    "PolicyTimeline",
    "DynamicOutcome",
    "run_dynamic",
]
