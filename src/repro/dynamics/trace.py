"""Seeded, deterministic platform traces: bandwidth drift, congestion, churn.

A :class:`PlatformTrace` is a timestamped event stream describing how a
platform evolves over a horizon of fixed-length *windows* (the replay
epochs).  Three stochastic processes contribute events, all driven by one
:class:`numpy.random.Generator` seeded from the :class:`TraceSpec`:

* **bandwidth drift** — every link's cost is multiplied by a factor
  following a bounded AR(1) random walk in log space
  (``x_t = rho * x_{t-1} + sigma * N(0, 1)``, factor ``exp(x_t)`` clipped
  to ``[1/span, span]``), the classic model for slowly varying background
  load on a shared link;
* **congestion episodes** — Poisson-arriving bursts of background traffic
  pin a *hot node* and scale every link incident to it by a constant
  factor for a few windows;
* **node churn** — nodes leave (all their incident links disappear) and
  rejoin after a fixed downtime; protected nodes (the collective source)
  never churn.

Events carry *factors relative to the base platform cost*, never absolute
costs: scaling all three affine occupations of a link by one factor
preserves the paper's ``send, recv <= T`` dominance invariant, so every
intermediate platform is valid.

Like :class:`repro.api.Job`, both the spec and the generated trace are
versioned, JSON-round-trippable values; their canonical payloads are what
the dynamic result caches key on.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields
from typing import Any, Iterable, Mapping

from .._version import __version__
from ..exceptions import ConfigError
from ..platform.graph import Platform
from ..runtime import stable_key
from ..utils.rng import as_generator

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TraceSpec",
    "TraceEvent",
    "PlatformTrace",
    "generate_trace",
]

#: Version stamp embedded in serialized specs and traces; bump on breaking
#: changes to the payload layout.
TRACE_FORMAT_VERSION = 1

NodeName = Any
Edge = tuple[NodeName, NodeName]


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of one stochastic platform trace.

    Parameters
    ----------
    seed:
        Master seed of the trace; same spec + same platform => bit-identical
        event stream.
    horizon:
        Number of epoch windows the trace spans.
    window:
        Duration of one window in platform time units.
    drift:
        Innovation scale ``sigma`` of the log-space AR(1) bandwidth walk;
        0 disables drift entirely (no per-link events).
    drift_rho:
        AR(1) persistence in ``[0, 1)``; higher values drift slower but
        wander further.
    drift_span:
        Clamp for the drift factor: it stays within ``[1/span, span]``.
    congestion_rate:
        Expected number of new congestion episodes per window (Poisson).
    congestion_factor:
        Cost multiplier applied to a hot node's incident links while an
        episode is active (compounds with drift).
    congestion_windows:
        Duration of one episode, in windows.
    churn_rate:
        Per-window probability that one alive, unprotected node leaves.
    churn_downtime:
        Number of windows a departed node stays away before rejoining.
    """

    seed: int = 0
    horizon: int = 8
    window: float = 1.0
    drift: float = 0.15
    drift_rho: float = 0.6
    drift_span: float = 4.0
    congestion_rate: float = 0.0
    congestion_factor: float = 3.0
    congestion_windows: int = 2
    churn_rate: float = 0.0
    churn_downtime: int = 2

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ConfigError(f"horizon must be >= 1, got {self.horizon!r}")
        if self.window <= 0:
            raise ConfigError(f"window must be positive, got {self.window!r}")
        if self.drift < 0:
            raise ConfigError(f"drift must be non-negative, got {self.drift!r}")
        if not 0.0 <= self.drift_rho < 1.0:
            raise ConfigError(f"drift_rho must lie in [0, 1), got {self.drift_rho!r}")
        if self.drift_span <= 1.0:
            raise ConfigError(f"drift_span must exceed 1, got {self.drift_span!r}")
        if self.congestion_rate < 0:
            raise ConfigError(
                f"congestion_rate must be non-negative, got {self.congestion_rate!r}"
            )
        if self.congestion_factor < 1.0:
            raise ConfigError(
                f"congestion_factor must be >= 1, got {self.congestion_factor!r}"
            )
        if self.congestion_windows < 1:
            raise ConfigError(
                f"congestion_windows must be >= 1, got {self.congestion_windows!r}"
            )
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ConfigError(f"churn_rate must lie in [0, 1], got {self.churn_rate!r}")
        if self.churn_downtime < 1:
            raise ConfigError(
                f"churn_downtime must be >= 1, got {self.churn_downtime!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Versioned JSON-compatible payload; inverse of :meth:`from_dict`."""
        payload: dict[str, Any] = {"format_version": TRACE_FORMAT_VERSION}
        for spec_field in fields(self):
            payload[spec_field.name] = getattr(self, spec_field.name)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        version = data.get("format_version", TRACE_FORMAT_VERSION)
        if version != TRACE_FORMAT_VERSION:
            raise ConfigError(
                f"unsupported trace format version {version!r} "
                f"(this build understands {TRACE_FORMAT_VERSION})"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped platform change.

    ``kind`` is ``"link-cost"`` (``edge`` + ``factor`` set), ``"node-leave"``
    or ``"node-join"`` (``node`` set).  Factors are relative to the *base*
    platform cost of the edge, so replaying a window never accumulates
    rounding across epochs.
    """

    time: float
    kind: str
    edge: "Edge | None" = None
    factor: "float | None" = None
    node: NodeName = None

    def to_dict(self) -> dict[str, Any]:
        """Compact JSON form (``None`` fields omitted)."""
        payload: dict[str, Any] = {"time": self.time, "kind": self.kind}
        if self.edge is not None:
            payload["edge"] = list(self.edge)
        if self.factor is not None:
            payload["factor"] = self.factor
        if self.node is not None:
            payload["node"] = self.node
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        """Rebuild from :meth:`to_dict` output."""
        edge = data.get("edge")
        return cls(
            time=float(data["time"]),
            kind=data["kind"],
            edge=None if edge is None else (edge[0], edge[1]),
            factor=data.get("factor"),
            node=data.get("node"),
        )


@dataclass(frozen=True)
class PlatformTrace:
    """A generated event stream, grouped by epoch window.

    ``windows[i]`` holds the events of window ``i`` in application order
    (joins first, then leaves, then link-cost events in platform edge
    order) — the replay layer applies one window as a single batched
    platform mutation.
    """

    platform_name: str
    spec: TraceSpec
    protect: tuple[NodeName, ...]
    windows: tuple[tuple[TraceEvent, ...], ...]

    @property
    def num_windows(self) -> int:
        """Number of epoch windows (= ``spec.horizon``)."""
        return len(self.windows)

    @property
    def num_events(self) -> int:
        """Total number of events across all windows."""
        return sum(len(window) for window in self.windows)

    def to_dict(self) -> dict[str, Any]:
        """Versioned JSON-compatible payload; inverse of :meth:`from_dict`."""
        return {
            "format_version": TRACE_FORMAT_VERSION,
            "platform_name": self.platform_name,
            "spec": self.spec.to_dict(),
            "protect": list(self.protect),
            "windows": [
                [event.to_dict() for event in window] for window in self.windows
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        version = data.get("format_version", TRACE_FORMAT_VERSION)
        if version != TRACE_FORMAT_VERSION:
            raise ConfigError(
                f"unsupported trace format version {version!r} "
                f"(this build understands {TRACE_FORMAT_VERSION})"
            )
        return cls(
            platform_name=data["platform_name"],
            spec=TraceSpec.from_dict(data["spec"]),
            protect=tuple(data.get("protect", ())),
            windows=tuple(
                tuple(TraceEvent.from_dict(event) for event in window)
                for window in data["windows"]
            ),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialise to JSON; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "PlatformTrace":
        """Rebuild a trace from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def trace_key(self) -> str:
        """Stable cache key of this trace (payload plus library version)."""
        return stable_key({"trace": self.to_dict(), "version": __version__})


def generate_trace(
    platform: Platform,
    spec: TraceSpec,
    *,
    protect: Iterable[NodeName] = (),
) -> PlatformTrace:
    """Generate the deterministic event stream of ``spec`` on ``platform``.

    The generator only reads the platform's node and edge lists (insertion
    order), so the same platform description and spec always produce a
    bit-identical trace — the determinism law the dynamic caches rely on.
    Nodes in ``protect`` (typically the collective source) never churn.

    Link-cost events for a window carry the *total* factor (drift times any
    active congestion) and are only emitted when the factor changed and both
    endpoints are alive; when a node rejoins, every restored link re-emits
    its current factor so replay can re-add links at base cost and correct
    them in the same batch.
    """
    rng = as_generator(spec.seed)
    nodes = platform.nodes
    edges = platform.edges
    protected = set(protect)
    unknown = protected - set(nodes)
    if unknown:
        raise ConfigError(
            f"protected nodes {sorted(map(repr, unknown))} are not part of "
            f"platform {platform.name!r}"
        )
    log_state: dict[Edge, float] = {edge: 0.0 for edge in edges}
    emitted: dict[Edge, float] = {edge: 1.0 for edge in edges}
    away: dict[NodeName, int] = {}
    episodes: list[tuple[frozenset[Edge], int]] = []
    # Keep a majority of the platform alive so the broadcast never collapses
    # to a degenerate single-node problem.
    min_alive = max(2, (len(nodes) + 1) // 2)
    lo, hi = 1.0 / spec.drift_span, spec.drift_span

    windows: list[tuple[TraceEvent, ...]] = []
    for index in range(spec.horizon):
        now = index * spec.window
        events: list[TraceEvent] = []

        # -- churn: rejoins first, then at most one departure ------------- #
        rejoined: set[NodeName] = set()
        if away:
            for node in list(away):
                away[node] -= 1
                if away[node] <= 0:
                    del away[node]
                    rejoined.add(node)
                    events.append(TraceEvent(time=now, kind="node-join", node=node))
        if spec.churn_rate > 0.0:
            draw = float(rng.random())
            candidates = [
                node
                for node in nodes
                if node not in away and node not in protected and node not in rejoined
            ]
            if (
                draw < spec.churn_rate
                and candidates
                and len(nodes) - len(away) > min_alive
            ):
                victim = candidates[int(rng.integers(len(candidates)))]
                away[victim] = spec.churn_downtime
                events.append(TraceEvent(time=now, kind="node-leave", node=victim))

        # -- congestion episodes ------------------------------------------ #
        congested: set[Edge] = set()
        if spec.congestion_rate > 0.0:
            episodes = [
                (edge_set, remaining - 1)
                for edge_set, remaining in episodes
                if remaining > 1
            ]
            for _ in range(int(rng.poisson(spec.congestion_rate))):
                hot = nodes[int(rng.integers(len(nodes)))]
                edge_set = frozenset(
                    edge for edge in edges if hot == edge[0] or hot == edge[1]
                )
                episodes.append((edge_set, spec.congestion_windows))
            for edge_set, _ in episodes:
                congested.update(edge_set)

        # -- bandwidth drift + factor events ------------------------------ #
        for edge in edges:
            if spec.drift > 0.0:
                log_state[edge] = spec.drift_rho * log_state[edge] + spec.drift * float(
                    rng.normal()
                )
            factor = min(max(math.exp(log_state[edge]), lo), hi)
            if edge in congested:
                factor *= spec.congestion_factor
            factor = float(factor)
            u, v = edge
            if u in away or v in away:
                continue
            restored = u in rejoined or v in rejoined
            if not restored and factor == emitted[edge]:
                continue
            events.append(
                TraceEvent(time=now, kind="link-cost", edge=edge, factor=factor)
            )
            emitted[edge] = factor
        windows.append(tuple(events))

    return PlatformTrace(
        platform_name=platform.name,
        spec=spec,
        protect=tuple(sorted(protected, key=str)),
        windows=tuple(windows),
    )
