"""Trace replay: evolve a platform through epoch windows, batched per window.

:class:`TraceReplayer` owns a private working copy of the platform and
applies one trace window at a time.  All of a window's events — link-cost
factors, churn link removals, rejoin re-additions — are folded into a
single :meth:`~repro.platform.graph.Platform.batch_mutate` call, so the
compiled arrays, the reversed view and the LP solution cache are
invalidated **once per window, not once per event**; the per-epoch
``mutation_epoch`` then keys fresh LP bounds for free through the existing
epoch-aware caches.

:func:`replay_tree` is the fixed-schedule simulation mode: build a tree
once on the pristine platform, replay the trace underneath it, and report
the achieved steady-state throughput of that (increasingly stale) tree
against the per-epoch LP bound — the time series the adaptive controller
in :mod:`repro.dynamics.adaptive` monitors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..analysis.throughput import collective_throughput
from ..collectives import CollectiveSpec
from ..core.registry import build_collective_tree, get_heuristic
from ..core.tree import BroadcastTree
from ..exceptions import InvalidLinkError, PlatformError, TreeError
from ..lp.solver import LPSolutionCache, solve_collective_lp
from ..models.port_models import PortModel, get_port_model
from ..platform.costs import LinkCostModel
from ..platform.graph import Platform
from ..platform.link import Link
from .trace import PlatformTrace

__all__ = [
    "EpochSample",
    "ReplaySeries",
    "TraceReplayer",
    "epoch_spec",
    "epoch_bound",
    "achieved_throughput",
    "build_epoch_tree",
    "replay_tree",
]

NodeName = Any
Edge = tuple[NodeName, NodeName]


@dataclass(frozen=True)
class EpochSample:
    """One epoch of a replay time series.

    ``achieved`` is the effective throughput of the schedule under that
    epoch's costs (0 when churn broke the tree; already net of any
    re-planning charge), ``bound`` the LP optimum over the epoch's reachable
    alive targets, and ``ratio`` their quotient — the drift metric.
    """

    index: int
    time: float
    events: int
    alive: int
    bound: float
    achieved: float
    ratio: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "index": self.index,
            "time": self.time,
            "events": self.events,
            "alive": self.alive,
            "bound": self.bound,
            "achieved": self.achieved,
            "ratio": self.ratio,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EpochSample":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            index=int(data["index"]),
            time=float(data["time"]),
            events=int(data["events"]),
            alive=int(data["alive"]),
            bound=float(data["bound"]),
            achieved=float(data["achieved"]),
            ratio=float(data["ratio"]),
        )


@dataclass(frozen=True)
class ReplaySeries:
    """Fixed-tree replay result: achieved vs LP bound over the trace."""

    tree_name: str
    heuristic: str
    model: str
    samples: tuple[EpochSample, ...]

    @property
    def times(self) -> tuple[float, ...]:
        """Epoch timestamps."""
        return tuple(sample.time for sample in self.samples)

    @property
    def bounds(self) -> tuple[float, ...]:
        """Per-epoch LP optima."""
        return tuple(sample.bound for sample in self.samples)

    @property
    def achieved(self) -> tuple[float, ...]:
        """Per-epoch achieved throughput of the fixed tree."""
        return tuple(sample.achieved for sample in self.samples)

    @property
    def ratios(self) -> tuple[float, ...]:
        """Per-epoch achieved / bound."""
        return tuple(sample.ratio for sample in self.samples)

    @property
    def mean_ratio(self) -> float:
        """Average achieved-vs-bound ratio over the whole trace."""
        if not self.samples:
            return 0.0
        return sum(self.ratios) / len(self.samples)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "tree_name": self.tree_name,
            "heuristic": self.heuristic,
            "model": self.model,
            "samples": [sample.to_dict() for sample in self.samples],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReplaySeries":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            tree_name=data["tree_name"],
            heuristic=data["heuristic"],
            model=data["model"],
            samples=tuple(EpochSample.from_dict(s) for s in data["samples"]),
        )


class TraceReplayer:
    """Applies a trace to a working copy of a platform, window by window.

    Parameters
    ----------
    platform:
        The base platform; by default a private copy is made so replay never
        mutates the caller's instance (pass ``copy=False`` to evolve the
        given instance in place).
    trace:
        The event stream to apply; factors are interpreted relative to the
        *base* costs captured at construction.
    """

    def __init__(
        self, platform: Platform, trace: PlatformTrace, *, copy: bool = True
    ) -> None:
        self.platform = platform.copy(f"{platform.name}~dynamic") if copy else platform
        self.trace = trace
        self._base_links: dict[Edge, Link] = {
            (link.source, link.target): link for link in self.platform.iter_links()
        }
        self._base_costs: dict[Edge, LinkCostModel] = {
            edge: link.cost for edge, link in self._base_links.items()
        }
        self._incident: dict[NodeName, list[Edge]] = {}
        for edge in self._base_links:
            self._incident.setdefault(edge[0], []).append(edge)
            self._incident.setdefault(edge[1], []).append(edge)
        self.alive: set[NodeName] = set(self.platform.nodes)
        self.next_window = 0

    @property
    def done(self) -> bool:
        """Whether every trace window has been applied."""
        return self.next_window >= self.trace.num_windows

    def apply_next_window(self) -> int:
        """Apply the next window as one batched mutation; return event count.

        The window's events are resolved into a net set of link removals,
        re-additions and cost updates (an edge both re-added and removed in
        one window cancels out), then applied through a single
        :meth:`~repro.platform.graph.Platform.batch_mutate` — one
        ``mutation_epoch`` bump per non-empty window.
        """
        if self.done:
            raise PlatformError(
                f"trace {self.trace.platform_name!r} has only "
                f"{self.trace.num_windows} windows"
            )
        events = self.trace.windows[self.next_window]
        self.next_window += 1

        actual = set(self.platform.edges)
        pending_add: dict[Edge, Link] = {}
        pending_remove: dict[Edge, None] = {}
        costs: dict[Edge, LinkCostModel] = {}

        def present(edge: Edge) -> bool:
            if edge in pending_add:
                return True
            return edge in actual and edge not in pending_remove

        for event in events:
            if event.kind == "node-join":
                self.alive.add(event.node)
                for edge in self._incident.get(event.node, ()):
                    u, v = edge
                    if u not in self.alive or v not in self.alive:
                        continue
                    if edge in pending_remove:
                        # The platform still holds the (drifted) record;
                        # restore the base cost explicitly instead.
                        del pending_remove[edge]
                        costs[edge] = self._base_costs[edge]
                    elif not present(edge):
                        pending_add[edge] = self._base_links[edge]
            elif event.kind == "node-leave":
                self.alive.discard(event.node)
                for edge in self._incident.get(event.node, ()):
                    if edge in pending_add:
                        del pending_add[edge]
                        costs.pop(edge, None)
                    elif edge in actual and edge not in pending_remove:
                        pending_remove[edge] = None
                        costs.pop(edge, None)
            elif event.kind == "link-cost":
                if present(event.edge):
                    costs[event.edge] = self._base_costs[event.edge].scaled(
                        event.factor
                    )
            else:
                raise PlatformError(f"unknown trace event kind {event.kind!r}")

        self.platform.batch_mutate(
            costs=costs,
            remove=list(pending_remove),
            add=list(pending_add.values()),
        )
        return len(events)


def epoch_spec(
    platform: Platform, source: NodeName, alive: Iterable[NodeName]
) -> "CollectiveSpec | None":
    """The collective the platform can still run this epoch, or ``None``.

    Targets are the alive nodes currently reachable from the source (in
    platform insertion order), so the epoch LP is feasible by construction
    even under churn; ``None`` means the source has nobody left to serve.
    """
    alive_set = set(alive)
    reachable = platform.reachable_from(source)
    targets = tuple(
        node
        for node in platform.nodes
        if node != source and node in alive_set and node in reachable
    )
    if not targets:
        return None
    return CollectiveSpec.multicast(source, targets)


def epoch_bound(
    platform: Platform,
    spec: "CollectiveSpec | None",
    size: "float | None" = None,
    lp_cache: "LPSolutionCache | None" = None,
) -> float:
    """LP-optimal throughput of this epoch's collective (0 when degenerate).

    Passing a shared ``lp_cache`` makes the per-epoch solve free for every
    caller after the first: the cache keys on the platform's mutation epoch,
    which the batched window application bumps exactly once.
    """
    if spec is None:
        return 0.0
    if lp_cache is not None:
        return float(lp_cache.solve_collective(platform, spec, size).throughput)
    return float(solve_collective_lp(platform, spec, size).throughput)


def achieved_throughput(
    tree: BroadcastTree,
    spec: "CollectiveSpec | None",
    model: "PortModel | str | None" = None,
    size: "float | None" = None,
) -> float:
    """Steady-state throughput of a (possibly stale) tree under current costs.

    The tree reads link costs live through its platform, so after a replay
    window this is the throughput the old schedule actually achieves.  A
    tree broken by churn — a missing link, or an epoch target it never
    covered — achieves 0: the pipelined broadcast stalls until re-planned.
    """
    if spec is None:
        return 0.0
    try:
        report = collective_throughput(tree, spec, model, size)
    except (TreeError, InvalidLinkError, PlatformError, KeyError):
        return 0.0
    if report.throughput == float("inf"):
        return 0.0
    return float(report.throughput)


def build_epoch_tree(
    platform: Platform,
    spec: CollectiveSpec,
    *,
    heuristic: str = "grow-tree",
    model: "PortModel | str | None" = None,
    size: "float | None" = None,
    lp_cache: "LPSolutionCache | None" = None,
) -> BroadcastTree:
    """Run the configured heuristic against the platform's current state."""
    factory = get_heuristic(heuristic)
    extra: dict[str, Any] = {}
    if factory.uses_lp_solution:
        extra["lp_solution"] = (
            lp_cache.solve_collective(platform, spec, size)
            if lp_cache is not None
            else solve_collective_lp(platform, spec, size)
        )
    return build_collective_tree(
        platform,
        spec,
        heuristic=factory,
        model=get_port_model(model),
        size=size,
        strict_model=False,
        **extra,
    )


def replay_tree(
    platform: Platform,
    trace: PlatformTrace,
    *,
    source: NodeName = 0,
    heuristic: str = "grow-tree",
    model: "PortModel | str | None" = None,
    size: "float | None" = None,
    lp_cache: "LPSolutionCache | None" = None,
) -> ReplaySeries:
    """Replay ``trace`` under a tree planned once on the pristine platform.

    Sample 0 is the pre-trace baseline (the tree at its planning optimum);
    samples ``1..n`` follow each applied window.  This is exactly the
    ``static`` policy of :func:`repro.dynamics.adaptive.run_dynamic`,
    exposed directly for callers that only want the degradation curve.
    """
    port_model = get_port_model(model)
    replayer = TraceReplayer(platform, trace)
    evolving = replayer.platform
    spec = CollectiveSpec.broadcast(source)
    tree = build_epoch_tree(
        evolving,
        spec,
        heuristic=heuristic,
        model=port_model,
        size=size,
        lp_cache=lp_cache,
    )

    samples: list[EpochSample] = []
    bound = epoch_bound(evolving, spec, size, lp_cache)
    achieved = achieved_throughput(tree, spec, port_model, size)
    samples.append(
        EpochSample(
            index=0,
            time=0.0,
            events=0,
            alive=len(replayer.alive),
            bound=bound,
            achieved=achieved,
            ratio=achieved / bound if bound > 0 else 0.0,
        )
    )
    for window in range(trace.num_windows):
        events = replayer.apply_next_window()
        current = epoch_spec(evolving, source, replayer.alive)
        bound = epoch_bound(evolving, current, size, lp_cache)
        achieved = achieved_throughput(tree, current, port_model, size)
        samples.append(
            EpochSample(
                index=window + 1,
                time=(window + 1) * trace.spec.window,
                events=events,
                alive=len(replayer.alive),
                bound=bound,
                achieved=achieved,
                ratio=achieved / bound if bound > 0 else 0.0,
            )
        )
    return ReplaySeries(
        tree_name=tree.name,
        heuristic=heuristic,
        model=port_model.name,
        samples=tuple(samples),
    )
