"""Adaptive re-scheduling against a platform trace.

The controller replays a trace once and drives three scheduling policies
over the same evolving platform:

* ``static`` — plan once on the pristine platform, never re-plan (the
  degradation baseline);
* ``oracle`` — re-run the heuristic every epoch, paying the re-planning
  charge every time (the upper envelope of what re-planning can buy);
* ``adaptive`` — monitor the *drift*, the relative change of the
  achieved-vs-LP-optimal throughput ratio since the last plan, and re-plan
  only when it crosses a threshold (or churn broke the tree outright).

All three see identical platform states: the trace evolution is
schedule-independent, so one replay pass and one LP bound per epoch are
shared across policies (the LP solution cache keys on the platform's
mutation epoch, which the batched window application bumps exactly once).
Re-planning charges a configurable fraction of that epoch's throughput —
the cost of tearing down and redistributing an in-flight pipelined
broadcast — so the adaptive policy wins by re-planning *rarely but well*:
close to the oracle's ratio at a fraction of its re-plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..collectives import CollectiveSpec
from ..exceptions import ConfigError
from ..lp.solver import LPSolutionCache
from ..models.port_models import PortModel, get_port_model
from ..platform.graph import Platform
from .replay import (
    EpochSample,
    TraceReplayer,
    achieved_throughput,
    build_epoch_tree,
    epoch_bound,
    epoch_spec,
)
from .trace import PlatformTrace

__all__ = [
    "POLICIES",
    "PolicyDecision",
    "PolicyTimeline",
    "DynamicOutcome",
    "run_dynamic",
]

NodeName = Any

#: The supported scheduling policies, in canonical order.
POLICIES: tuple[str, ...] = ("static", "oracle", "adaptive")


@dataclass(frozen=True)
class PolicyDecision:
    """One epoch's re-plan decision of one policy."""

    epoch: int
    replanned: bool
    drift: float
    reason: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "epoch": self.epoch,
            "replanned": self.replanned,
            "drift": self.drift,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicyDecision":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            epoch=int(data["epoch"]),
            replanned=bool(data["replanned"]),
            drift=float(data["drift"]),
            reason=data["reason"],
        )


@dataclass(frozen=True)
class PolicyTimeline:
    """One policy's full trajectory: per-epoch samples plus decisions."""

    policy: str
    samples: tuple[EpochSample, ...]
    decisions: tuple[PolicyDecision, ...]

    @property
    def ratios(self) -> tuple[float, ...]:
        """Per-epoch achieved / bound (net of re-planning charges)."""
        return tuple(sample.ratio for sample in self.samples)

    @property
    def replans(self) -> int:
        """Total number of re-plans over the trace."""
        return sum(1 for decision in self.decisions if decision.replanned)

    @property
    def mean_ratio(self) -> float:
        """Average achieved-vs-bound ratio over the whole trace."""
        if not self.samples:
            return 0.0
        return sum(self.ratios) / len(self.samples)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (derived aggregates included for reports)."""
        return {
            "policy": self.policy,
            "samples": [sample.to_dict() for sample in self.samples],
            "decisions": [decision.to_dict() for decision in self.decisions],
            "replans": self.replans,
            "mean_ratio": self.mean_ratio,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicyTimeline":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            policy=data["policy"],
            samples=tuple(EpochSample.from_dict(s) for s in data["samples"]),
            decisions=tuple(PolicyDecision.from_dict(d) for d in data["decisions"]),
        )


@dataclass(frozen=True)
class DynamicOutcome:
    """Result of one dynamic campaign: shared epochs plus per-policy lines."""

    source: NodeName
    heuristic: str
    model: str
    threshold: float
    replan_cost: float
    times: tuple[float, ...]
    bounds: tuple[float, ...]
    alive: tuple[int, ...]
    events: tuple[int, ...]
    timelines: Mapping[str, PolicyTimeline]

    def timeline(self, policy: str) -> PolicyTimeline:
        """The trajectory of one policy."""
        try:
            return self.timelines[policy]
        except KeyError as exc:
            raise ConfigError(
                f"no timeline for policy {policy!r}; "
                f"available: {sorted(self.timelines)}"
            ) from exc

    def to_payload(self) -> dict[str, Any]:
        """Flat JSON payload (the lazy ``DynamicResult``'s metric store)."""
        return {
            "source": self.source,
            "heuristic": self.heuristic,
            "model": self.model,
            "threshold": self.threshold,
            "replan_cost": self.replan_cost,
            "num_epochs": len(self.times),
            "times": list(self.times),
            "bounds": list(self.bounds),
            "alive": list(self.alive),
            "events": list(self.events),
            "policies": sorted(self.timelines),
            "timelines": {
                policy: timeline.to_dict()
                for policy, timeline in self.timelines.items()
            },
        }

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "DynamicOutcome":
        """Rebuild from :meth:`to_payload` output."""
        return cls(
            source=data["source"],
            heuristic=data["heuristic"],
            model=data["model"],
            threshold=float(data["threshold"]),
            replan_cost=float(data["replan_cost"]),
            times=tuple(data["times"]),
            bounds=tuple(data["bounds"]),
            alive=tuple(data["alive"]),
            events=tuple(data["events"]),
            timelines={
                policy: PolicyTimeline.from_dict(timeline)
                for policy, timeline in data["timelines"].items()
            },
        )


def run_dynamic(
    platform: Platform,
    trace: PlatformTrace,
    *,
    source: NodeName = 0,
    heuristic: str = "grow-tree",
    model: "PortModel | str | None" = None,
    size: "float | None" = None,
    threshold: float = 0.15,
    replan_cost: float = 0.1,
    policies: Iterable[str] = POLICIES,
    lp_cache: "LPSolutionCache | None" = None,
) -> DynamicOutcome:
    """Replay ``trace`` once, driving every requested policy in lock-step.

    Epoch 0 is the pre-trace baseline (identical across policies); each
    subsequent epoch applies one window as a single batched mutation,
    solves one shared LP bound, evaluates each policy's current tree under
    the new costs, and lets the policy decide whether to re-plan.  A
    re-planning epoch records the *new* tree's throughput scaled by
    ``1 - replan_cost``.

    Fully deterministic: the only randomness lives in the trace itself.
    """
    policies = tuple(policies)
    if not policies:
        raise ConfigError("at least one policy is required")
    unknown = set(policies) - set(POLICIES)
    if unknown:
        raise ConfigError(
            f"unknown policies {sorted(unknown)}; available: {list(POLICIES)}"
        )
    if threshold <= 0:
        raise ConfigError(f"threshold must be positive, got {threshold!r}")
    if not 0.0 <= replan_cost < 1.0:
        raise ConfigError(f"replan_cost must lie in [0, 1), got {replan_cost!r}")

    port_model = get_port_model(model)
    replayer = TraceReplayer(platform, trace)
    evolving = replayer.platform
    base_spec = CollectiveSpec.broadcast(source)
    initial_tree = build_epoch_tree(
        evolving,
        base_spec,
        heuristic=heuristic,
        model=port_model,
        size=size,
        lp_cache=lp_cache,
    )

    bound = epoch_bound(evolving, base_spec, size, lp_cache)
    base_achieved = achieved_throughput(initial_tree, base_spec, port_model, size)
    base_ratio = base_achieved / bound if bound > 0 else 0.0
    baseline = EpochSample(
        index=0,
        time=0.0,
        events=0,
        alive=len(replayer.alive),
        bound=bound,
        achieved=base_achieved,
        ratio=base_ratio,
    )

    times = [0.0]
    bounds = [bound]
    alive_counts = [len(replayer.alive)]
    event_counts = [0]
    state: dict[str, dict[str, Any]] = {
        policy: {
            "tree": initial_tree,
            "anchor": base_ratio,
            "samples": [baseline],
            "decisions": [],
        }
        for policy in policies
    }

    for window in range(trace.num_windows):
        events = replayer.apply_next_window()
        now = (window + 1) * trace.spec.window
        current = epoch_spec(evolving, source, replayer.alive)
        bound = epoch_bound(evolving, current, size, lp_cache)
        times.append(now)
        bounds.append(bound)
        alive_counts.append(len(replayer.alive))
        event_counts.append(events)

        for policy in policies:
            st = state[policy]
            achieved = achieved_throughput(st["tree"], current, port_model, size)
            ratio = achieved / bound if bound > 0 else 0.0
            anchor = st["anchor"]
            drift = abs(anchor - ratio) / anchor if anchor > 0 else (0.0 if ratio > 0 else 1.0)

            if policy == "static":
                replan, reason = False, "static policy never re-plans"
            elif policy == "oracle":
                replan, reason = True, "oracle re-plans every epoch"
            elif ratio <= 0.0:
                replan, reason = True, "schedule broken (achieved throughput 0)"
            elif drift > threshold:
                replan, reason = True, f"drift {drift:.4f} > threshold {threshold:g}"
            else:
                replan, reason = False, f"drift {drift:.4f} <= threshold {threshold:g}"

            if replan and current is not None and bound > 0:
                tree = build_epoch_tree(
                    evolving,
                    current,
                    heuristic=heuristic,
                    model=port_model,
                    size=size,
                    lp_cache=lp_cache,
                )
                st["tree"] = tree
                fresh = achieved_throughput(tree, current, port_model, size)
                effective = fresh * (1.0 - replan_cost)
                st["anchor"] = fresh / bound
                replanned = True
            else:
                effective = achieved
                replanned = False
                reason = reason if current is not None and bound > 0 else "no feasible collective this epoch"

            st["decisions"].append(
                PolicyDecision(
                    epoch=window + 1, replanned=replanned, drift=drift, reason=reason
                )
            )
            st["samples"].append(
                EpochSample(
                    index=window + 1,
                    time=now,
                    events=events,
                    alive=len(replayer.alive),
                    bound=bound,
                    achieved=effective,
                    ratio=effective / bound if bound > 0 else 0.0,
                )
            )

    return DynamicOutcome(
        source=source,
        heuristic=heuristic,
        model=port_model.name,
        threshold=threshold,
        replan_cost=replan_cost,
        times=tuple(times),
        bounds=tuple(bounds),
        alive=tuple(alive_counts),
        events=tuple(event_counts),
        timelines={
            policy: PolicyTimeline(
                policy=policy,
                samples=tuple(state[policy]["samples"]),
                decisions=tuple(state[policy]["decisions"]),
            )
            for policy in policies
        },
    )
