"""Base class of the STA (atomic broadcast) heuristics.

STA heuristics build spanning broadcast trees just like the STP heuristics
of :mod:`repro.core`, but they optimise a different objective — the makespan
of a single, non-pipelined broadcast — so they are kept in their own
registry-free namespace to avoid any confusion with the paper's primary
contribution.  They share the :class:`~repro.core.base.TreeHeuristic`
interface, which means every analysis, simulation and reporting tool of the
library applies to them unchanged.
"""

from __future__ import annotations

from ..core.base import TreeHeuristic

__all__ = ["AtomicTreeHeuristic"]


class AtomicTreeHeuristic(TreeHeuristic):
    """Marker base class for heuristics targeting the atomic (STA) objective."""

    #: Objective the heuristic optimises, used by reports.
    objective: str = "makespan"
