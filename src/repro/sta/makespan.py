"""Makespan of an *atomic* (non-pipelined) broadcast along a tree.

The STA problem of the paper (Single Tree, Atomic) broadcasts the whole
message at once: every node forwards the complete message to its children
sequentially (one-port model), and the objective is the *makespan*, i.e. the
time at which the last node receives the message.  This module evaluates
that makespan for a given tree and message size; the STA heuristics of the
related work (:mod:`repro.sta.fnf`, :mod:`repro.sta.fef`) are compared with
the STP heuristics in the ``mpi_binomial_comparison`` example and in the
ablation benchmarks.
"""

from __future__ import annotations

from typing import Any

from ..core.tree import BroadcastTree
from ..models.port_models import OnePortModel, PortModel, get_port_model

__all__ = ["atomic_makespan", "atomic_completion_times"]

NodeName = Any


def atomic_completion_times(
    tree: BroadcastTree,
    message_size: float,
    model: PortModel | str | None = None,
) -> dict[NodeName, float]:
    """Time at which each node holds the full message of ``message_size``.

    Every node forwards the whole message to its children in the tree's
    deterministic child order; under the one-port model each transfer blocks
    the sender for the full link occupation, under the multi-port model only
    for the per-send overhead.  Routed (binomial) logical edges are
    forwarded store-and-forward along their route.
    """
    port_model = get_port_model(model)
    platform = tree.platform
    one_port = isinstance(port_model, OnePortModel)
    completion: dict[NodeName, float] = {tree.source: 0.0}
    relay_port_free: dict[NodeName, float] = {}

    for node in tree.bfs_order():
        ready = completion[node]
        port_free = ready
        for child in tree.children(node):
            route = tree.route(node, child)
            first_hop = route[0]
            hop_time = platform.transfer_time(*first_hop, message_size)
            busy = hop_time if one_port else port_model.sender_busy_time(
                platform, *first_hop, message_size
            )
            start = port_free
            port_free = start + busy
            available = start + hop_time
            for a, b in route[1:]:
                hop_time = platform.transfer_time(a, b, message_size)
                busy = hop_time if one_port else port_model.sender_busy_time(
                    platform, a, b, message_size
                )
                start = max(relay_port_free.get(a, 0.0), available)
                relay_port_free[a] = start + busy
                available = start + hop_time
            completion[child] = available
    return completion


def atomic_makespan(
    tree: BroadcastTree,
    message_size: float,
    model: PortModel | str | None = None,
) -> float:
    """Makespan of the atomic broadcast of one message of ``message_size``."""
    return max(atomic_completion_times(tree, message_size, model).values())
