"""Fastest Node First (FNF) — STA baseline from Banikazemi et al. [1].

FNF targets the *atomic* broadcast (STA) under the simplified heterogeneity
model where each processor ``u`` has a single sending speed: the time for
``u`` to send the message to any neighbour is (approximately) the same.  The
heuristic repeatedly picks, among the processors that already hold the
message, the one that can complete a send the earliest, and makes it send to
the *fastest* processor (smallest own sending time) that does not hold the
message yet — putting fast processors near the top of the tree so they can
help spread the message.

This reproduction evaluates FNF on the general platform model by using, as
the "sending time" of a processor, the time of its fastest usable outgoing
link to a node still missing the message (falling back to shortest paths
when no direct link exists).  FNF is not part of the paper's quantitative
evaluation; it is provided as the classical related-work baseline and used
by the ``mpi_binomial_comparison`` example and the STA benchmarks.
"""

from __future__ import annotations

import heapq
from typing import Any

from ..core.tree import BroadcastTree
from ..exceptions import HeuristicError
from ..models.port_models import PortModel
from ..platform.graph import Platform
from .base import AtomicTreeHeuristic

__all__ = ["FastestNodeFirst"]

NodeName = Any


class FastestNodeFirst(AtomicTreeHeuristic):
    """Fastest Node First heuristic for the STA problem."""

    name = "fnf"
    paper_label = "Fastest Node First"

    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        **kwargs: Any,
    ) -> BroadcastTree:
        if kwargs:
            raise HeuristicError(f"unexpected options for {self.name!r}: {sorted(kwargs)}")
        size = platform.slice_size if size is None else size

        def node_speed(node: NodeName) -> float:
            """Characteristic sending time of a node (fastest outgoing link)."""
            if platform.out_degree(node) == 0:
                return float("inf")
            return platform.min_out_transfer_time(node, size)

        informed: set[NodeName] = {source}
        remaining = set(platform.nodes) - informed
        transfers: list[tuple[NodeName, NodeName]] = []
        # (time at which the sender becomes available, tie-break, sender)
        ready_heap: list[tuple[float, str, NodeName]] = [(0.0, str(source), source)]

        while remaining:
            if not ready_heap:
                raise HeuristicError(
                    "FNF is stuck: no informed node can reach the remaining nodes"
                )
            available_at, _, sender = heapq.heappop(ready_heap)
            # Fastest uninformed node reachable directly from the sender.
            candidates = [
                v for v in platform.out_neighbors(sender) if v in remaining
            ]
            if not candidates:
                # The sender cannot help any more; drop it.
                continue
            receiver = min(candidates, key=lambda v: (node_speed(v), str(v)))
            transfer_time = platform.transfer_time(sender, receiver, size)
            completion = available_at + transfer_time
            transfers.append((sender, receiver))
            informed.add(receiver)
            remaining.discard(receiver)
            heapq.heappush(ready_heap, (completion, str(sender), sender))
            heapq.heappush(ready_heap, (completion, str(receiver), receiver))

        return BroadcastTree.from_logical_transfers(
            platform, source, transfers, name=self.name
        )
