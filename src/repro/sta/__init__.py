"""STA (atomic broadcast) baselines from the related work."""

from .base import AtomicTreeHeuristic
from .fef import FastestEdgeFirst
from .fnf import FastestNodeFirst
from .makespan import atomic_completion_times, atomic_makespan

__all__ = [
    "AtomicTreeHeuristic",
    "FastestEdgeFirst",
    "FastestNodeFirst",
    "atomic_completion_times",
    "atomic_makespan",
]
