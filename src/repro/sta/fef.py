"""Fastest Edge First (FEF) — STA baseline in the spirit of Bhat et al. [8, 9].

Bhat, Raghavendra and Prasanna study the atomic broadcast under the
bidirectional one-port model and propose greedy heuristics that extend the
set of informed processors one transfer at a time, always choosing a "best"
available edge.  The variant implemented here is the natural
earliest-completion greedy: among all edges from an informed processor to an
uninformed one, pick the edge whose transfer would *complete first*, taking
into account when the sender's output port becomes free.  With homogeneous
sender availability this degenerates to picking the fastest edge, hence the
traditional "Fastest Edge First" name.

Like :class:`~repro.sta.fnf.FastestNodeFirst`, this heuristic is a
related-work baseline; it is not part of the paper's quantitative
evaluation.
"""

from __future__ import annotations

from typing import Any

from ..core.tree import BroadcastTree
from ..exceptions import HeuristicError
from ..models.port_models import PortModel
from ..platform.graph import Platform
from .base import AtomicTreeHeuristic

__all__ = ["FastestEdgeFirst"]

NodeName = Any


class FastestEdgeFirst(AtomicTreeHeuristic):
    """Fastest Edge First (earliest-completion greedy) for the STA problem."""

    name = "fef"
    paper_label = "Fastest Edge First"

    def _build(
        self,
        platform: Platform,
        source: NodeName,
        model: PortModel,
        size: float | None,
        **kwargs: Any,
    ) -> BroadcastTree:
        if kwargs:
            raise HeuristicError(f"unexpected options for {self.name!r}: {sorted(kwargs)}")
        size = platform.slice_size if size is None else size

        informed: dict[NodeName, float] = {source: 0.0}  # node -> port-free time
        remaining = set(platform.nodes) - {source}
        transfers: list[tuple[NodeName, NodeName]] = []

        while remaining:
            best: tuple[NodeName, NodeName] | None = None
            best_key: tuple[float, str] | None = None
            for sender, port_free in informed.items():
                for receiver in platform.out_neighbors(sender):
                    if receiver not in remaining:
                        continue
                    completion = port_free + platform.transfer_time(sender, receiver, size)
                    key = (completion, str((sender, receiver)))
                    if best_key is None or key < best_key:
                        best, best_key = (sender, receiver), key
            if best is None:
                raise HeuristicError(
                    "FEF is stuck: no informed node can reach the remaining nodes"
                )
            sender, receiver = best
            completion = best_key[0]
            transfers.append((sender, receiver))
            informed[sender] = completion
            informed[receiver] = completion
            remaining.discard(receiver)

        return BroadcastTree.from_logical_transfers(
            platform, source, transfers, name=self.name
        )
