"""Discrete simulation of pipelined collective operations along a tree.

:func:`simulate_collective` extends :func:`~repro.simulation.broadcast.simulate_broadcast`
to the whole :mod:`repro.collectives` family:

* **broadcast / multicast** — the pipelined broadcast machinery unchanged;
  a multicast tree is simply partial (its :attr:`~repro.core.tree.BroadcastTree.nodes`
  are the covered nodes), and the simulator only tracks those.
* **scatter** — *distinct-message replay*: every round the source emits one
  distinct message per target, and the message for target ``t`` travels the
  unique tree path to ``t``.  Node ``u`` serves its obligations in the
  canonical in-order schedule (round-major, child-major, subtree targets by
  ``str(name)``); the logical edge into child ``c`` therefore carries
  ``|targets(subtree(c))|`` messages per round instead of one.
* **reduce / gather** — simulated as their dual forward kind: the tree is
  expected on the reversed platform, exactly as
  :func:`~repro.core.registry.build_collective_tree` returns it.

Two implementations of the scatter replay are kept: a name-keyed reference
loop in this module (the readable specification, built on
:func:`~repro.models.timing.transfer_timing` like the event engine) and the
index-based :func:`repro.kernels.simulation.scatter_direct_run` fast path;
the test suite asserts they produce identical arrival times.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..analysis.throughput import collective_throughput
from ..collectives import CollectiveSpec
from ..core.tree import BroadcastTree
from ..exceptions import SimulationError
from ..models.port_models import PortModel, get_port_model
from ..models.timing import transfer_timing
from .broadcast import Policy, SimulationResult, simulate_broadcast

__all__ = ["simulate_collective", "scatter_arrivals_reference"]

NodeName = Any


def simulate_collective(
    tree: BroadcastTree,
    spec: CollectiveSpec,
    num_slices: int = 50,
    *,
    model: PortModel | str | None = None,
    size: float | None = None,
    policy: Policy = "in-order",
    record_trace: bool = True,
    fast: bool = True,
) -> SimulationResult:
    """Simulate ``num_slices`` rounds of ``spec`` along ``tree``.

    For reduce / gather, ``tree`` must live on the reversed platform (build
    it with :func:`~repro.core.registry.build_collective_tree`); the returned
    arrival times then describe the dual forward collective, whose schedule
    mirrors the reversed-direction execution exactly.

    Scatter / gather replay distinct messages; they support the canonical
    in-order policy on direct trees only, and tracing is not recorded.
    ``fast=False`` forces the name-keyed reference loop (used by the
    equivalence tests and the benchmarks).
    """
    if not spec.distinct_messages:
        return simulate_broadcast(
            tree,
            num_slices,
            model=model,
            size=size,
            policy=policy,
            record_trace=record_trace,
        )
    return _simulate_scatter(tree, spec, num_slices, model, size, policy, fast)


# --------------------------------------------------------------------------- #
# Distinct-message (scatter) replay
# --------------------------------------------------------------------------- #
def _scatter_targets(
    tree: BroadcastTree, targets: "set[NodeName] | None" = None
) -> list[NodeName]:
    """The targets whose messages the replay tracks, in ``str`` order."""
    if targets is None:
        if tree.targets is not None:
            targets = set(tree.targets)
        else:
            targets = set(tree.nodes)
    return sorted(set(targets) - {tree.source}, key=str)


def scatter_arrivals_reference(
    tree: BroadcastTree,
    num_rounds: int,
    model: PortModel | str | None = None,
    size: float | None = None,
    targets: "set[NodeName] | None" = None,
) -> dict[NodeName, list[float]]:
    """Reference distinct-message replay: per-target own-message arrivals.

    The readable specification of the scatter schedule, mirrored index for
    index by :func:`repro.kernels.simulation.scatter_direct_run`: node ``u``
    processes rounds in order; within a round its children in deterministic
    child order; within a child the subtree targets by ``str(name)``.  Each
    transfer reserves the sender port, the link and the receiver port with
    the same :func:`~repro.models.timing.transfer_timing` arithmetic as the
    event engine.
    """
    port_model = get_port_model(model)
    platform = tree.platform
    source = tree.source
    target_set = set(_scatter_targets(tree, targets))

    # Subtree target lists per node, ordered by str(name).
    subtree_targets: dict[NodeName, list[NodeName]] = {}
    for node in reversed(tree.bfs_order()):
        mine = [node] if node in target_set and node != source else []
        for child in tree.children(node):
            mine.extend(subtree_targets[child])
        subtree_targets[node] = sorted(mine, key=str)

    arrivals: dict[NodeName, dict[NodeName, list[float]]] = {
        source: {t: [0.0] * num_rounds for t in subtree_targets[source]}
    }
    for node in tree.bfs_order():
        children = tree.children(node)
        if not children:
            continue
        here = arrivals[node]
        timings = {child: transfer_timing(port_model, platform, node, child, size) for child in children}
        send_free = 0.0
        link_free = {child: 0.0 for child in children}
        recv_free = {child: 0.0 for child in children}
        rows: dict[NodeName, dict[NodeName, list[float]]] = {
            child: {t: [0.0] * num_rounds for t in subtree_targets[child]}
            for child in children
        }
        for k in range(num_rounds):
            for child in children:
                timing = timings[child]
                for t in subtree_targets[child]:
                    ready = 0.0 if node == source else here[t][k]
                    start = max(ready, send_free, link_free[child])
                    if timing.receiver_busy > 0:
                        start = max(
                            start,
                            recv_free[child] - timing.receiver_busy_start_offset,
                        )
                    send_free = start + timing.sender_busy
                    link_free[child] = start + timing.link_busy
                    if timing.receiver_busy > 0:
                        recv_free[child] = (
                            start + timing.receiver_busy_start_offset + timing.receiver_busy
                        )
                    rows[child][t][k] = start + timing.link_busy
        for child in children:
            arrivals[child] = rows[child]

    return {t: arrivals[t][t] for t in sorted(target_set, key=str)}


def _simulate_scatter(
    tree: BroadcastTree,
    spec: CollectiveSpec,
    num_rounds: int,
    model: PortModel | str | None,
    size: float | None,
    policy: Policy,
    fast: bool,
) -> SimulationResult:
    if num_rounds < 1:
        raise SimulationError(f"num_slices must be >= 1, got {num_rounds}")
    if policy != "in-order":
        raise SimulationError(
            f"distinct-message replay only supports the in-order policy, got {policy!r}"
        )
    if not tree.is_direct:
        raise SimulationError(
            "distinct-message replay requires a direct tree; routed (binomial) "
            "trees interleave relays in a genuinely event-driven way"
        )
    port_model = get_port_model(model)
    # The spec's own target set drives the replay (a spanning tree can be
    # asked to scatter to a subset); collective_throughput validates that
    # every spec target is covered by the tree.
    analytical = collective_throughput(tree, spec, port_model, size).throughput
    spec_targets = set(spec.resolve_targets(tree.platform))

    from ..kernels.simulation import scatter_direct_run, supports_scatter_fast_path

    ctree = tree.compiled(size)
    if fast and supports_scatter_fast_path(ctree, port_model):
        view = ctree.view
        target_indices = [
            view.index_of(t) for t in _scatter_targets(tree, spec_targets)
        ]
        arrivals = {
            view.name_of(t): times.tolist()
            for t, times in scatter_direct_run(
                ctree, target_indices, num_rounds, port_model
            ).items()
        }
    else:
        arrivals = scatter_arrivals_reference(
            tree, num_rounds, port_model, size, targets=spec_targets
        )

    arrival_times: dict[NodeName, list[float]] = dict(arrivals)
    arrival_times[tree.source] = [0.0] * num_rounds
    makespan = max(times[-1] for times in arrival_times.values())
    return SimulationResult(
        makespan=makespan,
        num_slices=num_rounds,
        arrival_times=arrival_times,
        measured_throughput=_trailing_half_rate(arrival_times, num_rounds),
        analytical_throughput=analytical,
    )


def _trailing_half_rate(
    arrivals: Mapping[NodeName, list[float]], num_rounds: int
) -> float:
    """Steady-state rate over the trailing half of the rounds.

    Same estimator as
    :meth:`~repro.simulation.broadcast.PipelinedBroadcastSimulator._measure_throughput`.
    """
    if num_rounds < 2:
        return float("inf")
    half = num_rounds // 2
    if half >= num_rounds - 1:
        half = num_rounds - 2
    completion_half = max(times[half] for times in arrivals.values())
    completion_last = max(times[-1] for times in arrivals.values())
    measured = num_rounds - 1 - half
    if completion_last <= completion_half:
        return float("inf")
    return measured / (completion_last - completion_half)
